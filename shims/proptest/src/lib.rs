//! Minimal offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`, range and tuple
//! strategies, `prop_map`, `any::<T>()`, `proptest::collection::vec`, and
//! `ProptestConfig::with_cases`. Cases are generated from a deterministic
//! per-test RNG (seeded from the test's name), so failures reproduce across
//! runs. There is no shrinking: a failing case panics with the assertion
//! message, which includes the concrete inputs via the assert formatting.

use std::ops::Range;

/// Deterministic split-mix 64 generator.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seeds a generator from a test's name, so each test draws an
    /// independent but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Number of cases to run per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

impl<T: Arbitrary> Arbitrary for Option<T> {
    fn arbitrary(rng: &mut TestRng) -> Option<T> {
        if rng.next_u64() & 1 == 1 {
            Some(T::arbitrary(rng))
        } else {
            None
        }
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// Strategy for vectors of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]`-compatible function running `config.cases` sampled
/// cases through the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for _case in 0..config.cases {
                    let ($($pat,)+) = ($($crate::Strategy::sample(&($strat), &mut rng),)+);
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (10u64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..1.5).sample(&mut rng);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_honors_fixed_and_ranged_sizes() {
        let mut rng = TestRng::new(2);
        for _ in 0..100 {
            assert_eq!(collection::vec(0u8..5, 7).sample(&mut rng).len(), 7);
            let len = collection::vec(0u8..5, 1..4).sample(&mut rng).len();
            assert!((1..4).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_samples_composite_strategies(
            v in collection::vec((any::<bool>(), 0u64..16), 1..40),
            x in (1u64..100).prop_map(|n| n * 2),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            prop_assert!(x % 2 == 0 && x >= 2);
        }
    }
}
