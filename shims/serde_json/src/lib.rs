//! Minimal offline stand-in for `serde_json`: compact and pretty writers
//! plus a recursive-descent parser over the `serde` shim's [`Value`] model.
//!
//! Output is canonical — object keys are alphabetically ordered (the shim's
//! `Map` is a `BTreeMap`) and the same document always renders to the same
//! bytes, which the result cache and the determinism tests rely on.

use serde::{Deserialize, Serialize};
pub use serde::{Map, Number, Value};
use std::fmt;

/// Parse or data-model error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as human-readable JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts `value` into the in-memory JSON data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses a JSON document into any deserializable type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Reconstructs a deserializable type from the in-memory data model.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        // `{:?}` is Rust's shortest round-trip float form and always keeps a
        // decimal point or exponent, so floats stay floats across a re-parse.
        Number::F64(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
        Number::F64(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON document"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let second = self.hex4()?;
                                    0x10000
                                        + ((first - 0xd800) << 10)
                                        + (second.wrapping_sub(0xdc00) & 0x3ff)
                                } else {
                                    return Err(self.error("lone surrogate in string"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                            continue;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    /// Reads four hex digits starting at `self.pos` and advances past them.
    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.error("truncated unicode escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        let number = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U64(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I64(i)
            } else {
                Number::F64(
                    text.parse::<f64>()
                        .map_err(|_| self.error("invalid number"))?,
                )
            }
        } else {
            Number::F64(
                text.parse::<f64>()
                    .map_err(|_| self.error("invalid number"))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"b":[1,2.5,null,true],"a":{"x":"hi\nthere","neg":-3}}"#;
        let v: Value = from_str(text).expect("parses");
        let compact = to_string(&v).expect("writes");
        // Keys come back canonically ordered.
        assert_eq!(
            compact,
            r#"{"a":{"neg":-3,"x":"hi\nthere"},"b":[1,2.5,null,true]}"#
        );
        let again: Value = from_str(&compact).expect("re-parses");
        assert_eq!(v, again);
    }

    #[test]
    fn floats_keep_their_floatness() {
        let v = to_value(&vec![1.0f64, 0.1, 1e20]).unwrap();
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1.0,0.1,1e20]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, [1.0, 0.1, 1e20]);
    }

    #[test]
    fn big_u64_survives_exactly() {
        let n = u64::MAX - 3;
        let s = to_string(&n).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v: Value = from_str(r#"{"a":[1]}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }
}
