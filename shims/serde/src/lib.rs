//! Minimal offline stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! small API subset the workspace actually uses: `Serialize` / `Deserialize`
//! traits over an in-memory JSON [`Value`] data model, plus derive macros
//! (via the sibling `serde_derive` shim) supporting named-field structs,
//! newtype structs (with or without `#[serde(transparent)]`), unit-variant
//! enums, and externally-tagged struct-variant enums — exactly the shapes
//! that occur in this repository.
//!
//! Object keys live in a `BTreeMap`, so serialized output is canonical:
//! key order is alphabetical regardless of declaration or insertion order.
//! (Stock `serde_json` behaves the same way without `preserve_order`.)

use std::collections::BTreeMap;
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// JSON object representation (canonically ordered).
pub type Map = BTreeMap<String, Value>;

/// An in-memory JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON number, keeping u64/i64 exact (beyond f64's 2^53 mantissa).
#[derive(Debug, Clone, Copy)]
pub enum Number {
    U64(u64),
    I64(i64),
    F64(f64),
}

impl Number {
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            Number::F64(_) => None,
        }
    }

    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U64(n) => i64::try_from(n).ok(),
            Number::I64(n) => Some(n),
            Number::F64(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 => {
                Some(n as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (*self, *other) {
            (Number::U64(a), Number::U64(b)) => a == b,
            (Number::I64(a), Number::I64(b)) => a == b,
            (a, b) => a.as_f64() == b.as_f64(),
        }
    }
}

impl Value {
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error: what was expected, what was found.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    pub fn expected(expected: &str, value: &Value) -> Self {
        DeError::new(format!("expected {expected}, found {}", value.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into the JSON data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the JSON data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::U64(n as u64))
                } else {
                    Value::Number(Number::I64(n))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", v))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_number()
                    .and_then(Number::as_u64)
                    .ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_number()
                    .and_then(Number::as_i64)
                    .ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_number()
            .map(Number::as_f64)
            .ok_or_else(|| DeError::expected("number", v))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::expected("string", v))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_value(v).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array", v))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected array of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

/// Support for derive-generated code; not part of the public surface.
pub mod __private {
    use super::{DeError, Deserialize, Map, Value};

    pub fn field<T: Deserialize>(m: &Map, key: &str) -> Result<T, DeError> {
        match m.get(key) {
            Some(v) => T::from_value(v).map_err(|e| DeError::new(format!("field `{key}`: {e}"))),
            // An absent key deserializes as if it were `null`, so `Option`
            // fields tolerate older peers that never wrote the key; any
            // other type still rejects the document.
            None => T::from_value(&Value::Null)
                .map_err(|_| DeError::new(format!("missing field `{key}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_keys_are_canonically_ordered() {
        let mut m = Map::new();
        m.insert("zeta".into(), Value::Null);
        m.insert("alpha".into(), Value::Bool(true));
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, ["alpha", "zeta"]);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        let big = (1u64 << 60) + 7;
        assert_eq!(big.to_value(), Value::Number(Number::U64(big)));
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
        assert_eq!(i64::from_value(&(-5i64).to_value()).unwrap(), -5);
    }

    #[test]
    fn arrays_enforce_length() {
        let v = vec![1u64, 2, 3].to_value();
        assert!(<[u64; 3]>::from_value(&v).is_ok());
        assert!(<[u64; 4]>::from_value(&v).is_err());
    }
}
