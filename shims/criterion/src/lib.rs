//! Minimal offline stand-in for `criterion`.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `Bencher`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a short
//! calibration pass, then `sample_size` timed samples, and prints the median
//! with min/max spread — enough to compare hot paths locally without the
//! statistical machinery of the real crate.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    // Calibrate the per-sample iteration count toward ~5 ms per sample.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
            break;
        }
        iters = (iters * 4).min(1 << 20);
    }
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter[per_iter.len() / 2];
    let (lo, hi) = (per_iter[0], per_iter[per_iter.len() - 1]);
    println!(
        "{name:<40} time: [{} {} {}]  ({} samples × {iters} iters)",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi),
        per_iter.len(),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_every_iteration() {
        let mut counted = 0u64;
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        b.iter(|| counted += 1);
        assert_eq!(counted, 10);
        assert!(b.elapsed > Duration::ZERO || counted == 10);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(fmt_time(2e-9).contains("ns"));
        assert!(fmt_time(2e-6).contains("µs"));
        assert!(fmt_time(2e-3).contains("ms"));
        assert!(fmt_time(2.0).contains(" s"));
    }
}
