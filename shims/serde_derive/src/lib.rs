//! Derive macros for the in-repo `serde` stand-in.
//!
//! Hand-written over `proc_macro::TokenStream` (no `syn`/`quote` available
//! offline). Supports the item shapes present in this workspace:
//!
//! * structs with named fields;
//! * tuple structs with a single field (newtype semantics, i.e. the inner
//!   value is serialized directly — `#[serde(transparent)]` is accepted and
//!   means the same thing);
//! * enums with unit variants (serialized as the variant-name string);
//! * enums with struct variants (externally tagged:
//!   `{"Variant": {..fields..}}`).
//!
//! Anything else (generics, tuple variants, multi-field tuple structs)
//! produces a compile error naming the unsupported shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
}

enum Shape {
    NamedStruct { fields: Vec<Field> },
    Newtype,
    Enum { variants: Vec<Variant> },
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants.
    fields: Option<Vec<Field>>,
}

struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("valid error tokens")
}

/// Consumes leading attributes (`#[...]`) from `tokens[*i..]`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        match (&tokens[*i], &tokens[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                *i += 2;
            }
            _ => break,
        }
    }
}

/// Consumes a visibility qualifier (`pub`, `pub(crate)`, …) if present.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses `name: Type, …` named fields from a brace-group body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected field name, found `{other}`")),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        if let Some(TokenTree::Punct(_)) = tokens.get(i) {
            i += 1; // consume the separating comma
        }
        fields.push(Field { name });
    }
    Ok(fields)
}

/// Counts the fields of a paren-group (tuple struct / tuple variant) body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for tt in &tokens {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' | '(' => depth += 1,
                '>' | ')' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => return Err(format!("expected variant name, found `{other}`")),
            None => break,
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream())?;
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "tuple variant `{name}` is unsupported by the serde shim"
                ));
            }
            _ => None,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            Some(other) => return Err(format!("expected `,` after variant, found `{other}`")),
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected item name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic item `{name}` is unsupported by the serde shim"
            ));
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                fields: parse_named_fields(g.stream())?,
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => Shape::Newtype,
                    n => {
                        return Err(format!(
                            "tuple struct `{name}` has {n} fields; the serde shim supports \
                             single-field newtypes only"
                        ))
                    }
                }
            }
            _ => return Err(format!("unsupported struct body for `{name}`")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                variants: parse_variants(g.stream())?,
            },
            _ => return Err(format!("expected enum body for `{name}`")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, shape })
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let mut inserts = String::new();
            for f in fields {
                inserts.push_str(&format!(
                    "m.insert({:?}.to_string(), ::serde::Serialize::to_value(&self.{}));\n",
                    f.name, f.name
                ));
            }
            format!("let mut m = ::serde::Map::new();\n{inserts}::serde::Value::Object(m)")
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum { variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n",
                        v = v.name
                    )),
                    Some(fields) => {
                        let bindings: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inserts = String::new();
                        for f in fields {
                            inserts.push_str(&format!(
                                "inner.insert({:?}.to_string(), \
                                 ::serde::Serialize::to_value({}));\n",
                                f.name, f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pats} }} => {{\n\
                             let mut inner = ::serde::Map::new();\n{inserts}\
                             let mut outer = ::serde::Map::new();\n\
                             outer.insert({v:?}.to_string(), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(outer)\n}}\n",
                            v = v.name,
                            pats = bindings.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct { fields } => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{}: ::serde::__private::field(obj, {:?})?,\n",
                    f.name, f.name
                ));
            }
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object ({name})\", v))?;\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::Newtype => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Enum { variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.fields {
                    None => unit_arms
                        .push_str(&format!("{v:?} => return Ok({name}::{v}),\n", v = v.name)),
                    Some(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{}: ::serde::__private::field(inner, {:?})?,\n",
                                f.name, f.name
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "{v:?} => {{\n\
                             let inner = tagged.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object variant body\", tagged))?;\n\
                             return Ok({name}::{v} {{\n{inits}}});\n}}\n",
                            v = v.name,
                        ));
                    }
                }
            }
            format!(
                "if let Some(s) = v.as_str() {{\n\
                 match s {{\n{unit_arms}\
                 _ => return Err(::serde::DeError::new(\
                 format!(\"unknown {name} variant `{{s}}`\"))),\n}}\n}}\n\
                 if let Some(obj) = v.as_object() {{\n\
                 if let Some((tag, tagged)) = obj.iter().next() {{\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 _ => return Err(::serde::DeError::new(\
                 format!(\"unknown {name} variant `{{tag}}`\"))),\n}}\n}}\n}}\n\
                 Err(::serde::DeError::expected(\"{name} variant\", v))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
