//! Per-worker attribution accumulated while a grid campaign runs.
//!
//! The coordinator's connection handlers feed one [`GridStats`] as cells
//! resolve; when the campaign finishes it folds into the
//! [`GridRollup`] persisted inside the campaign rollup, so
//! `mcd-cli campaign report` can show which host did what — and, since
//! the audit layer, which host *lied*.

use std::collections::BTreeMap;
use std::time::Duration;

use mcd_harness::{GridRollup, WorkerRollup};

/// Running tallies for one worker connection.
#[derive(Debug, Default, Clone)]
pub struct WorkerStats {
    /// Worker-reported name joined with the socket peer address.
    pub peer: String,
    /// Worker environment fingerprint from the `/2` handshake (empty for
    /// `/1`-era records).
    pub fingerprint: String,
    /// Cells this worker returned results for.
    pub cells: u64,
    /// Cells requeued because this worker was evicted mid-assignment.
    pub reassignments: u64,
    /// Redundant audit assignments this worker executed.
    pub audits: u64,
    /// This worker's cells confirmed byte-identical by a second opinion.
    pub verified: u64,
    /// This worker's results contradicted by the local arbiter.
    pub divergences: u64,
    /// Whether this worker was quarantined for lying.
    pub quarantined: bool,
    /// Wire bytes received from this worker.
    pub wire_bytes_in: u64,
    /// Wire bytes sent to this worker.
    pub wire_bytes_out: u64,
    /// Assignment→result round trips, seconds, in completion order.
    pub rtts: Vec<f64>,
}

/// All workers' tallies, keyed by coordinator-assigned worker id.
#[derive(Debug, Default)]
pub struct GridStats {
    workers: BTreeMap<u64, WorkerStats>,
    /// Audits the coordinator settled itself (local arbiter fallback).
    local_audits: u64,
}

/// Nearest-rank percentile over an unsorted sample.
fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl GridStats {
    /// An empty tally.
    pub fn new() -> GridStats {
        GridStats::default()
    }

    /// The (possibly new) tally row for `worker`.
    pub fn worker(&mut self, worker: u64) -> &mut WorkerStats {
        self.workers.entry(worker).or_default()
    }

    /// Records a completed handshake.
    pub fn joined(&mut self, worker: u64, name: &str, peer: &str, fingerprint: &str) {
        let w = self.worker(worker);
        w.peer = format!("{name}@{peer}");
        w.fingerprint = fingerprint.to_string();
    }

    /// Records one assignment→result round trip.
    pub fn cell_done(&mut self, worker: u64, rtt: Duration) {
        let w = self.worker(worker);
        w.cells += 1;
        w.rtts.push(rtt.as_secs_f64());
    }

    /// Records one completed audit assignment (the auditor's side).
    pub fn audit_done(&mut self, worker: u64, rtt: Duration) {
        let w = self.worker(worker);
        w.audits += 1;
        w.rtts.push(rtt.as_secs_f64());
    }

    /// Records a locally settled audit (coordinator as its own auditor).
    pub fn local_audit(&mut self) {
        self.local_audits += 1;
    }

    /// Records that one of `worker`'s cells passed its audit.
    pub fn audit_verified(&mut self, worker: u64) {
        self.worker(worker).verified += 1;
    }

    /// Records that the arbiter contradicted one of `worker`'s results.
    pub fn divergence(&mut self, worker: u64) {
        self.worker(worker).divergences += 1;
    }

    /// Records that `worker` was quarantined.
    pub fn quarantine(&mut self, worker: u64) {
        self.worker(worker).quarantined = true;
    }

    /// Records an eviction; `reassigned` is true when an in-flight cell
    /// went back on the queue.
    pub fn evicted(&mut self, worker: u64, reassigned: bool) {
        if reassigned {
            self.worker(worker).reassignments += 1;
        }
    }

    /// Adds wire traffic to a worker's tally.
    pub fn add_bytes(&mut self, worker: u64, bytes_in: u64, bytes_out: u64) {
        let w = self.worker(worker);
        w.wire_bytes_in += bytes_in;
        w.wire_bytes_out += bytes_out;
    }

    /// Folds the tallies into the rollup shape, workers in id order.
    pub fn rollup(&self) -> GridRollup {
        let workers: Vec<WorkerRollup> = self
            .workers
            .iter()
            .map(|(id, w)| WorkerRollup {
                worker: *id,
                peer: w.peer.clone(),
                fingerprint: w.fingerprint.clone(),
                cells: w.cells,
                reassignments: w.reassignments,
                audits: w.audits,
                verified: w.verified,
                divergences: w.divergences,
                quarantined: w.quarantined,
                wire_bytes_in: w.wire_bytes_in,
                wire_bytes_out: w.wire_bytes_out,
                cell_rtt_seconds_p95: percentile(&w.rtts, 0.95),
            })
            .collect();
        let all_rtts: Vec<f64> = self
            .workers
            .values()
            .flat_map(|w| w.rtts.iter().copied())
            .collect();
        GridRollup {
            reassignments: workers.iter().map(|w| w.reassignments).sum(),
            audits: workers.iter().map(|w| w.audits).sum::<u64>() + self.local_audits,
            divergences: workers.iter().map(|w| w.divergences).sum(),
            quarantined_workers: workers.iter().filter(|w| w.quarantined).count() as u64,
            wire_bytes_in: workers.iter().map(|w| w.wire_bytes_in).sum(),
            wire_bytes_out: workers.iter().map(|w| w.wire_bytes_out).sum(),
            cell_rtt_seconds_p95: percentile(&all_rtts, 0.95),
            workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_fold_into_worker_ordered_rollup() {
        let mut stats = GridStats::new();
        stats.joined(2, "b", "127.0.0.1:2", "0.1.0 x86_64-linux debug");
        stats.joined(1, "a", "127.0.0.1:1", "");
        stats.cell_done(1, Duration::from_millis(100));
        stats.cell_done(1, Duration::from_millis(300));
        stats.cell_done(2, Duration::from_millis(50));
        stats.evicted(2, true);
        stats.add_bytes(1, 10, 20);
        stats.add_bytes(2, 1, 2);
        let roll = stats.rollup();
        assert_eq!(roll.workers.len(), 2);
        assert_eq!(roll.workers[0].worker, 1);
        assert_eq!(roll.workers[0].peer, "a@127.0.0.1:1");
        assert_eq!(roll.workers[0].cells, 2);
        assert_eq!(roll.workers[1].fingerprint, "0.1.0 x86_64-linux debug");
        assert_eq!(roll.workers[1].reassignments, 1);
        assert_eq!(roll.reassignments, 1);
        assert_eq!((roll.wire_bytes_in, roll.wire_bytes_out), (11, 22));
        assert!((roll.workers[0].cell_rtt_seconds_p95 - 0.300).abs() < 1e-9);
        assert!((roll.cell_rtt_seconds_p95 - 0.300).abs() < 1e-9);
    }

    #[test]
    fn eviction_before_any_cell_still_creates_a_row() {
        let mut stats = GridStats::new();
        stats.joined(7, "w", "127.0.0.1:7", "");
        stats.evicted(7, false);
        let roll = stats.rollup();
        assert_eq!(roll.workers.len(), 1);
        assert_eq!(roll.workers[0].cells, 0);
        assert_eq!(roll.reassignments, 0);
        assert_eq!(roll.cell_rtt_seconds_p95, 0.0);
    }

    #[test]
    fn audit_tallies_blame_the_right_parties() {
        let mut stats = GridStats::new();
        stats.joined(1, "honest", "127.0.0.1:1", "fp");
        stats.joined(2, "liar", "127.0.0.1:2", "fp");
        stats.audit_done(1, Duration::from_millis(10));
        stats.audit_verified(1);
        stats.divergence(2);
        stats.quarantine(2);
        stats.local_audit();
        let roll = stats.rollup();
        assert_eq!(roll.audits, 2, "one worker audit plus one local");
        assert_eq!(roll.divergences, 1);
        assert_eq!(roll.quarantined_workers, 1);
        assert_eq!(roll.workers[0].audits, 1);
        assert_eq!(roll.workers[0].verified, 1);
        assert!(!roll.workers[0].quarantined);
        assert_eq!(roll.workers[1].divergences, 1);
        assert!(roll.workers[1].quarantined);
    }
}
