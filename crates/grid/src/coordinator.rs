//! The grid coordinator: owns the cache, shards cells, survives workers.
//!
//! A [`GridCampaign`] is the distributed analogue of
//! [`mcd_harness::Campaign`]: same spec, same cache, same checkpoint
//! manifest, same report — but the cells are computed by TCP-connected
//! worker processes instead of a local thread pool. The coordinator is
//! the *only* process that touches the result cache and checkpoint, so
//! the determinism story is unchanged from serial execution: results are
//! stored through [`mcd_harness::supervisor::store_result`], assembled
//! by cell index,
//! and the canonical JSON document is byte-identical regardless of
//! worker count, join order, or mid-run disconnects.
//!
//! ## Scheduling and fault model
//!
//! Cells are probed against the cache serially up front (quarantining
//! corrupt entries exactly like local runs), and the misses form a FIFO
//! queue. Each connected worker holds at most one outstanding cell; a
//! worker that disconnects or misses its heartbeat window is evicted and
//! its in-flight cell goes back on the *front* of the queue, so
//! reassignment cannot starve. A worker-reported deterministic panic is
//! recorded as a failed cell — never reassigned, because a deterministic
//! simulator would die identically anywhere. Raising the interrupt flag
//! (SIGINT) drains: in-flight cells finish, queued cells are skipped,
//! and the checkpoint manifest makes the campaign resumable with
//! [`GridCampaign::from_checkpoint`].

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mcd_harness::supervisor::{store_result, BackoffPolicy};
use mcd_harness::{
    CacheKey, CacheProbe, CampaignReport, CampaignRollup, CampaignSpec, CellOutcome, CellReport,
    CellSource, CellSpec, CheckpointManifest, FaultPlan, HarnessError, ResultCache, Telemetry,
    ROLLUP_FILE,
};

use crate::stats::GridStats;
use crate::wire::{read_frame, write_frame, Frame, WireError, WIRE_PROTOCOL};
use crate::GridError;

/// How often the accept loop wakes to poll for interrupts and completion.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A configured distributed campaign, ready to [`bind`](GridCampaign::bind).
#[derive(Debug, Clone)]
pub struct GridCampaign {
    spec: CampaignSpec,
    checkpoint: Option<PathBuf>,
    backoff: BackoffPolicy,
    heartbeat_timeout: Duration,
    interrupt: Option<Arc<AtomicBool>>,
    drain_after_results: Option<usize>,
}

impl GridCampaign {
    /// A distributed campaign over `spec` with the default store backoff,
    /// a 10 s heartbeat window, and no checkpoint.
    pub fn new(spec: CampaignSpec) -> GridCampaign {
        GridCampaign {
            spec,
            checkpoint: None,
            backoff: BackoffPolicy::default(),
            heartbeat_timeout: Duration::from_secs(10),
            interrupt: None,
            drain_after_results: None,
        }
    }

    /// Rebuilds a grid campaign from a checkpoint manifest, exactly like
    /// [`mcd_harness::Campaign::from_checkpoint`]: the spec is embedded,
    /// progress persists back to the same path, and the cache re-verifies
    /// completed cells when the campaign runs.
    pub fn from_checkpoint(path: &Path) -> Result<GridCampaign, HarnessError> {
        let manifest = CheckpointManifest::load(path)?;
        Ok(GridCampaign::new(manifest.spec().clone()).checkpoint(path))
    }

    /// Persists progress to a checkpoint manifest at `path` (atomic
    /// rewrite after every completed cell).
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> GridCampaign {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets the backoff policy for transient cache-store IO failures.
    pub fn backoff(mut self, backoff: BackoffPolicy) -> GridCampaign {
        self.backoff = backoff;
        self
    }

    /// Sets how long a silent worker keeps its session before eviction.
    /// Workers heartbeat while computing, so this only needs to exceed
    /// the heartbeat interval, not the cell runtime.
    pub fn heartbeat_timeout(mut self, timeout: Duration) -> GridCampaign {
        self.heartbeat_timeout = timeout;
        self
    }

    /// Installs an external interrupt flag (e.g. raised by a SIGINT
    /// handler). When it becomes `true` the coordinator drains: in-flight
    /// cells finish, queued cells are skipped, and the report is
    /// resumable from the checkpoint.
    pub fn interrupt(mut self, flag: Arc<AtomicBool>) -> GridCampaign {
        self.interrupt = Some(flag);
        self
    }

    /// Chaos hook: raise the interrupt flag after `n` worker-computed
    /// results, simulating a SIGINT landing mid-campaign at a
    /// deterministic point. Test-only by intent.
    pub fn drain_after_results(mut self, n: usize) -> GridCampaign {
        self.drain_after_results = Some(n);
        self
    }

    /// The spec this campaign will serve.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Binds the coordinator's listening socket. Workers may start
    /// connecting immediately; they are handshaken once
    /// [`GridServer::run`] starts.
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<GridServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(GridServer {
            campaign: self,
            listener,
        })
    }
}

/// A bound coordinator: the listener plus its campaign configuration.
#[derive(Debug)]
pub struct GridServer {
    campaign: GridCampaign,
    listener: TcpListener,
}

/// Everything the scheduler mutates, under one lock.
struct State {
    /// Cell indices waiting for a worker, front = next to assign.
    queue: VecDeque<usize>,
    /// Cells currently assigned to a worker.
    in_flight: usize,
    /// Outcome slot per cell, filled exactly once.
    slots: Vec<Option<(CellOutcome, Duration)>>,
    /// How many slots are filled.
    resolved: usize,
    /// Worker-computed results so far (drives `drain_after_results`).
    computed: usize,
    /// Drain flag: stop assigning, finish in-flight, then return.
    stop: bool,
    /// Next worker id to hand out.
    next_worker: u64,
    /// Per-worker attribution.
    stats: GridStats,
}

/// Shared context the accept loop and connection handlers borrow.
struct Coordinator<'a> {
    config: &'a GridCampaign,
    cells: &'a [CellSpec],
    keys: &'a [CacheKey],
    cache: &'a ResultCache,
    telemetry: &'a Telemetry,
    digest: String,
    state: Mutex<State>,
    cv: Condvar,
    manifest: Mutex<Option<CheckpointManifest>>,
    no_chaos: FaultPlan,
}

impl GridServer {
    /// The address the coordinator is listening on (useful when bound to
    /// port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the campaign to completion (or drain): probe the cache,
    /// serve cells to workers as they connect, store and checkpoint each
    /// result, and report per-cell outcomes in spec-expansion order —
    /// byte-identical to a serial run.
    pub fn run(
        &self,
        cache: &ResultCache,
        telemetry: &Telemetry,
    ) -> Result<CampaignReport, GridError> {
        let start = Instant::now();
        let config = &self.campaign;
        let cells = config.spec.expand().map_err(HarnessError::from)?;
        let keys: Vec<CacheKey> = cells.iter().map(CacheKey::of).collect();

        let manifest: Option<CheckpointManifest> = match &config.checkpoint {
            Some(path) if path.exists() => {
                let m = CheckpointManifest::load(path)?;
                m.verify_spec(&config.spec)?;
                if m.total() != cells.len() {
                    return Err(GridError::Harness(HarnessError::CheckpointInvalid {
                        path: path.clone(),
                        reason: format!(
                            "manifest records {} cells, campaign expands to {}",
                            m.total(),
                            cells.len()
                        ),
                    }));
                }
                Some(m)
            }
            Some(_) => Some(CheckpointManifest::new(config.spec.clone(), cells.len())),
            None => None,
        };

        telemetry.campaign_started(cells.len(), 0);

        // Serial upfront probe: hits resolve immediately, corrupt entries
        // are quarantined, misses form the assignment queue. Same order
        // and same telemetry as a local run.
        let mut slots: Vec<Option<(CellOutcome, Duration)>> = vec![None; cells.len()];
        let mut queue = VecDeque::new();
        let mut resolved = 0;
        for (i, key) in keys.iter().enumerate() {
            let probe_start = Instant::now();
            telemetry.cell_started(i, &cells[i]);
            match cache.probe(key) {
                CacheProbe::Hit(result) => {
                    let elapsed = probe_start.elapsed();
                    telemetry.cell_finished(i, CellSource::Cached, elapsed);
                    slots[i] = Some((CellOutcome::Cached(result), elapsed));
                    resolved += 1;
                }
                CacheProbe::Corrupt(kind) => {
                    let _ = cache.quarantine(key);
                    telemetry.cache_quarantined(i, key.hex(), kind);
                    queue.push_back(i);
                }
                CacheProbe::Miss => queue.push_back(i),
            }
        }

        let coord = Coordinator {
            config,
            cells: &cells,
            keys: &keys,
            cache,
            telemetry,
            digest: mcd_harness::spec_digest(&config.spec),
            state: Mutex::new(State {
                queue,
                in_flight: 0,
                slots,
                resolved,
                computed: 0,
                stop: false,
                next_worker: 1,
                stats: GridStats::new(),
            }),
            cv: Condvar::new(),
            manifest: Mutex::new(manifest),
            no_chaos: FaultPlan::none(),
        };
        // Cache hits count toward checkpoint progress, like local runs.
        let hits: Vec<usize> = {
            let st = coord.state.lock().expect("grid state");
            (0..st.slots.len())
                .filter(|&i| st.slots[i].is_some())
                .collect()
        };
        for i in hits {
            coord.checkpoint_done(i);
        }

        self.listener.set_nonblocking(true)?;
        thread::scope(|s| {
            loop {
                {
                    let mut st = coord.state.lock().expect("grid state");
                    if let Some(flag) = &config.interrupt {
                        if flag.load(Ordering::SeqCst) && !st.stop {
                            st.stop = true;
                            coord.cv.notify_all();
                        }
                    }
                    if st.resolved == coord.cells.len() || (st.stop && st.in_flight == 0) {
                        break;
                    }
                }
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        let coord = &coord;
                        s.spawn(move || coord.serve_connection(stream, peer));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        let st = coord.state.lock().expect("grid state");
                        let _ = coord
                            .cv
                            .wait_timeout(st, POLL_INTERVAL)
                            .expect("grid state");
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Accept failures (fd pressure) are transient; the
                        // campaign can finish with the workers it has.
                        thread::sleep(POLL_INTERVAL);
                    }
                }
            }
            // Wake idle handlers so they observe completion and send
            // Shutdown/Drain before the scope joins them.
            coord.cv.notify_all();
        });

        let mut st = coord.state.into_inner().expect("grid state");
        let interrupted = st.stop;
        let reports: Vec<CellReport> = cells
            .into_iter()
            .zip(keys)
            .zip(st.slots.drain(..))
            .map(|((cell, key), slot)| {
                let (outcome, elapsed) = slot.unwrap_or((CellOutcome::Skipped, Duration::ZERO));
                CellReport {
                    cell,
                    key,
                    outcome,
                    elapsed,
                    // The wire format carries outcomes only; worker-side
                    // phase spans are not attributed back.
                    phases: mcd_harness::CellPhases::default(),
                }
            })
            .collect();
        let report = CampaignReport {
            cells: reports,
            wall: start.elapsed(),
            interrupted,
        };
        let rollup = CampaignRollup::from_report(&report).with_grid(st.stats.rollup());
        let _ = rollup.save(&cache.dir().join(ROLLUP_FILE));
        if interrupted {
            telemetry.campaign_interrupted(report.cached() + report.computed(), report.skipped());
        }
        telemetry.campaign_finished(
            report.computed(),
            report.cached(),
            report.failed(),
            report.wall,
        );
        Ok(report)
    }
}

/// What a connection handler should do next after asking for work.
enum NextStep {
    Assign(usize),
    Drain,
    Shutdown,
}

impl Coordinator<'_> {
    /// Marks cell `i` done in the checkpoint manifest (atomic rewrite).
    fn checkpoint_done(&self, i: usize) {
        if let Some(path) = &self.config.checkpoint {
            let mut guard = self.manifest.lock().expect("checkpoint manifest");
            if let Some(m) = guard.as_mut() {
                if m.mark_done(i) {
                    let _ = m.save(path);
                }
            }
        }
    }

    /// One worker connection, handshake to goodbye. Any wire error evicts
    /// the worker and requeues its in-flight cell; the campaign outlives
    /// every individual connection.
    fn serve_connection(&self, mut stream: TcpStream, peer: SocketAddr) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.config.heartbeat_timeout));
        let worker_id = match self.handshake(&mut stream, peer) {
            Some(id) => id,
            None => return,
        };

        loop {
            match self.next_step() {
                NextStep::Assign(i) => {
                    if !self.run_assignment(&mut stream, worker_id, i) {
                        return;
                    }
                }
                NextStep::Drain => {
                    let _ = write_frame(&mut stream, &Frame::Drain);
                    return;
                }
                NextStep::Shutdown => {
                    let _ = write_frame(&mut stream, &Frame::Shutdown);
                    return;
                }
            }
        }
    }

    /// Validates the Hello and sends Welcome (or Reject). Returns the
    /// assigned worker id, or `None` if the session was refused.
    fn handshake(&self, stream: &mut TcpStream, peer: SocketAddr) -> Option<u64> {
        let (frame, n_in) = match read_frame(stream) {
            Ok(ok) => ok,
            Err(_) => return None,
        };
        let Frame::Hello {
            protocol,
            worker,
            spec_digest,
        } = frame
        else {
            let _ = write_frame(
                stream,
                &Frame::Reject {
                    reason: format!("expected Hello, got {}", frame.name()),
                },
            );
            return None;
        };
        if protocol != WIRE_PROTOCOL {
            let _ = write_frame(
                stream,
                &Frame::Reject {
                    reason: format!("protocol {protocol:?}, coordinator speaks {WIRE_PROTOCOL}"),
                },
            );
            return None;
        }
        if !spec_digest.is_empty() && spec_digest != self.digest {
            let _ = write_frame(
                stream,
                &Frame::Reject {
                    reason: format!("spec digest {spec_digest} does not match this campaign"),
                },
            );
            return None;
        }

        let worker_id = {
            let mut st = self.state.lock().expect("grid state");
            let id = st.next_worker;
            st.next_worker += 1;
            st.stats.joined(id, &worker, &peer.to_string());
            st.stats.add_bytes(id, n_in, 0);
            id
        };
        self.telemetry
            .grid_worker_joined(worker_id, &worker, &peer.to_string());
        let welcome = Frame::Welcome {
            worker_id,
            spec_digest: self.digest.clone(),
            cells: self.cells.len() as u64,
        };
        match write_frame(stream, &welcome) {
            Ok(n_out) => {
                let mut st = self.state.lock().expect("grid state");
                st.stats.add_bytes(worker_id, 0, n_out);
                Some(worker_id)
            }
            Err(_) => {
                self.evict(worker_id, None, "handshake write failed");
                None
            }
        }
    }

    /// Waits until there is a cell to assign, the campaign drains, or it
    /// completes.
    fn next_step(&self) -> NextStep {
        let mut st = self.state.lock().expect("grid state");
        loop {
            if st.resolved == self.cells.len() {
                return NextStep::Shutdown;
            }
            if st.stop {
                return NextStep::Drain;
            }
            if let Some(i) = st.queue.pop_front() {
                st.in_flight += 1;
                return NextStep::Assign(i);
            }
            st = self
                .cv
                .wait_timeout(st, POLL_INTERVAL)
                .expect("grid state")
                .0;
        }
    }

    /// Sends one assignment and pumps frames until its result lands (or
    /// the worker dies). Returns `false` when the connection is over.
    fn run_assignment(&self, stream: &mut TcpStream, worker_id: u64, i: usize) -> bool {
        let assigned_at = Instant::now();
        let assign = Frame::Assign {
            cell: i as u64,
            spec: self.cells[i].clone(),
        };
        match write_frame(stream, &assign) {
            Ok(n_out) => {
                let mut st = self.state.lock().expect("grid state");
                st.stats.add_bytes(worker_id, 0, n_out);
            }
            Err(_) => {
                self.evict(worker_id, Some(i), "assignment write failed");
                return false;
            }
        }
        self.telemetry.grid_cell_assigned(i, worker_id);

        loop {
            match read_frame(stream) {
                Ok((frame, n_in)) => {
                    {
                        let mut st = self.state.lock().expect("grid state");
                        st.stats.add_bytes(worker_id, n_in, 0);
                    }
                    match frame {
                        Frame::Heartbeat => {}
                        Frame::TelemetryEvent { event } => {
                            self.telemetry.forward(worker_id, &event);
                        }
                        Frame::CellResult { cell, outcome } => {
                            if cell as usize != i {
                                self.evict(
                                    worker_id,
                                    Some(i),
                                    &format!("result for cell {cell}, expected {i}"),
                                );
                                return false;
                            }
                            self.record_result(worker_id, i, outcome.into_outcome(), assigned_at);
                            return true;
                        }
                        other => {
                            self.evict(
                                worker_id,
                                Some(i),
                                &format!("unexpected {} mid-assignment", other.name()),
                            );
                            return false;
                        }
                    }
                }
                Err(WireError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    self.evict(worker_id, Some(i), "heartbeat timeout");
                    return false;
                }
                Err(_) => {
                    self.evict(worker_id, Some(i), "connection lost");
                    return false;
                }
            }
        }
    }

    /// Stores (if computed), records, and checkpoints one cell outcome.
    fn record_result(&self, worker_id: u64, i: usize, outcome: CellOutcome, assigned_at: Instant) {
        // Store before recording: once a cell counts as resolved the
        // campaign may finish, and the bytes must already be published.
        if let CellOutcome::Computed { result, .. } = &outcome {
            store_result(
                self.cache,
                &self.keys[i],
                &self.cells[i],
                result,
                &self.config.backoff,
                &self.no_chaos,
                self.telemetry,
                i,
            );
        }
        let rtt = assigned_at.elapsed();
        let finished = outcome.result().is_some();
        let drain = {
            let mut st = self.state.lock().expect("grid state");
            st.in_flight -= 1;
            if st.slots[i].is_none() {
                st.slots[i] = Some((outcome, rtt));
                st.resolved += 1;
                if finished {
                    st.computed += 1;
                }
            }
            st.stats.cell_done(worker_id, rtt);
            let drain = matches!(self.config.drain_after_results, Some(n) if st.computed >= n);
            if drain {
                st.stop = true;
            }
            self.cv.notify_all();
            drain
        };
        self.telemetry.grid_cell_result(i, worker_id, rtt);
        if finished {
            self.checkpoint_done(i);
        }
        if drain {
            if let Some(flag) = &self.config.interrupt {
                flag.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Evicts a worker: requeues its in-flight cell (front, so recovery
    /// cannot starve), narrates, and flushes telemetry to disk — an
    /// eviction often precedes coordinator shutdown and the evidence must
    /// survive.
    fn evict(&self, worker_id: u64, in_flight: Option<usize>, reason: &str) {
        {
            let mut st = self.state.lock().expect("grid state");
            if let Some(i) = in_flight {
                st.queue.push_front(i);
                st.in_flight -= 1;
            }
            st.stats.evicted(worker_id, in_flight.is_some());
            self.cv.notify_all();
        }
        self.telemetry
            .grid_worker_evicted(worker_id, in_flight, reason);
        self.telemetry.sync();
    }
}
