//! The grid coordinator: owns the cache, shards cells, survives workers.
//!
//! A [`GridCampaign`] is the distributed analogue of
//! [`mcd_harness::Campaign`]: same spec, same cache, same checkpoint
//! manifest, same report — but the cells are computed by TCP-connected
//! worker processes instead of a local thread pool. The coordinator is
//! the *only* process that touches the result cache and checkpoint, so
//! the determinism story is unchanged from serial execution: results are
//! stored through [`mcd_harness::supervisor::store_result`], assembled
//! by cell index,
//! and the canonical JSON document is byte-identical regardless of
//! worker count, join order, or mid-run disconnects.
//!
//! ## Scheduling and fault model
//!
//! Cells are probed against the cache serially up front (quarantining
//! corrupt entries exactly like local runs), and the misses form a FIFO
//! queue. Each connected worker holds at most one outstanding cell; a
//! worker that disconnects or misses its heartbeat window is evicted and
//! its in-flight cell goes back on the *front* of the queue, so
//! reassignment cannot starve. A worker-reported deterministic panic is
//! recorded as a failed cell — never reassigned, because a deterministic
//! simulator would die identically anywhere. Raising the interrupt flag
//! (SIGINT) drains: in-flight cells finish, queued cells are skipped,
//! and the checkpoint manifest makes the campaign resumable with
//! [`GridCampaign::from_checkpoint`].
//!
//! ## Trust model: audits, arbitration, quarantine
//!
//! Workers are remote processes the coordinator did not build and cannot
//! inspect, so their results are *sampled*, not trusted. A deterministic,
//! spec-digest-seeded ~1-in-[`audit rate`](GridCampaign::audit_rate)
//! subset of worker-computed cells is redundantly assigned to a second
//! worker and the two canonical result JSON documents are byte-compared.
//! On a match the cell (and, transitively, the primary worker's honesty)
//! is *verified*. On a mismatch the coordinator recomputes the cell
//! locally — the simulator is deterministic, so the local result is
//! ground truth — and whichever side the arbiter contradicts is
//! **quarantined**: the worker is rejected mid-session, its poisoned
//! cache entries are moved to `quarantine/`, and every still-unverified
//! cell it computed goes back on the front of the queue for honest
//! recomputation. Blame (fingerprint, divergence count) lands in the
//! campaign rollup. Audits ride the ordinary [`Frame::Assign`] path, so
//! a lying worker cannot distinguish an audit from a first assignment.
//! Because quarantine rewinds every tainted cell before the campaign can
//! finish, the final report stays byte-identical to a serial run.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use mcd_core::RunOptions;
use mcd_harness::supervisor::{compute_cell, store_result, BackoffPolicy, ComputeContext};
use mcd_harness::{
    CacheKey, CacheProbe, CampaignReport, CampaignRollup, CampaignSpec, CellOutcome, CellReport,
    CellSource, CellSpec, CheckpointManifest, FaultPlan, HarnessError, ResultCache, RetryPolicy,
    Telemetry, ROLLUP_FILE,
};

use crate::stats::GridStats;
use crate::wire::{read_frame, write_frame, Frame, WireError, WIRE_PROTOCOL};
use crate::GridError;

/// How often the accept loop wakes to poll for interrupts and completion.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Worker id the rollup and telemetry use for the coordinator itself
/// when it audits a cell locally (real workers start at 1).
const ARBITER_ID: u64 = 0;

/// A configured distributed campaign, ready to [`bind`](GridCampaign::bind).
#[derive(Debug, Clone)]
pub struct GridCampaign {
    spec: CampaignSpec,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    backoff: BackoffPolicy,
    heartbeat_interval: Duration,
    heartbeat_timeout: Duration,
    audit_rate: u64,
    interrupt: Option<Arc<AtomicBool>>,
    drain_after_results: Option<usize>,
}

impl GridCampaign {
    /// A distributed campaign over `spec` with the default store backoff,
    /// a 1 s advertised heartbeat inside a 10 s eviction window, ~1-in-16
    /// audit sampling, per-cell checkpointing, and no checkpoint path.
    pub fn new(spec: CampaignSpec) -> GridCampaign {
        GridCampaign {
            spec,
            checkpoint: None,
            checkpoint_every: 1,
            backoff: BackoffPolicy::default(),
            heartbeat_interval: Duration::from_secs(1),
            heartbeat_timeout: Duration::from_secs(10),
            audit_rate: 16,
            interrupt: None,
            drain_after_results: None,
        }
    }

    /// Rebuilds a grid campaign from a checkpoint manifest, exactly like
    /// [`mcd_harness::Campaign::from_checkpoint`]: the spec is embedded,
    /// progress persists back to the same path, and the cache re-verifies
    /// completed cells when the campaign runs.
    pub fn from_checkpoint(path: &Path) -> Result<GridCampaign, HarnessError> {
        let manifest = CheckpointManifest::load(path)?;
        Ok(GridCampaign::new(manifest.spec().clone()).checkpoint(path))
    }

    /// Persists progress to a checkpoint manifest at `path` (fsynced
    /// atomic rewrite, every [`checkpoint_every`](Self::checkpoint_every)
    /// completed cells).
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> GridCampaign {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets how many completed cells may accumulate between checkpoint
    /// manifest rewrites (`1` = every cell, the default). A SIGKILLed
    /// coordinator resumes having lost at most this many done-marks;
    /// the result cache itself is still written per cell, so no computed
    /// *result* is ever lost.
    pub fn checkpoint_every(mut self, every: usize) -> GridCampaign {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Sets the backoff policy for transient cache-store IO failures.
    pub fn backoff(mut self, backoff: BackoffPolicy) -> GridCampaign {
        self.backoff = backoff;
        self
    }

    /// Sets how long a silent worker keeps its session before eviction.
    /// Workers heartbeat while computing, so this only needs to exceed
    /// the heartbeat interval, not the cell runtime.
    pub fn heartbeat_timeout(mut self, timeout: Duration) -> GridCampaign {
        self.heartbeat_timeout = timeout;
        self
    }

    /// Configures the heartbeat interval advertised to workers in the
    /// `Welcome` frame *and* the eviction timeout together, validating
    /// that the timeout actually exceeds the interval (a timeout at or
    /// below the interval would evict every healthy worker).
    pub fn heartbeats(
        mut self,
        interval: Duration,
        timeout: Duration,
    ) -> Result<GridCampaign, GridError> {
        if timeout <= interval {
            return Err(GridError::Config(format!(
                "heartbeat timeout ({:.3}s) must exceed the heartbeat interval ({:.3}s)",
                timeout.as_secs_f64(),
                interval.as_secs_f64()
            )));
        }
        self.heartbeat_interval = interval;
        self.heartbeat_timeout = timeout;
        Ok(self)
    }

    /// Sets the audit sampling rate: roughly one in `rate`
    /// worker-computed cells is redundantly assigned to a second worker
    /// and byte-compared. `0` disables auditing; `1` audits every cell.
    /// The sample is a deterministic function of the spec digest, so the
    /// same campaign audits the same cells on every run.
    pub fn audit_rate(mut self, rate: u64) -> GridCampaign {
        self.audit_rate = rate;
        self
    }

    /// Installs an external interrupt flag (e.g. raised by a SIGINT
    /// handler). When it becomes `true` the coordinator drains: in-flight
    /// cells finish, queued cells are skipped, and the report is
    /// resumable from the checkpoint.
    pub fn interrupt(mut self, flag: Arc<AtomicBool>) -> GridCampaign {
        self.interrupt = Some(flag);
        self
    }

    /// Chaos hook: raise the interrupt flag after `n` worker-computed
    /// results, simulating a SIGINT landing mid-campaign at a
    /// deterministic point. Test-only by intent.
    pub fn drain_after_results(mut self, n: usize) -> GridCampaign {
        self.drain_after_results = Some(n);
        self
    }

    /// The spec this campaign will serve.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Binds the coordinator's listening socket. Workers may start
    /// connecting immediately; they are handshaken once
    /// [`GridServer::run`] starts.
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<GridServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(GridServer {
            campaign: self,
            listener,
        })
    }
}

/// A bound coordinator: the listener plus its campaign configuration.
#[derive(Debug)]
pub struct GridServer {
    campaign: GridCampaign,
    listener: TcpListener,
}

/// One pending redundant assignment: cell `i` was computed by `primary`
/// and awaits a second opinion.
struct AuditTask {
    /// Worker whose result is under audit.
    primary: u64,
    /// Canonical compact JSON of the primary's result — the bytes the
    /// second opinion must reproduce exactly.
    json: String,
    /// Whether some auditor currently holds this task.
    assigned: bool,
}

/// Everything the scheduler mutates, under one lock.
struct State {
    /// Cell indices waiting for a worker, front = next to assign.
    queue: VecDeque<usize>,
    /// Cells currently assigned to a worker.
    in_flight: usize,
    /// Outcome slot per cell, filled exactly once.
    slots: Vec<Option<(CellOutcome, Duration)>>,
    /// How many slots are filled.
    resolved: usize,
    /// Worker-computed results so far (drives `drain_after_results`).
    computed: usize,
    /// Pending audits, keyed by cell index.
    audits: BTreeMap<usize, AuditTask>,
    /// Audit results currently being settled (compared / arbitrated).
    /// The campaign cannot complete while any settlement is in progress:
    /// a divergence may rewind resolved cells.
    settling: usize,
    /// Cells each worker computed that no audit has verified yet.
    unverified: BTreeMap<u64, Vec<usize>>,
    /// Workers caught lying; rejected on their next scheduling step.
    quarantined: BTreeSet<u64>,
    /// Drain flag: stop assigning, finish in-flight, then return.
    stop: bool,
    /// Next worker id to hand out.
    next_worker: u64,
    /// Per-worker attribution.
    stats: GridStats,
}

/// Shared context the accept loop and connection handlers borrow.
struct Coordinator<'a> {
    config: &'a GridCampaign,
    cells: &'a [CellSpec],
    keys: &'a [CacheKey],
    cache: &'a ResultCache,
    telemetry: &'a Telemetry,
    digest: String,
    /// Seed for the deterministic audit sample, derived from the digest.
    audit_seed: u64,
    state: Mutex<State>,
    cv: Condvar,
    /// Checkpoint manifest plus how many done-marks await a save.
    manifest: Mutex<Option<(CheckpointManifest, usize)>>,
    no_chaos: Arc<FaultPlan>,
}

impl GridServer {
    /// The address the coordinator is listening on (useful when bound to
    /// port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the campaign to completion (or drain): probe the cache,
    /// serve cells to workers as they connect, store and checkpoint each
    /// result, audit a sample of worker results, and report per-cell
    /// outcomes in spec-expansion order — byte-identical to a serial run.
    pub fn run(
        &self,
        cache: &ResultCache,
        telemetry: &Telemetry,
    ) -> Result<CampaignReport, GridError> {
        let start = Instant::now();
        let config = &self.campaign;
        let cells = config.spec.expand().map_err(HarnessError::from)?;
        let keys: Vec<CacheKey> = cells.iter().map(CacheKey::of).collect();

        let manifest: Option<CheckpointManifest> = match &config.checkpoint {
            Some(path) if path.exists() => {
                let m = CheckpointManifest::load(path)?;
                m.verify_spec(&config.spec)?;
                if m.total() != cells.len() {
                    return Err(GridError::Harness(HarnessError::CheckpointInvalid {
                        path: path.clone(),
                        reason: format!(
                            "manifest records {} cells, campaign expands to {}",
                            m.total(),
                            cells.len()
                        ),
                    }));
                }
                Some(m)
            }
            Some(_) => Some(CheckpointManifest::new(config.spec.clone(), cells.len())),
            None => None,
        };
        // The manifest must exist on disk from the first moment: a
        // coordinator SIGKILLed before the first cadence save should
        // still leave a resumable (if empty) checkpoint behind.
        if let (Some(path), Some(m)) = (&config.checkpoint, &manifest) {
            let _ = m.save(path);
        }

        telemetry.campaign_started(cells.len(), 0);

        // Fast integrity spot-check over the shared cache before trusting
        // any of it; corrupt entries found here are quarantined so the
        // probe below recomputes them.
        let spot = cache.spot_check(mcd_harness::SPOT_CHECK_LIMIT);
        if spot.checked > 0 {
            telemetry.cache_spot_check(spot.checked, spot.corrupt);
        }

        // Serial upfront probe: hits resolve immediately, corrupt entries
        // are quarantined, misses form the assignment queue. Same order
        // and same telemetry as a local run.
        let mut slots: Vec<Option<(CellOutcome, Duration)>> = vec![None; cells.len()];
        let mut queue = VecDeque::new();
        let mut resolved = 0;
        for (i, key) in keys.iter().enumerate() {
            let probe_start = Instant::now();
            telemetry.cell_started(i, &cells[i]);
            match cache.probe(key) {
                CacheProbe::Hit(result) => {
                    let elapsed = probe_start.elapsed();
                    telemetry.cell_finished(i, CellSource::Cached, elapsed);
                    slots[i] = Some((CellOutcome::Cached(result), elapsed));
                    resolved += 1;
                }
                CacheProbe::Corrupt(kind) => {
                    let _ = cache.quarantine(key);
                    telemetry.cache_quarantined(i, key.hex(), kind);
                    queue.push_back(i);
                }
                CacheProbe::Miss => queue.push_back(i),
            }
        }

        let digest = mcd_harness::spec_digest(&config.spec);
        let coord = Coordinator {
            config,
            cells: &cells,
            keys: &keys,
            cache,
            telemetry,
            audit_seed: audit_seed_of(&digest),
            digest,
            state: Mutex::new(State {
                queue,
                in_flight: 0,
                slots,
                resolved,
                computed: 0,
                audits: BTreeMap::new(),
                settling: 0,
                unverified: BTreeMap::new(),
                quarantined: BTreeSet::new(),
                stop: false,
                next_worker: 1,
                stats: GridStats::new(),
            }),
            cv: Condvar::new(),
            manifest: Mutex::new(manifest.map(|m| (m, 0))),
            no_chaos: Arc::new(FaultPlan::none()),
        };
        // Cache hits count toward checkpoint progress, like local runs.
        let hits: Vec<usize> = {
            let st = coord.state.lock().expect("grid state");
            (0..st.slots.len())
                .filter(|&i| st.slots[i].is_some())
                .collect()
        };
        for i in hits {
            coord.checkpoint_done(i);
        }

        self.listener.set_nonblocking(true)?;
        thread::scope(|s| {
            loop {
                let local_audit = {
                    let mut st = coord.state.lock().expect("grid state");
                    if let Some(flag) = &config.interrupt {
                        if flag.load(Ordering::SeqCst) && !st.stop {
                            st.stop = true;
                            coord.cv.notify_all();
                        }
                    }
                    if (st.resolved == coord.cells.len()
                        && st.audits.is_empty()
                        && st.settling == 0)
                        || (st.stop && st.in_flight == 0)
                    {
                        break;
                    }
                    // All cells resolved but audits remain that no worker
                    // is taking (every candidate is the primary, or no
                    // workers are left): the coordinator audits locally —
                    // it is its own arbiter, so one computation settles
                    // the cell either way.
                    if st.resolved == coord.cells.len() && !st.stop {
                        let pick = st.audits.iter().find(|(_, t)| !t.assigned).map(|(&i, _)| i);
                        pick.map(|i| {
                            let task = st.audits.remove(&i).expect("picked task exists");
                            st.settling += 1;
                            (i, task)
                        })
                    } else {
                        None
                    }
                };
                if let Some((i, task)) = local_audit {
                    coord.local_audit(i, task);
                    continue;
                }
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        let coord = &coord;
                        s.spawn(move || coord.serve_connection(stream, peer));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        let st = coord.state.lock().expect("grid state");
                        let _ = coord
                            .cv
                            .wait_timeout(st, POLL_INTERVAL)
                            .expect("grid state");
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Accept failures (fd pressure) are transient; the
                        // campaign can finish with the workers it has.
                        thread::sleep(POLL_INTERVAL);
                    }
                }
            }
            // Wake idle handlers so they observe completion and send
            // Shutdown/Drain before the scope joins them.
            coord.cv.notify_all();
        });
        // Flush any done-marks the checkpoint cadence was still holding.
        coord.flush_checkpoint();

        let mut st = coord.state.into_inner().expect("grid state");
        let interrupted = st.stop;
        let reports: Vec<CellReport> = cells
            .into_iter()
            .zip(keys)
            .zip(st.slots.drain(..))
            .map(|((cell, key), slot)| {
                let (outcome, elapsed) = slot.unwrap_or((CellOutcome::Skipped, Duration::ZERO));
                CellReport {
                    cell,
                    key,
                    outcome,
                    elapsed,
                    // The wire format carries outcomes only; worker-side
                    // phase spans are not attributed back.
                    phases: mcd_harness::CellPhases::default(),
                }
            })
            .collect();
        let report = CampaignReport {
            cells: reports,
            wall: start.elapsed(),
            interrupted,
        };
        let rollup = CampaignRollup::from_report(&report)
            .with_grid(st.stats.rollup())
            .with_integrity(spot.checked, spot.corrupt, config.checkpoint_every as u64);
        let _ = rollup.save(&cache.dir().join(ROLLUP_FILE));
        if interrupted {
            telemetry.campaign_interrupted(report.cached() + report.computed(), report.skipped());
        }
        telemetry.campaign_finished(
            report.computed(),
            report.cached(),
            report.failed(),
            report.wall,
        );
        Ok(report)
    }
}

/// Derives the audit-sample seed from the campaign digest (its leading
/// 16 hex digits), so which cells get audited is a pure function of the
/// campaign itself.
fn audit_seed_of(digest: &str) -> u64 {
    let prefix = digest.get(..16).unwrap_or("");
    u64::from_str_radix(prefix, 16).unwrap_or(0)
}

/// Whether a worker was assigned cell `i` as its primary computation or
/// as a redundant audit of someone else's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Primary,
    Audit,
}

/// What a connection handler should do next after asking for work.
enum NextStep {
    Assign(usize, Role),
    Drain,
    Shutdown,
    Quarantined,
}

impl Coordinator<'_> {
    /// Marks cell `i` done in the checkpoint manifest, saving (fsynced
    /// atomic rewrite) once `checkpoint_every` marks have accumulated.
    fn checkpoint_done(&self, i: usize) {
        if let Some(path) = &self.config.checkpoint {
            let mut guard = self.manifest.lock().expect("checkpoint manifest");
            if let Some((m, dirty)) = guard.as_mut() {
                if m.mark_done(i) {
                    *dirty += 1;
                    if *dirty >= self.config.checkpoint_every && m.save(path).is_ok() {
                        *dirty = 0;
                    }
                }
            }
        }
    }

    /// Saves the manifest if any done-marks are still unflushed.
    fn flush_checkpoint(&self) {
        if let Some(path) = &self.config.checkpoint {
            let mut guard = self.manifest.lock().expect("checkpoint manifest");
            if let Some((m, dirty)) = guard.as_mut() {
                if *dirty > 0 && m.save(path).is_ok() {
                    *dirty = 0;
                }
            }
        }
    }

    /// Whether cell `i` is in the deterministic audit sample.
    fn audit_sampled(&self, i: usize) -> bool {
        let rate = self.config.audit_rate;
        if rate == 0 {
            return false;
        }
        // splitmix64 finalizer over the seeded index, as FaultPlan::storm.
        let mut z = self.audit_seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)).is_multiple_of(rate)
    }

    /// One worker connection, handshake to goodbye. Any wire error evicts
    /// the worker and requeues its in-flight cell; the campaign outlives
    /// every individual connection.
    fn serve_connection(&self, mut stream: TcpStream, peer: SocketAddr) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.config.heartbeat_timeout));
        let worker_id = match self.handshake(&mut stream, peer) {
            Some(id) => id,
            None => return,
        };

        loop {
            match self.next_step(worker_id) {
                NextStep::Assign(i, role) => {
                    if !self.run_assignment(&mut stream, worker_id, i, role) {
                        return;
                    }
                }
                NextStep::Drain => {
                    let _ = write_frame(&mut stream, &Frame::Drain);
                    return;
                }
                NextStep::Shutdown => {
                    let _ = write_frame(&mut stream, &Frame::Shutdown);
                    return;
                }
                NextStep::Quarantined => {
                    let _ = write_frame(
                        &mut stream,
                        &Frame::Reject {
                            reason: "quarantined: results diverged from audit".to_string(),
                        },
                    );
                    return;
                }
            }
        }
    }

    /// Validates the Hello and sends Welcome (or Reject). Returns the
    /// assigned worker id, or `None` if the session was refused.
    fn handshake(&self, stream: &mut TcpStream, peer: SocketAddr) -> Option<u64> {
        let (frame, n_in) = match read_frame(stream) {
            Ok(ok) => ok,
            Err(_) => return None,
        };
        let Frame::Hello {
            protocol,
            worker,
            spec_digest,
            fingerprint,
        } = frame
        else {
            let _ = write_frame(
                stream,
                &Frame::Reject {
                    reason: format!("expected Hello, got {}", frame.name()),
                },
            );
            return None;
        };
        if protocol != WIRE_PROTOCOL {
            let _ = write_frame(
                stream,
                &Frame::Reject {
                    reason: format!("protocol {protocol:?}, coordinator speaks {WIRE_PROTOCOL}"),
                },
            );
            return None;
        }
        if !spec_digest.is_empty() && spec_digest != self.digest {
            let _ = write_frame(
                stream,
                &Frame::Reject {
                    reason: format!("spec digest {spec_digest} does not match this campaign"),
                },
            );
            return None;
        }

        let summary = fingerprint.map(|f| f.summary()).unwrap_or_default();
        let worker_id = {
            let mut st = self.state.lock().expect("grid state");
            let id = st.next_worker;
            st.next_worker += 1;
            st.stats.joined(id, &worker, &peer.to_string(), &summary);
            st.stats.add_bytes(id, n_in, 0);
            id
        };
        self.telemetry
            .grid_worker_joined(worker_id, &worker, &peer.to_string(), &summary);
        let welcome = Frame::Welcome {
            worker_id,
            spec_digest: self.digest.clone(),
            cells: self.cells.len() as u64,
            heartbeat_us: Some(self.config.heartbeat_interval.as_micros() as u64),
        };
        match write_frame(stream, &welcome) {
            Ok(n_out) => {
                let mut st = self.state.lock().expect("grid state");
                st.stats.add_bytes(worker_id, 0, n_out);
                Some(worker_id)
            }
            Err(_) => {
                self.evict(worker_id, None, "handshake write failed");
                None
            }
        }
    }

    /// Waits until there is work for this worker (a queued cell, or an
    /// audit of *someone else's* result), the campaign drains, completes,
    /// or the worker turns out to be quarantined.
    fn next_step(&self, worker_id: u64) -> NextStep {
        let mut st = self.state.lock().expect("grid state");
        loop {
            if st.quarantined.contains(&worker_id) {
                return NextStep::Quarantined;
            }
            if st.resolved == self.cells.len() && st.audits.is_empty() && st.settling == 0 {
                return NextStep::Shutdown;
            }
            if st.stop {
                return NextStep::Drain;
            }
            if let Some(i) = st.queue.pop_front() {
                st.in_flight += 1;
                return NextStep::Assign(i, Role::Primary);
            }
            // No fresh cells: offer an audit, but never of this worker's
            // own result — a liar must not get to confirm itself.
            let pick = st
                .audits
                .iter()
                .find(|(_, t)| !t.assigned && t.primary != worker_id)
                .map(|(&i, _)| i);
            if let Some(i) = pick {
                st.audits.get_mut(&i).expect("picked task exists").assigned = true;
                st.in_flight += 1;
                return NextStep::Assign(i, Role::Audit);
            }
            st = self
                .cv
                .wait_timeout(st, POLL_INTERVAL)
                .expect("grid state")
                .0;
        }
    }

    /// Sends one assignment and pumps frames until its result lands (or
    /// the worker dies). Returns `false` when the connection is over.
    /// Audit assignments use the same `Assign` frame as primaries, so the
    /// worker cannot tell it is being checked.
    fn run_assignment(&self, stream: &mut TcpStream, worker_id: u64, i: usize, role: Role) -> bool {
        let assigned_at = Instant::now();
        let assign = Frame::Assign {
            cell: i as u64,
            spec: self.cells[i].clone(),
        };
        match write_frame(stream, &assign) {
            Ok(n_out) => {
                let mut st = self.state.lock().expect("grid state");
                st.stats.add_bytes(worker_id, 0, n_out);
            }
            Err(_) => {
                self.evict_role(worker_id, i, role, "assignment write failed");
                return false;
            }
        }
        self.telemetry.grid_cell_assigned(i, worker_id);

        loop {
            match read_frame(stream) {
                Ok((frame, n_in)) => {
                    {
                        let mut st = self.state.lock().expect("grid state");
                        st.stats.add_bytes(worker_id, n_in, 0);
                    }
                    match frame {
                        Frame::Heartbeat => {}
                        Frame::TelemetryEvent { event } => {
                            self.telemetry.forward(worker_id, &event);
                        }
                        Frame::CellResult { cell, outcome } => {
                            if cell as usize != i {
                                self.evict_role(
                                    worker_id,
                                    i,
                                    role,
                                    &format!("result for cell {cell}, expected {i}"),
                                );
                                return false;
                            }
                            match role {
                                Role::Primary => self.record_result(
                                    worker_id,
                                    i,
                                    outcome.into_outcome(),
                                    assigned_at,
                                ),
                                Role::Audit => self.record_audit(
                                    worker_id,
                                    i,
                                    outcome.into_outcome(),
                                    assigned_at,
                                ),
                            }
                            return true;
                        }
                        other => {
                            self.evict_role(
                                worker_id,
                                i,
                                role,
                                &format!("unexpected {} mid-assignment", other.name()),
                            );
                            return false;
                        }
                    }
                }
                Err(WireError::Io(e))
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    self.evict_role(worker_id, i, role, "heartbeat timeout");
                    return false;
                }
                Err(_) => {
                    self.evict_role(worker_id, i, role, "connection lost");
                    return false;
                }
            }
        }
    }

    /// Stores (if computed), records, checkpoints, and — for the audit
    /// sample — schedules a second opinion on one primary cell outcome.
    fn record_result(&self, worker_id: u64, i: usize, outcome: CellOutcome, assigned_at: Instant) {
        // A worker quarantined while this cell was in flight is no longer
        // trusted: discard the result unexamined and requeue the cell for
        // an honest worker. The handler will reject the session next.
        {
            let mut st = self.state.lock().expect("grid state");
            if st.quarantined.contains(&worker_id) {
                st.in_flight -= 1;
                if st.slots[i].is_none() {
                    st.queue.push_front(i);
                }
                self.cv.notify_all();
                return;
            }
        }
        // Store before recording: once a cell counts as resolved the
        // campaign may finish, and the bytes must already be published.
        if let CellOutcome::Computed { result, .. } = &outcome {
            store_result(
                self.cache,
                &self.keys[i],
                &self.cells[i],
                result,
                &self.config.backoff,
                &self.no_chaos,
                self.telemetry,
                i,
            );
        }
        let rtt = assigned_at.elapsed();
        let finished = outcome.result().is_some();
        let audit_json = if matches!(outcome, CellOutcome::Computed { .. }) {
            outcome
                .result()
                .map(|r| serde_json::to_string(r).expect("results serialize"))
        } else {
            None
        };
        let drain = {
            let mut st = self.state.lock().expect("grid state");
            st.in_flight -= 1;
            if st.slots[i].is_none() {
                st.slots[i] = Some((outcome, rtt));
                st.resolved += 1;
                if finished {
                    st.computed += 1;
                }
                if let Some(json) = audit_json {
                    // Every worker-computed cell is unverified until an
                    // audit (of this cell or none at all) clears it.
                    st.unverified.entry(worker_id).or_default().push(i);
                    if self.audit_sampled(i) {
                        st.audits.insert(
                            i,
                            AuditTask {
                                primary: worker_id,
                                json,
                                assigned: false,
                            },
                        );
                    }
                }
            }
            st.stats.cell_done(worker_id, rtt);
            let drain = matches!(self.config.drain_after_results, Some(n) if st.computed >= n);
            if drain {
                st.stop = true;
            }
            self.cv.notify_all();
            drain
        };
        self.telemetry.grid_cell_result(i, worker_id, rtt);
        if finished {
            self.checkpoint_done(i);
        }
        if drain {
            if let Some(flag) = &self.config.interrupt {
                flag.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Settles one returned audit: byte-compare against the primary's
    /// canonical JSON; on a mismatch, arbitrate locally and quarantine
    /// whoever the ground truth contradicts.
    fn record_audit(&self, auditor: u64, i: usize, outcome: CellOutcome, assigned_at: Instant) {
        let rtt = assigned_at.elapsed();
        let task = {
            let mut st = self.state.lock().expect("grid state");
            st.in_flight -= 1;
            st.stats.audit_done(auditor, rtt);
            // A second opinion from a worker already caught lying is
            // worthless: release the task for someone trustworthy.
            if st.quarantined.contains(&auditor) {
                if let Some(task) = st.audits.get_mut(&i) {
                    task.assigned = false;
                }
                self.cv.notify_all();
                return;
            }
            // The task may be gone (its primary was quarantined through
            // another cell while this audit was in flight) — nothing left
            // to settle.
            let task = st.audits.remove(&i);
            if task.is_some() {
                st.settling += 1;
            }
            self.cv.notify_all();
            task
        };
        let Some(task) = task else { return };
        let audit_json = outcome
            .result()
            .map(|r| serde_json::to_string(r).expect("results serialize"));
        if audit_json.as_deref() == Some(task.json.as_str()) {
            self.settle_verified(i, task.primary, auditor);
        } else {
            self.telemetry
                .grid_audit_divergence(i, task.primary, auditor);
            self.settle_divergence(i, task, auditor, audit_json);
        }
        let mut st = self.state.lock().expect("grid state");
        st.settling -= 1;
        self.cv.notify_all();
    }

    /// Coordinator-side audit of `task` (taken off the audit map by the
    /// accept loop): the local recomputation is both second opinion and
    /// arbiter.
    fn local_audit(&self, i: usize, task: AuditTask) {
        let (outcome, json) = self.arbitrate(i);
        {
            let mut st = self.state.lock().expect("grid state");
            st.stats.local_audit();
        }
        if json == task.json {
            self.settle_verified(i, task.primary, ARBITER_ID);
        } else {
            self.telemetry
                .grid_audit_divergence(i, task.primary, ARBITER_ID);
            let arbiter_json = json.clone();
            self.settle_with_arbiter(i, task, ARBITER_ID, Some(json), (outcome, arbiter_json));
        }
        let mut st = self.state.lock().expect("grid state");
        st.settling -= 1;
        self.cv.notify_all();
    }

    /// Records a passed audit: the primary's cell is verified.
    fn settle_verified(&self, i: usize, primary: u64, auditor: u64) {
        {
            let mut st = self.state.lock().expect("grid state");
            if let Some(list) = st.unverified.get_mut(&primary) {
                list.retain(|&c| c != i);
            }
            st.stats.audit_verified(primary);
        }
        self.telemetry.grid_cell_audited(i, primary, auditor, true);
    }

    /// Arbitrates a divergence by recomputing the cell locally first.
    fn settle_divergence(
        &self,
        i: usize,
        task: AuditTask,
        auditor: u64,
        audit_json: Option<String>,
    ) {
        let arbiter = self.arbitrate(i);
        self.settle_with_arbiter(i, task, auditor, audit_json, arbiter);
    }

    /// Compares both sides against the arbiter's ground truth and
    /// quarantines whichever disagree. If the primary lied, its poisoned
    /// cache entry and report slot are replaced with the arbiter's result
    /// so the final report stays byte-identical to a serial run.
    fn settle_with_arbiter(
        &self,
        i: usize,
        task: AuditTask,
        auditor: u64,
        audit_json: Option<String>,
        arbiter: (CellOutcome, String),
    ) {
        let (arbiter_outcome, arbiter_json) = arbiter;
        let primary_lied = task.json != arbiter_json;
        let auditor_lied =
            auditor != ARBITER_ID && audit_json.as_deref() != Some(arbiter_json.as_str());
        if primary_lied {
            self.telemetry
                .grid_cell_audited(i, task.primary, auditor, false);
            // Replace the poisoned entry with the ground truth before
            // touching scheduling state, so nothing can observe the lie.
            let _ = self.cache.quarantine(&self.keys[i]);
            if let CellOutcome::Computed { result, .. } = &arbiter_outcome {
                store_result(
                    self.cache,
                    &self.keys[i],
                    &self.cells[i],
                    result,
                    &self.config.backoff,
                    &self.no_chaos,
                    self.telemetry,
                    i,
                );
            }
            {
                let mut st = self.state.lock().expect("grid state");
                if let Some(slot) = st.slots[i].as_mut() {
                    slot.0 = arbiter_outcome;
                }
                if let Some(list) = st.unverified.get_mut(&task.primary) {
                    list.retain(|&c| c != i);
                }
                st.stats.divergence(task.primary);
            }
            self.quarantine_worker(task.primary, "audit divergence: contradicted by arbiter");
        } else {
            // Primary honest; the auditor is the liar.
            self.settle_verified(i, task.primary, auditor);
        }
        if auditor_lied {
            {
                let mut st = self.state.lock().expect("grid state");
                st.stats.divergence(auditor);
            }
            self.quarantine_worker(auditor, "audit divergence: audit contradicted by arbiter");
        }
    }

    /// Recomputes cell `i` locally — the deterministic ground truth —
    /// returning the outcome and its canonical compact JSON.
    fn arbitrate(&self, i: usize) -> (CellOutcome, String) {
        let options = RunOptions {
            analysis_threads: 1,
            slack_store: None,
        };
        let ctx = ComputeContext {
            index: i,
            cell: &self.cells[i],
            telemetry: self.telemetry,
            chaos: &self.no_chaos,
            retry: RetryPolicy::default(),
            deadline: None,
            options: &options,
        };
        let (outcome, _phases) = compute_cell(&ctx);
        let json = outcome
            .result()
            .map(|r| serde_json::to_string(r).expect("results serialize"))
            .unwrap_or_default();
        (outcome, json)
    }

    /// Quarantines a lying worker: evicts its cached results to
    /// `quarantine/`, rewinds and requeues every cell it computed that no
    /// audit verified, and drops its pending audit tasks. The worker's
    /// next scheduling step rejects the session.
    fn quarantine_worker(&self, worker: u64, reason: &str) {
        let tainted: Vec<usize> = {
            let mut st = self.state.lock().expect("grid state");
            if !st.quarantined.insert(worker) {
                return;
            }
            st.stats.quarantine(worker);
            let cells = st.unverified.remove(&worker).unwrap_or_default();
            for &c in &cells {
                st.audits.remove(&c);
            }
            cells
        };
        // Move the evidence out of the cache *before* requeueing, so an
        // honest recomputation cannot race the quarantine and lose its
        // freshly stored result.
        for &c in &tainted {
            let _ = self.cache.quarantine(&self.keys[c]);
        }
        {
            let mut st = self.state.lock().expect("grid state");
            for &c in &tainted {
                if st.slots[c].take().is_some() {
                    st.resolved -= 1;
                }
                st.queue.push_front(c);
            }
            self.cv.notify_all();
        }
        self.telemetry
            .worker_quarantined(worker, tainted.len(), reason);
        self.telemetry.sync();
    }

    /// Returns an interrupted assignment to the scheduler: a primary cell
    /// goes back on the queue front; an audit task becomes assignable
    /// again.
    fn evict_role(&self, worker_id: u64, i: usize, role: Role, reason: &str) {
        {
            let mut st = self.state.lock().expect("grid state");
            match role {
                Role::Primary => st.queue.push_front(i),
                Role::Audit => {
                    if let Some(task) = st.audits.get_mut(&i) {
                        task.assigned = false;
                    }
                }
            }
            st.in_flight -= 1;
            st.stats.evicted(worker_id, true);
            self.cv.notify_all();
        }
        self.telemetry
            .grid_worker_evicted(worker_id, Some(i), reason);
        self.telemetry.sync();
    }

    /// Evicts a worker with nothing in flight: narrates and flushes
    /// telemetry to disk — an eviction often precedes coordinator
    /// shutdown and the evidence must survive.
    fn evict(&self, worker_id: u64, in_flight: Option<usize>, reason: &str) {
        {
            let mut st = self.state.lock().expect("grid state");
            if let Some(i) = in_flight {
                st.queue.push_front(i);
                st.in_flight -= 1;
            }
            st.stats.evicted(worker_id, in_flight.is_some());
            self.cv.notify_all();
        }
        self.telemetry
            .grid_worker_evicted(worker_id, in_flight, reason);
        self.telemetry.sync();
    }
}
