//! The grid worker: connects, computes assigned cells, reports back.
//!
//! A [`GridWorker`] is a cache-less cell executor. It dials the
//! coordinator, handshakes (`Hello`/`Welcome`), then loops: receive an
//! [`Frame::Assign`], run the cell through the *same* supervised retry
//! loop local campaigns use ([`mcd_harness::supervisor::compute_cell`] —
//! watchdog
//! deadline, panic retries, deterministic fail-fast), and send the
//! outcome back as a [`Frame::CellResult`]. While a cell computes, a
//! heartbeat thread keeps the session alive so slow cells are
//! distinguishable from dead workers.
//!
//! Worker-side telemetry (cell started/stage/retry/finished events) is
//! forwarded over the wire as [`Frame::TelemetryEvent`] frames; the
//! coordinator stamps each with the worker id and merges it into the
//! campaign's unified JSONL stream.
//!
//! A lost connection is retried with exponential backoff; the campaign
//! spec digest learned in the first `Welcome` is sent on reconnect so a
//! worker can never silently rejoin a *different* campaign.

use std::io::Write;
use std::net::TcpStream;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use mcd_core::RunOptions;
use mcd_harness::supervisor::{compute_cell, BackoffPolicy, ComputeContext};
use mcd_harness::{CellOutcome, CellSource, FaultPlan, RetryPolicy, Telemetry};
use serde::Value;

use crate::wire::{hello, read_frame, write_frame, Frame, WireOutcome};
use crate::GridError;

/// Chaos hook: how a worker dies mid-campaign in fault-injection tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortMode {
    /// Drop the connection on receiving the trigger assignment —
    /// simulates a killed worker process. The coordinator sees EOF.
    Disconnect,
    /// Keep the socket open but go permanently silent — simulates a
    /// wedged host. The coordinator must evict on heartbeat timeout.
    Wedge,
}

/// What a worker session accomplished before exiting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Cells computed and reported across all sessions.
    pub cells: u64,
    /// Handshakes completed (reconnects make this > 1).
    pub sessions: u32,
    /// True when the coordinator sent Drain (campaign interrupted)
    /// rather than Shutdown (campaign complete).
    pub drained: bool,
}

/// A configured grid worker, ready to [`run`](GridWorker::run).
#[derive(Debug, Clone)]
pub struct GridWorker {
    addr: String,
    name: String,
    retry: RetryPolicy,
    deadline: Option<Duration>,
    heartbeat_interval: Option<Duration>,
    reconnect: BackoffPolicy,
    chaos: Arc<FaultPlan>,
    abort_after: Option<(u64, AbortMode)>,
    analysis_threads: usize,
}

impl GridWorker {
    /// A worker that will dial `addr` with default policies: default
    /// panic retries, no watchdog deadline, heartbeats at whatever
    /// cadence the coordinator advertises in its `Welcome` (1 s when it
    /// advertises none), and four connection attempts with exponential
    /// backoff.
    pub fn connect(addr: impl Into<String>) -> GridWorker {
        GridWorker {
            addr: addr.into(),
            name: "worker".to_string(),
            retry: RetryPolicy::default(),
            deadline: None,
            heartbeat_interval: None,
            reconnect: BackoffPolicy::default(),
            chaos: Arc::new(FaultPlan::none()),
            abort_after: None,
            analysis_threads: 1,
        }
    }

    /// Sets the worker name reported in the handshake (host tag).
    pub fn name(mut self, name: impl Into<String>) -> GridWorker {
        self.name = name.into();
        self
    }

    /// Sets the panic retry policy for cell attempts.
    pub fn retry(mut self, retry: RetryPolicy) -> GridWorker {
        self.retry = retry;
        self
    }

    /// Sets a per-attempt watchdog deadline (stalls are reported to the
    /// coordinator, the worker slot survives).
    pub fn deadline(mut self, deadline: Duration) -> GridWorker {
        self.deadline = Some(deadline);
        self
    }

    /// Pins how often the worker heartbeats while computing, overriding
    /// whatever interval the coordinator advertises in its `Welcome`.
    /// Must be comfortably below the coordinator's heartbeat timeout.
    pub fn heartbeat_interval(mut self, interval: Duration) -> GridWorker {
        self.heartbeat_interval = Some(interval);
        self
    }

    /// Sets the reconnect policy (attempts and backoff) for lost
    /// connections.
    pub fn reconnect(mut self, policy: BackoffPolicy) -> GridWorker {
        self.reconnect = policy;
        self
    }

    /// Sets the off-line analysis fan-out inside each assigned cell
    /// (`1` = serial, `0` = one thread per core). Results-neutral: the
    /// wire bytes sent back are identical for any value.
    pub fn analysis_threads(mut self, threads: usize) -> GridWorker {
        self.analysis_threads = threads;
        self
    }

    /// Installs a deterministic fault plan for cell attempts (chaos
    /// testing only): injected panics and stalls flow through the same
    /// supervised paths real ones take, all the way to the coordinator.
    pub fn chaos(mut self, plan: FaultPlan) -> GridWorker {
        self.chaos = Arc::new(plan);
        self
    }

    /// Chaos hook: die in `mode` on receiving the `nth` assignment
    /// (1-based), without computing it.
    pub fn abort_after(mut self, nth: u64, mode: AbortMode) -> GridWorker {
        self.abort_after = Some((nth, mode));
        self
    }

    /// Runs until the coordinator says goodbye (Shutdown/Drain), the
    /// handshake is rejected, or reconnect attempts are exhausted.
    pub fn run(&self) -> Result<WorkerSummary, GridError> {
        let mut summary = WorkerSummary {
            cells: 0,
            sessions: 0,
            drained: false,
        };
        let mut assignments = 0u64;
        // Learned from the first Welcome; pins reconnects to one campaign.
        let mut spec_digest = String::new();
        let mut failures = 0u32;
        loop {
            let stream = match TcpStream::connect(&self.addr) {
                Ok(s) => s,
                Err(e) => {
                    failures += 1;
                    if failures >= self.reconnect.max_attempts.max(1) {
                        return Err(GridError::Io(e));
                    }
                    thread::sleep(self.reconnect.delay(failures));
                    continue;
                }
            };
            let sessions_before = summary.sessions;
            match self.session(stream, &mut summary, &mut assignments, &mut spec_digest) {
                SessionEnd::Goodbye => return Ok(summary),
                SessionEnd::Rejected(reason) => return Err(GridError::Rejected(reason)),
                SessionEnd::Aborted => return Ok(summary),
                SessionEnd::Lost => {
                    if summary.sessions > sessions_before {
                        // The handshake succeeded this time; a later drop
                        // starts a fresh reconnect budget.
                        failures = 0;
                    }
                    failures += 1;
                    if failures >= self.reconnect.max_attempts.max(1) {
                        return Err(GridError::Protocol(
                            "connection lost and reconnect budget exhausted".to_string(),
                        ));
                    }
                    thread::sleep(self.reconnect.delay(failures));
                }
            }
        }
    }

    /// One connected session: handshake, then the assignment loop.
    fn session(
        &self,
        stream: TcpStream,
        summary: &mut WorkerSummary,
        assignments: &mut u64,
        spec_digest: &mut String,
    ) -> SessionEnd {
        let _ = stream.set_nodelay(true);
        let shared = Arc::new(Mutex::new(stream));
        let write = |frame: &Frame| -> Result<u64, std::io::Error> {
            let mut guard = shared.lock().expect("worker stream");
            write_frame(&mut *guard, frame)
        };

        if write(&hello(&self.name, spec_digest)).is_err() {
            return SessionEnd::Lost;
        }
        // Reads bypass the write mutex: only this thread reads.
        let mut reader = match shared.lock().expect("worker stream").try_clone() {
            Ok(r) => r,
            Err(_) => return SessionEnd::Lost,
        };
        let advertised = match read_frame(&mut reader) {
            Ok((
                Frame::Welcome {
                    spec_digest: digest,
                    heartbeat_us,
                    ..
                },
                _,
            )) => {
                *spec_digest = digest;
                summary.sessions += 1;
                heartbeat_us
            }
            Ok((Frame::Reject { reason }, _)) => return SessionEnd::Rejected(reason),
            Ok(_) | Err(_) => return SessionEnd::Lost,
        };
        // Heartbeat cadence: an explicit builder override wins, otherwise
        // adopt what the coordinator advertised (`/1`-era coordinators
        // advertise nothing — fall back to 1 s).
        let heartbeat_interval = self
            .heartbeat_interval
            .or(advertised.map(Duration::from_micros))
            .unwrap_or(Duration::from_secs(1));

        let telemetry = Telemetry::to_writer(Box::new(FrameForwarder {
            stream: Arc::clone(&shared),
            buf: Vec::new(),
        }));

        loop {
            let (frame, _) = match read_frame(&mut reader) {
                Ok(ok) => ok,
                Err(_) => return SessionEnd::Lost,
            };
            match frame {
                Frame::Assign { cell, spec } => {
                    *assignments += 1;
                    if let Some((nth, mode)) = self.abort_after {
                        if *assignments >= nth {
                            match mode {
                                AbortMode::Disconnect => return SessionEnd::Aborted,
                                AbortMode::Wedge => {
                                    // Hold the socket open, say nothing. In
                                    // tests this runs on a detached thread
                                    // that dies with the process.
                                    thread::sleep(Duration::from_secs(3600));
                                    return SessionEnd::Aborted;
                                }
                            }
                        }
                    }
                    let index = cell as usize;
                    let cell_start = std::time::Instant::now();
                    telemetry.cell_started(index, &spec);
                    // Heartbeat while computing. The stop signal is a
                    // channel send so a fast cell never waits out a
                    // sleeping heartbeat thread.
                    let (heartbeat_stop, stop_rx) = mpsc::channel::<()>();
                    let heartbeat = {
                        let shared = Arc::clone(&shared);
                        let interval = heartbeat_interval;
                        thread::spawn(move || loop {
                            match stop_rx.recv_timeout(interval) {
                                Err(mpsc::RecvTimeoutError::Timeout) => {
                                    let mut guard = shared.lock().expect("worker stream");
                                    if write_frame(&mut *guard, &Frame::Heartbeat).is_err() {
                                        return;
                                    }
                                }
                                Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => return,
                            }
                        })
                    };
                    let options = RunOptions {
                        analysis_threads: self.analysis_threads,
                        slack_store: None,
                    };
                    let ctx = ComputeContext {
                        index,
                        cell: &spec,
                        telemetry: &telemetry,
                        chaos: &self.chaos,
                        retry: self.retry,
                        deadline: self.deadline,
                        options: &options,
                    };
                    // Phases stay worker-local: the wire frame carries
                    // outcomes only, so grid-computed cells report a zero
                    // phase breakdown in snapshots.
                    let (mut outcome, _phases) = compute_cell(&ctx);
                    // Chaos hook: a lying worker computes honestly, then
                    // perturbs one numeric leaf of what it reports. The
                    // audit layer must catch this from the bytes alone.
                    if let Some(seed) = self.chaos.lie(index) {
                        if let CellOutcome::Computed { result, .. } = &mut outcome {
                            mcd_harness::chaos::lie_about(result, seed);
                        }
                    }
                    let _ = heartbeat_stop.send(());
                    let _ = heartbeat.join();
                    match &outcome {
                        CellOutcome::Computed { attempts, .. } => telemetry.cell_finished(
                            index,
                            CellSource::Computed {
                                attempts: *attempts,
                            },
                            cell_start.elapsed(),
                        ),
                        CellOutcome::Failed(f) => {
                            telemetry.cell_failed(index, f.attempts, &f.message, f.deterministic)
                        }
                        CellOutcome::Stalled { waited } => telemetry.cell_stalled(index, *waited),
                        CellOutcome::Cached(_) | CellOutcome::Skipped => {}
                    }
                    let wire_outcome = WireOutcome::from_outcome(&outcome)
                        .expect("compute_cell never yields Cached/Skipped");
                    let result = Frame::CellResult {
                        cell,
                        outcome: wire_outcome,
                    };
                    if write(&result).is_err() {
                        return SessionEnd::Lost;
                    }
                    summary.cells += 1;
                }
                Frame::Drain => {
                    summary.drained = true;
                    return SessionEnd::Goodbye;
                }
                Frame::Shutdown => return SessionEnd::Goodbye,
                Frame::Reject { reason } => return SessionEnd::Rejected(reason),
                _ => return SessionEnd::Lost,
            }
        }
    }
}

/// How one session ended, from the worker's point of view.
enum SessionEnd {
    /// Coordinator sent Drain or Shutdown: done, exit cleanly.
    Goodbye,
    /// Handshake refused: fatal, do not retry.
    Rejected(String),
    /// Chaos abort triggered: exit without reconnecting.
    Aborted,
    /// Connection died: reconnect with backoff.
    Lost,
}

/// Adapts the worker's JSONL telemetry stream onto the wire: buffers
/// bytes until a full line, parses it, and sends it as a
/// [`Frame::TelemetryEvent`]. Forwarding is best-effort — a telemetry
/// frame that cannot be sent is dropped, never an error, because losing
/// narration must not fail a cell.
struct FrameForwarder {
    stream: Arc<Mutex<TcpStream>>,
    buf: Vec<u8>,
}

impl Write for FrameForwarder {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]);
            if text.trim().is_empty() {
                continue;
            }
            if let Ok(event) = serde_json::from_str::<Value>(&text) {
                let frame = Frame::TelemetryEvent { event };
                let mut guard = self.stream.lock().expect("worker stream");
                let _ = write_frame(&mut *guard, &frame);
            }
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}
