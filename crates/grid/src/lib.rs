//! Distributed campaign execution for the MCD sweep harness.
//!
//! `mcd-grid` shards a [`mcd_harness::CampaignSpec`] across TCP-connected
//! worker processes, using only `std::net` — no external dependencies,
//! consistent with the workspace's `shims/` policy. Three pieces:
//!
//! - [`wire`]: the `mcd-grid-wire/1` frame protocol — length-prefixed,
//!   tagged, versioned, with a handshake carrying the campaign spec
//!   digest so workers can never join the wrong campaign.
//! - [`GridCampaign`] / [`GridServer`] (the coordinator): owns the
//!   content-addressed result cache and checkpoint manifest, probes the
//!   cache up front, streams cell assignments to workers, and assembles
//!   the report in spec-expansion order. The canonical result JSON is
//!   **byte-identical** to a serial [`mcd_harness::Campaign`] run,
//!   regardless of worker count, join order, or mid-run disconnects.
//! - [`GridWorker`]: a cache-less executor that runs each assigned cell
//!   through the same supervised retry loop local campaigns use
//!   (watchdog deadline, panic retries, deterministic fail-fast) and
//!   forwards its telemetry over the wire for coordinator-side
//!   attribution.
//!
//! Fault tolerance mirrors the local harness: heartbeat-timeout eviction
//! requeues a dead worker's in-flight cell at the front of the queue,
//! disconnected workers reconnect with exponential backoff, worker-side
//! deterministic panics propagate to the coordinator as failed cells
//! (never reassigned), and an interrupt drains to a resumable checkpoint.

#![warn(missing_docs)]

use std::fmt;
use std::io;

use mcd_harness::HarnessError;

pub mod coordinator;
pub mod stats;
pub mod wire;
pub mod worker;

pub use coordinator::{GridCampaign, GridServer};
pub use stats::{GridStats, WorkerStats};
pub use wire::{Frame, WireError, WireOutcome, WorkerFingerprint, MAX_FRAME_BYTES, WIRE_PROTOCOL};
pub use worker::{AbortMode, GridWorker, WorkerSummary};

/// Anything that can go wrong running a distributed campaign.
#[derive(Debug)]
pub enum GridError {
    /// A socket-level failure (bind, connect, accept).
    Io(io::Error),
    /// A frame could not be read or decoded.
    Wire(WireError),
    /// The underlying harness failed (spec, cache, checkpoint).
    Harness(HarnessError),
    /// The coordinator refused the handshake.
    Rejected(String),
    /// The peer violated the protocol (unexpected frame, bad state).
    Protocol(String),
    /// The campaign configuration is self-contradictory (e.g. a
    /// heartbeat timeout at or below the heartbeat interval).
    Config(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::Io(e) => write!(f, "grid i/o error: {e}"),
            GridError::Wire(e) => write!(f, "grid wire error: {e}"),
            GridError::Harness(e) => write!(f, "grid harness error: {e}"),
            GridError::Rejected(reason) => write!(f, "handshake rejected: {reason}"),
            GridError::Protocol(what) => write!(f, "protocol violation: {what}"),
            GridError::Config(what) => write!(f, "invalid grid configuration: {what}"),
        }
    }
}

impl std::error::Error for GridError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GridError::Io(e) => Some(e),
            GridError::Wire(e) => Some(e),
            GridError::Harness(e) => Some(e),
            GridError::Rejected(_) | GridError::Protocol(_) | GridError::Config(_) => None,
        }
    }
}

impl From<io::Error> for GridError {
    fn from(e: io::Error) -> GridError {
        GridError::Io(e)
    }
}

impl From<WireError> for GridError {
    fn from(e: WireError) -> GridError {
        GridError::Wire(e)
    }
}

impl From<HarnessError> for GridError {
    fn from(e: HarnessError) -> GridError {
        GridError::Harness(e)
    }
}
