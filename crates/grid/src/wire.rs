//! The `mcd-grid-wire/2` frame protocol.
//!
//! Every message between coordinator and worker is one *frame*: a 4-byte
//! big-endian length (covering everything after itself), a 1-byte frame
//! tag, and a compact-JSON payload of the externally-tagged [`Frame`]
//! value. The redundant tag byte lets a receiver reject a torn or
//! corrupted frame before paying for JSON parsing, and lets the decoder
//! verify that the payload actually is the frame the tag promised
//! ([`WireError::TagMismatch`]).
//!
//! The protocol is versioned by the [`WIRE_PROTOCOL`] string carried in
//! the [`Frame::Hello`] handshake; a coordinator rejects mismatched
//! workers with [`Frame::Reject`] before assigning anything. Frames are
//! capped at [`MAX_FRAME_BYTES`] so a corrupt length prefix cannot make
//! a peer allocate unbounded memory.

use std::fmt;
use std::io::{self, Read, Write};
use std::time::Duration;

use mcd_core::BenchmarkResults;
use mcd_harness::retry::CellFailure;
use mcd_harness::{CampaignSpec, CellOutcome, CellSpec};
use serde::{Deserialize, Serialize, Value};

/// Protocol identifier exchanged in the [`Frame::Hello`] handshake.
///
/// `/2` extends the `/1` [`Frame::Hello`] with an optional worker
/// [`WorkerFingerprint`]; every other frame shape is unchanged. A `/2`
/// coordinator still *decodes* a `/1` `Hello` (the fingerprint key is
/// simply absent) so it can answer with a [`Frame::Reject`] the old peer
/// understands, instead of dropping the connection undiagnosed.
pub const WIRE_PROTOCOL: &str = "mcd-grid-wire/2";

/// Hard cap on the length prefix. The largest legitimate frame is a
/// [`Frame::CellResult`] carrying a full [`BenchmarkResults`] (a few
/// kilobytes); 16 MiB leaves three orders of magnitude of headroom while
/// still bounding what a torn length prefix can ask a peer to allocate.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// What a worker reports back for one assigned cell.
///
/// The wire shape mirrors [`CellOutcome`] minus `Cached` (only the
/// coordinator owns a cache, so workers never observe hits) and
/// `Skipped` (assignment is explicit; an unassigned cell has no frame).
// One value per cell result; the Computed/Failed size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireOutcome {
    /// The cell computed successfully.
    Computed {
        /// The benchmark results, byte-identical to a serial run.
        result: BenchmarkResults,
        /// Attempt number that succeeded (1 = first try).
        attempts: u32,
    },
    /// Every attempt panicked.
    Failed {
        /// Attempts consumed.
        attempts: u32,
        /// Last panic payload.
        message: String,
        /// True when consecutive attempts died identically — the
        /// coordinator must fail fast instead of reassigning.
        deterministic: bool,
    },
    /// The watchdog abandoned the cell past its deadline.
    Stalled {
        /// How long the worker waited, in microseconds.
        waited_us: u64,
    },
}

impl WireOutcome {
    /// Converts a supervisor outcome for the wire. Returns `None` for
    /// the outcome variants a worker can never produce.
    pub fn from_outcome(outcome: &CellOutcome) -> Option<WireOutcome> {
        match outcome {
            CellOutcome::Computed { result, attempts } => Some(WireOutcome::Computed {
                result: result.clone(),
                attempts: *attempts,
            }),
            CellOutcome::Failed(f) => Some(WireOutcome::Failed {
                attempts: f.attempts,
                message: f.message.clone(),
                deterministic: f.deterministic,
            }),
            CellOutcome::Stalled { waited } => Some(WireOutcome::Stalled {
                waited_us: waited.as_micros() as u64,
            }),
            CellOutcome::Cached(_) | CellOutcome::Skipped => None,
        }
    }

    /// Converts back to the supervisor outcome the coordinator records.
    pub fn into_outcome(self) -> CellOutcome {
        match self {
            WireOutcome::Computed { result, attempts } => {
                CellOutcome::Computed { result, attempts }
            }
            WireOutcome::Failed {
                attempts,
                message,
                deterministic,
            } => CellOutcome::Failed(CellFailure {
                attempts,
                message,
                deterministic,
            }),
            WireOutcome::Stalled { waited_us } => CellOutcome::Stalled {
                waited: Duration::from_micros(waited_us),
            },
        }
    }
}

/// The environment a worker computes in, carried in the `/2` handshake.
///
/// When an audit catches two workers disagreeing about the same cell,
/// the fingerprint is what makes the divergence *attributable*: the
/// rollup can say "the quarantined worker ran a different build" rather
/// than leaving the operator to guess.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerFingerprint {
    /// `mcd-grid` crate version the worker was built from.
    pub version: String,
    /// Target the worker binary runs on (`arch-os`).
    pub target: String,
    /// Build profile and compiled-in feature set.
    pub features: String,
    /// Digest of the spec the worker is pinned to (empty until learned).
    pub spec_digest: String,
}

impl WorkerFingerprint {
    /// The fingerprint of *this* build, pinned to `spec_digest`.
    pub fn current(spec_digest: &str) -> WorkerFingerprint {
        WorkerFingerprint {
            version: env!("CARGO_PKG_VERSION").to_string(),
            target: format!("{}-{}", std::env::consts::ARCH, std::env::consts::OS),
            features: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            spec_digest: spec_digest.to_string(),
        }
    }

    /// Compact `version target features` form for telemetry and blame.
    pub fn summary(&self) -> String {
        format!("{} {} {}", self.version, self.target, self.features)
    }
}

/// One `mcd-grid-wire/2` message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Frame {
    /// Worker → coordinator: opens a session.
    Hello {
        /// Must equal [`WIRE_PROTOCOL`].
        protocol: String,
        /// Human-readable worker name (host tag), for attribution.
        worker: String,
        /// Digest of the spec the worker expects, or empty to accept
        /// whatever campaign the coordinator is serving.
        spec_digest: String,
        /// Worker environment fingerprint; `None` from `/1` peers,
        /// whose `Hello` never carried the key.
        fingerprint: Option<WorkerFingerprint>,
    },
    /// Coordinator → worker: session accepted.
    Welcome {
        /// Coordinator-assigned worker id (unique per connection).
        worker_id: u64,
        /// Digest of the campaign spec being served.
        spec_digest: String,
        /// Total cells in the campaign (progress denominator).
        cells: u64,
        /// Heartbeat interval (µs) the coordinator wants while computing,
        /// comfortably inside its eviction timeout. `None` from `/1`-era
        /// coordinators; the worker then keeps its own default.
        heartbeat_us: Option<u64>,
    },
    /// Coordinator → worker: session refused; the connection closes.
    Reject {
        /// Why the handshake failed.
        reason: String,
    },
    /// Coordinator → worker: run this cell.
    Assign {
        /// Cell index within the expanded campaign.
        cell: u64,
        /// The full cell specification.
        spec: CellSpec,
    },
    /// Worker → coordinator: outcome for an assigned cell.
    CellResult {
        /// Cell index the outcome belongs to.
        cell: u64,
        /// What happened.
        outcome: WireOutcome,
    },
    /// Worker → coordinator: liveness signal while computing.
    Heartbeat,
    /// Worker → coordinator: one worker-side telemetry event (a JSONL
    /// object) forwarded for the coordinator's unified stream.
    TelemetryEvent {
        /// The event object, verbatim from the worker's stream.
        event: Value,
    },
    /// Coordinator → worker: finish the current cell, then exit; no
    /// further cells will be assigned.
    Drain,
    /// Coordinator → worker: campaign complete, exit now.
    Shutdown,
}

impl Frame {
    /// The 1-byte tag prefixed to this frame's payload.
    pub fn tag(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 1,
            Frame::Welcome { .. } => 2,
            Frame::Reject { .. } => 3,
            Frame::Assign { .. } => 4,
            Frame::CellResult { .. } => 5,
            Frame::Heartbeat => 6,
            Frame::TelemetryEvent { .. } => 7,
            Frame::Drain => 8,
            Frame::Shutdown => 9,
        }
    }

    /// Frame name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "Hello",
            Frame::Welcome { .. } => "Welcome",
            Frame::Reject { .. } => "Reject",
            Frame::Assign { .. } => "Assign",
            Frame::CellResult { .. } => "CellResult",
            Frame::Heartbeat => "Heartbeat",
            Frame::TelemetryEvent { .. } => "TelemetryEvent",
            Frame::Drain => "Drain",
            Frame::Shutdown => "Shutdown",
        }
    }
}

/// Decode/transport failure for one frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(io::Error),
    /// Clean end of stream at a frame boundary (the peer closed).
    Eof,
    /// The buffer or stream ended mid-frame.
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversize(usize),
    /// The tag byte names no known frame.
    UnknownTag(u8),
    /// The payload is not valid JSON for any frame.
    BadPayload(String),
    /// The payload decoded to a different frame than the tag promised.
    TagMismatch {
        /// Tag byte on the wire.
        tag: u8,
        /// Frame the payload actually decoded to.
        decoded: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Eof => write!(f, "stream closed at frame boundary"),
            WireError::Truncated => write!(f, "stream ended mid-frame"),
            WireError::Oversize(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME_BYTES}")
            }
            WireError::UnknownTag(tag) => write!(f, "unknown frame tag {tag}"),
            WireError::BadPayload(e) => write!(f, "frame payload is not valid JSON: {e}"),
            WireError::TagMismatch { tag, decoded } => {
                write!(
                    f,
                    "frame tag {tag} does not match decoded {decoded} payload"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> WireError {
        WireError::Io(e)
    }
}

/// Encodes one frame: length prefix, tag byte, compact-JSON payload.
pub fn encode(frame: &Frame) -> Vec<u8> {
    let payload = serde_json::to_string(frame).expect("JSON writing is infallible");
    let len = 1 + payload.len();
    let mut buf = Vec::with_capacity(4 + len);
    buf.extend_from_slice(&(len as u32).to_be_bytes());
    buf.push(frame.tag());
    buf.extend_from_slice(payload.as_bytes());
    buf
}

/// Decodes one frame from the front of `buf`, returning the frame and
/// how many bytes it consumed (so concatenated frames parse in turn).
pub fn decode(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversize(len));
    }
    if len == 0 {
        return Err(WireError::BadPayload("zero-length frame".to_string()));
    }
    if buf.len() < 4 + len {
        return Err(WireError::Truncated);
    }
    let tag = buf[4];
    if !(1..=9).contains(&tag) {
        return Err(WireError::UnknownTag(tag));
    }
    let payload =
        std::str::from_utf8(&buf[5..4 + len]).map_err(|e| WireError::BadPayload(e.to_string()))?;
    let frame: Frame =
        serde_json::from_str(payload).map_err(|e| WireError::BadPayload(e.to_string()))?;
    if frame.tag() != tag {
        return Err(WireError::TagMismatch {
            tag,
            decoded: frame.name(),
        });
    }
    Ok((frame, 4 + len))
}

/// Writes one frame to `w`, returning the bytes put on the wire.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<u64> {
    let buf = encode(frame);
    w.write_all(&buf)?;
    w.flush()?;
    Ok(buf.len() as u64)
}

/// Reads one frame from `r`, returning it with the bytes consumed.
///
/// A clean close at a frame boundary is [`WireError::Eof`]; a close
/// mid-frame is [`WireError::Truncated`].
pub fn read_frame(r: &mut impl Read) -> Result<(Frame, u64), WireError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(WireError::Eof),
            Ok(0) => return Err(WireError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversize(len));
    }
    if len == 0 {
        return Err(WireError::BadPayload("zero-length frame".to_string()));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    })?;
    let mut whole = Vec::with_capacity(4 + len);
    whole.extend_from_slice(&header);
    whole.extend_from_slice(&body);
    let (frame, consumed) = decode(&whole)?;
    debug_assert_eq!(consumed, 4 + len);
    Ok((frame, consumed as u64))
}

/// Convenience for handshakes: a [`Frame::Hello`] for this protocol,
/// fingerprinted with the current build.
pub fn hello(worker: &str, spec_digest: &str) -> Frame {
    Frame::Hello {
        protocol: WIRE_PROTOCOL.to_string(),
        worker: worker.to_string(),
        spec_digest: spec_digest.to_string(),
        fingerprint: Some(WorkerFingerprint::current(spec_digest)),
    }
}

/// Digest a spec exactly as the checkpoint layer does, so handshake
/// digests and checkpoint manifests always agree.
pub fn digest_spec(spec: &CampaignSpec) -> String {
    mcd_harness::spec_digest(spec)
}
