//! Chrome `trace_event` export.
//!
//! Renders a [`RunTrace`] in the Trace Event Format (the JSON consumed by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)): one thread
//! track per clock domain carrying PLL re-lock and synchronization-stall
//! slices, plus one counter track per domain for the frequency stairstep
//! and one for queue occupancy.
//!
//! Schema choices:
//! * `pid` is always 1 (one machine), `tid` is the domain index, and a
//!   `thread_name` metadata event labels each track with the domain name.
//! * Frequency and occupancy use counter events (`"ph": "C"`) named
//!   `"freq:<domain> MHz"` / `"occupancy:<domain>"` — counters are keyed
//!   by `(pid, name)`, so the domain goes in the name.
//! * Re-lock, sync-stall and fast-forward windows are complete slices
//!   (`"ph": "X"`) with microsecond `ts`/`dur`.
//! * Events are emitted in nondecreasing `ts` order.

use serde::{Map, Number, Value};

use crate::model::{RunTrace, DOMAIN_LABELS};

/// Femtoseconds → trace microseconds.
fn us(fs: u64) -> f64 {
    fs as f64 / 1e9
}

fn num(v: f64) -> Value {
    Value::Number(Number::F64(v))
}

fn base_event(name: &str, ph: &str, ts: f64, tid: usize) -> Map {
    let mut e = Map::new();
    e.insert("name".to_string(), Value::String(name.to_string()));
    e.insert("ph".to_string(), Value::String(ph.to_string()));
    e.insert("ts".to_string(), num(ts));
    e.insert("pid".to_string(), Value::Number(Number::U64(1)));
    e.insert("tid".to_string(), Value::Number(Number::U64(tid as u64)));
    e
}

/// Renders `trace` as an in-memory Chrome trace_event JSON document.
pub fn chrome_trace_value(trace: &RunTrace) -> Value {
    // (ts, emission order) keyed events; sorted before assembly so viewers
    // that require monotonic timestamps are satisfied.
    let mut events: Vec<(f64, usize, Value)> = Vec::new();
    let push = |events: &mut Vec<(f64, usize, Value)>, ts: f64, e: Map| {
        let order = events.len();
        events.push((ts, order, Value::Object(e)));
    };

    for (d, label) in DOMAIN_LABELS.iter().enumerate() {
        // Track naming metadata.
        let mut meta = base_event("thread_name", "M", 0.0, d);
        let mut args = Map::new();
        args.insert("name".to_string(), Value::String(label.to_string()));
        meta.insert("args".to_string(), Value::Object(args));
        push(&mut events, 0.0, meta);

        let Some(dom) = trace.domains.get(d) else {
            continue;
        };

        // Frequency stairstep: one counter sample per operating-point
        // change, plus a closing sample at the end of the run so the last
        // step has width.
        let freq_name = format!("freq:{label} MHz");
        let step = |events: &mut Vec<(f64, usize, Value)>, ts: f64, mhz: f64| {
            let mut e = base_event(&freq_name, "C", ts, d);
            let mut args = Map::new();
            args.insert("MHz".to_string(), num(mhz));
            e.insert("args".to_string(), Value::Object(args));
            push(events, ts, e);
        };
        for s in &dom.freq_steps {
            step(&mut events, us(s.at.as_femtos()), s.hz as f64 / 1e6);
        }
        if let Some(last) = dom.freq_steps.last() {
            let end = us(trace.total_time.as_femtos());
            if end > us(last.at.as_femtos()) {
                step(&mut events, end, last.hz as f64 / 1e6);
            }
        }

        // Occupancy counter samples.
        let occ_name = format!("occupancy:{label}");
        for s in &dom.occupancy {
            let ts = us(s.at.as_femtos());
            let mut e = base_event(&occ_name, "C", ts, d);
            let mut args = Map::new();
            args.insert("occupancy".to_string(), num(s.occupancy));
            e.insert("args".to_string(), Value::Object(args));
            push(&mut events, ts, e);
        }

        // PLL re-lock slices.
        for r in &dom.relocks {
            let ts = us(r.start.as_femtos());
            let mut e = base_event("pll-relock", "X", ts, d);
            e.insert("dur".to_string(), num(us((r.end - r.start).as_femtos())));
            push(&mut events, ts, e);
        }

        // Synchronization-window stalls (destination-domain track).
        for s in &dom.sync_stalls {
            let ts = us(s.at.as_femtos());
            let name = format!(
                "sync-stall:{}→{label}",
                DOMAIN_LABELS.get(s.src).copied().unwrap_or("?")
            );
            let mut e = base_event(&name, "X", ts, d);
            e.insert("dur".to_string(), num(us(s.wait.as_femtos())));
            push(&mut events, ts, e);
        }

        // Fast-forward windows.
        for f in &dom.fast_forwards {
            let ts = us(f.start.as_femtos());
            let mut e = base_event("fast-forward", "X", ts, d);
            e.insert("dur".to_string(), num(us((f.end - f.start).as_femtos())));
            let mut args = Map::new();
            args.insert("edges".to_string(), Value::Number(Number::U64(f.edges)));
            e.insert("args".to_string(), Value::Object(args));
            push(&mut events, ts, e);
        }
    }

    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("finite ts")
            .then(a.1.cmp(&b.1))
    });
    let mut doc = Map::new();
    doc.insert(
        "traceEvents".to_string(),
        Value::Array(events.into_iter().map(|(_, _, e)| e).collect()),
    );
    doc.insert(
        "displayTimeUnit".to_string(),
        Value::String("ms".to_string()),
    );
    Value::Object(doc)
}

/// Renders `trace` as a Chrome trace_event JSON string, ready to load in
/// `chrome://tracing` or Perfetto.
pub fn chrome_trace_json(trace: &RunTrace) -> String {
    serde_json::to_string(&chrome_trace_value(trace)).expect("JSON writing is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DomainTrace, FreqStep, RelockSpan, SyncStall, TRACE_SCHEMA};
    use mcd_time::Femtos;

    fn sample_trace() -> RunTrace {
        let mut domains: Vec<DomainTrace> = (0..4).map(|_| DomainTrace::default()).collect();
        for (d, dom) in domains.iter_mut().enumerate() {
            dom.freq_steps.push(FreqStep {
                at: Femtos::ZERO,
                hz: 1_000_000_000,
                volts: 1.2,
            });
            dom.freq_steps.push(FreqStep {
                at: Femtos::from_micros(5 + d as u64),
                hz: 500_000_000,
                volts: 0.925,
            });
        }
        domains[2].relocks.push(RelockSpan {
            start: Femtos::from_micros(5),
            end: Femtos::from_micros(20),
        });
        domains[1].sync_stalls.push(SyncStall {
            at: Femtos::from_micros(3),
            wait: Femtos::from_femtos(700_000),
            src: 0,
        });
        RunTrace {
            schema: TRACE_SCHEMA.to_string(),
            total_time: Femtos::from_micros(50),
            sample_every: 1,
            ring_capacity: 16,
            domains,
        }
    }

    #[test]
    fn export_is_well_formed_and_monotonic() {
        let json = chrome_trace_json(&sample_trace());
        let doc: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        let mut prev = f64::NEG_INFINITY;
        for e in events {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(e.get(key).is_some(), "event missing {key}: {e:?}");
            }
            let ts = e.get("ts").and_then(Value::as_number).unwrap().as_f64();
            assert!(ts >= prev, "timestamps must be nondecreasing");
            prev = ts;
        }
    }

    #[test]
    fn every_domain_gets_a_frequency_track() {
        let doc = chrome_trace_value(&sample_trace());
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        for label in DOMAIN_LABELS {
            let name = format!("freq:{label} MHz");
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("C")
                        && e.get("name").and_then(Value::as_str) == Some(name.as_str())
                }),
                "missing frequency track for {label}"
            );
        }
    }

    #[test]
    fn slices_carry_durations() {
        let doc = chrome_trace_value(&sample_trace());
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        let relock = events
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some("pll-relock"))
            .expect("relock slice present");
        let dur = relock
            .get("dur")
            .and_then(Value::as_number)
            .unwrap()
            .as_f64();
        assert!((dur - 15.0).abs() < 1e-9, "15 µs re-lock, got {dur}");
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Value::as_str)
                    == Some("sync-stall:front-end→integer"))
        );
    }
}
