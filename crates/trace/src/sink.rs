//! The hook surface the simulator drives.

use mcd_time::{Femtos, Frequency};

use crate::model::{RunTrace, StallCause};

/// Per-domain event hooks invoked by the pipeline while it runs.
///
/// Every method is a pure observer with a no-op default, so custom sinks
/// implement only the events they care about. Domains are identified by
/// index (`0..`[`DOMAINS`]`) in the pipeline's domain order ([`DOMAIN_LABELS`]).
///
/// The contract: a sink must not influence the simulation. The pipeline
/// guarantees it passes the same values it computes for its own use, and
/// the golden-fixture tests prove `RunResult` bytes are identical with and
/// without a sink attached.
///
/// [`DOMAINS`]: crate::DOMAINS
/// [`DOMAIN_LABELS`]: crate::DOMAIN_LABELS
pub trait TraceSink: Send {
    /// A new operating point took effect on `domain`'s clock at `at`.
    fn freq_change(&mut self, domain: usize, at: Femtos, frequency: Frequency, volts: f64) {
        let _ = (domain, at, frequency, volts);
    }

    /// A frequency request (governor decision or schedule entry) was issued
    /// for `domain`. The change itself lands later, through the DVFS
    /// transition model, and is reported by [`TraceSink::freq_change`].
    fn freq_request(&mut self, domain: usize, at: Femtos, frequency: Frequency) {
        let _ = (domain, at, frequency);
    }

    /// `domain`'s clock produced no edges in `start..end` while its PLL
    /// re-locked after a frequency change.
    fn pll_relock(&mut self, domain: usize, start: Femtos, end: Femtos) {
        let _ = (domain, start, end);
    }

    /// A value produced in `src` at `at` waited `wait` before becoming
    /// visible in `dst` (§2.2 synchronization window).
    fn sync_stall(&mut self, src: usize, dst: usize, at: Femtos, wait: Femtos) {
        let _ = (src, dst, at, wait);
    }

    /// Queue occupancy of `domain`'s issue structure, sampled at one of its
    /// clock edges.
    fn queue_sample(&mut self, domain: usize, at: Femtos, occupancy: f64) {
        let _ = (domain, at, occupancy);
    }

    /// The run loop batch-consumed `edges` idle edges of `domain` between
    /// `start` and `end` without running tick machinery.
    fn fast_forward(&mut self, domain: usize, start: Femtos, end: Femtos, edges: u64) {
        let _ = (domain, start, end, edges);
    }

    /// `domain` lost `duration` of potential work at `at` for `cause`
    /// (used for stall causes not already implied by the span hooks, e.g.
    /// fetch stalled on a branch redirect).
    fn stall(&mut self, domain: usize, at: Femtos, cause: StallCause, duration: Femtos) {
        let _ = (domain, at, cause, duration);
    }

    /// Consumes the sink at the end of a run. Recorders return the
    /// accumulated [`RunTrace`]; streaming sinks return `None`.
    fn into_trace(self: Box<Self>, total_time: Femtos) -> Option<RunTrace> {
        let _ = total_time;
        None
    }
}
