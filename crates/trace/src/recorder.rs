//! The standard recording sink.

use mcd_time::{Femtos, Frequency};

use crate::model::{
    DomainCounters, DomainTrace, FastForwardSpan, FreqStep, OccupancySample, RelockSpan, RunTrace,
    StallCause, SyncStall, DOMAINS, TRACE_SCHEMA,
};
use crate::ring::Ring;
use crate::sink::TraceSink;

/// Recording parameters: how aggressively to downsample and how much event
/// history to retain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Keep every `sample_every`-th queue-occupancy sample per domain
    /// (counters still integrate every sample). 1 = keep all.
    pub sample_every: u64,
    /// Ring capacity for each event class per domain; the newest events are
    /// kept and the eviction count is reported.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 64,
            ring_capacity: 4096,
        }
    }
}

impl TraceConfig {
    /// Keep everything (unbounded memory; debugging runs only).
    pub fn full() -> Self {
        TraceConfig {
            sample_every: 1,
            ring_capacity: usize::MAX,
        }
    }
}

/// Ring-buffered storage for one domain.
struct DomainRec {
    counters: DomainCounters,
    freq_steps: Ring<FreqStep>,
    freq_requests: Ring<FreqStep>,
    relocks: Ring<RelockSpan>,
    sync_stalls: Ring<SyncStall>,
    occupancy: Ring<OccupancySample>,
    fast_forwards: Ring<FastForwardSpan>,
    /// Occupancy-downsampling phase counter.
    sample_phase: u64,
    /// Operating point in force since `residency_from` (Hz), for
    /// cycle-weighted residency accounting.
    current_hz: Option<(Femtos, f64)>,
}

impl DomainRec {
    fn new(cfg: &TraceConfig) -> Self {
        DomainRec {
            counters: DomainCounters::new(),
            freq_steps: Ring::new(cfg.ring_capacity),
            freq_requests: Ring::new(cfg.ring_capacity),
            relocks: Ring::new(cfg.ring_capacity),
            sync_stalls: Ring::new(cfg.ring_capacity),
            occupancy: Ring::new(cfg.ring_capacity),
            fast_forwards: Ring::new(cfg.ring_capacity),
            sample_phase: 0,
            current_hz: None,
        }
    }

    /// Adds `from..to` at `hz` to the residency histogram.
    fn accumulate_residency(&mut self, from: Femtos, to: Femtos, hz: f64) {
        if to <= from {
            return;
        }
        let cycles = (to - from).as_secs_f64() * hz;
        self.counters.residency_cycles[DomainCounters::residency_bin(hz)] += cycles;
    }

    fn stall(&mut self, cause: StallCause, duration: Femtos) {
        self.counters.stall_femtos[cause.index()] += duration.as_femtos();
        self.counters.stall_events[cause.index()] += 1;
    }

    fn into_trace(mut self, total_time: Femtos) -> DomainTrace {
        if let Some((from, hz)) = self.current_hz.take() {
            self.accumulate_residency(from, total_time, hz);
        }
        let dropped_events = self.freq_steps.dropped()
            + self.freq_requests.dropped()
            + self.relocks.dropped()
            + self.sync_stalls.dropped()
            + self.occupancy.dropped()
            + self.fast_forwards.dropped();
        DomainTrace {
            counters: self.counters,
            freq_steps: self.freq_steps.into_vec(),
            freq_requests: self.freq_requests.into_vec(),
            relocks: self.relocks.into_vec(),
            sync_stalls: self.sync_stalls.into_vec(),
            occupancy: self.occupancy.into_vec(),
            fast_forwards: self.fast_forwards.into_vec(),
            dropped_events,
        }
    }
}

/// A [`TraceSink`] that accumulates everything into a [`RunTrace`].
///
/// Deterministic by construction: the record is a pure function of the
/// hook stream, which is itself a pure function of the simulation — two
/// traced runs of the same cell produce identical `RunTrace`s.
pub struct TraceRecorder {
    cfg: TraceConfig,
    domains: Vec<DomainRec>,
}

impl TraceRecorder {
    /// Creates a recorder with the given sampling parameters.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceRecorder {
            domains: (0..DOMAINS).map(|_| DomainRec::new(&cfg)).collect(),
            cfg,
        }
    }
}

impl TraceSink for TraceRecorder {
    fn freq_change(&mut self, domain: usize, at: Femtos, frequency: Frequency, volts: f64) {
        let rec = &mut self.domains[domain];
        let hz = frequency.as_hz() as f64;
        if let Some((from, prev_hz)) = rec.current_hz.replace((at, hz)) {
            rec.accumulate_residency(from, at, prev_hz);
        }
        rec.counters.freq_changes += 1;
        rec.freq_steps.push(FreqStep {
            at,
            hz: frequency.as_hz(),
            volts,
        });
    }

    fn freq_request(&mut self, domain: usize, at: Femtos, frequency: Frequency) {
        let rec = &mut self.domains[domain];
        rec.counters.freq_requests += 1;
        rec.freq_requests.push(FreqStep {
            at,
            hz: frequency.as_hz(),
            volts: 0.0,
        });
    }

    fn pll_relock(&mut self, domain: usize, start: Femtos, end: Femtos) {
        let rec = &mut self.domains[domain];
        rec.counters.relocks += 1;
        rec.stall(StallCause::PllRelock, end - start);
        rec.relocks.push(RelockSpan { start, end });
    }

    fn sync_stall(&mut self, src: usize, dst: usize, at: Femtos, wait: Femtos) {
        let rec = &mut self.domains[dst];
        rec.counters.sync_crossings += 1;
        rec.stall(StallCause::SyncWindow, wait);
        rec.sync_stalls.push(SyncStall { at, wait, src });
    }

    fn queue_sample(&mut self, domain: usize, at: Femtos, occupancy: f64) {
        let rec = &mut self.domains[domain];
        rec.counters.occupancy_sum += occupancy;
        rec.counters.occupancy_samples += 1;
        rec.sample_phase += 1;
        if rec.sample_phase >= self.cfg.sample_every {
            rec.sample_phase = 0;
            rec.occupancy.push(OccupancySample { at, occupancy });
        }
    }

    fn fast_forward(&mut self, domain: usize, start: Femtos, end: Femtos, edges: u64) {
        let rec = &mut self.domains[domain];
        rec.counters.fast_forward_spans += 1;
        rec.counters.fast_forward_edges += edges;
        rec.fast_forwards
            .push(FastForwardSpan { start, end, edges });
    }

    fn stall(&mut self, domain: usize, at: Femtos, cause: StallCause, duration: Femtos) {
        let _ = at;
        self.domains[domain].stall(cause, duration);
    }

    fn into_trace(self: Box<Self>, total_time: Femtos) -> Option<RunTrace> {
        Some(RunTrace {
            schema: TRACE_SCHEMA.to_string(),
            total_time,
            sample_every: self.cfg.sample_every,
            ring_capacity: self.cfg.ring_capacity as u64,
            domains: self
                .domains
                .into_iter()
                .map(|d| d.into_trace(total_time))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RESIDENCY_BINS;

    fn fs(n: u64) -> Femtos {
        Femtos::from_femtos(n)
    }

    #[test]
    fn residency_is_cycle_weighted_across_changes() {
        let mut rec = Box::new(TraceRecorder::new(TraceConfig::default()));
        // 1 GHz for 1 µs, then 250 MHz for 1 µs.
        rec.freq_change(1, fs(0), Frequency::GHZ, 1.2);
        rec.freq_change(1, Femtos::from_micros(1), Frequency::MIN_SCALED, 0.65);
        let trace = rec.into_trace(Femtos::from_micros(2)).expect("trace");
        let c = &trace.domains[1].counters;
        let top = c.residency_cycles[RESIDENCY_BINS - 1];
        let bottom = c.residency_cycles[0];
        assert!((top - 1000.0).abs() < 1e-6, "1 µs at 1 GHz = 1000 cycles");
        assert!(
            (bottom - 250.0).abs() < 1e-6,
            "1 µs at 250 MHz = 250 cycles"
        );
        assert_eq!(c.freq_changes, 2);
        let mean = c.mean_frequency_hz();
        assert!(mean > 250e6 && mean < 1e9);
    }

    #[test]
    fn stalls_fold_into_per_cause_counters() {
        let mut rec = Box::new(TraceRecorder::new(TraceConfig::default()));
        rec.pll_relock(2, fs(100), fs(300));
        rec.sync_stall(0, 2, fs(400), fs(50));
        rec.sync_stall(1, 2, fs(500), fs(25));
        rec.stall(0, fs(600), StallCause::BranchRedirect, fs(10));
        let trace = rec.into_trace(fs(1000)).expect("trace");
        let c2 = &trace.domains[2].counters;
        assert_eq!(c2.relock_femtos(), 200);
        assert_eq!(c2.sync_penalty_femtos(), 75);
        assert_eq!(c2.sync_crossings, 2);
        assert_eq!(c2.relocks, 1);
        let c0 = &trace.domains[0].counters;
        assert_eq!(c0.stall_femtos[StallCause::BranchRedirect.index()], 10);
        assert_eq!(trace.stall_breakdown_femtos(), [75, 200, 10, 0]);
    }

    #[test]
    fn occupancy_downsampling_keeps_counters_exact() {
        let mut rec = Box::new(TraceRecorder::new(TraceConfig {
            sample_every: 10,
            ring_capacity: 8,
        }));
        for i in 0..100u64 {
            rec.queue_sample(3, fs(i), 0.5);
        }
        let trace = rec.into_trace(fs(100)).expect("trace");
        let d = &trace.domains[3];
        assert_eq!(d.counters.occupancy_samples, 100, "counters see all");
        assert!((d.counters.mean_occupancy() - 0.5).abs() < 1e-12);
        assert_eq!(d.occupancy.len(), 8, "ring keeps the newest 8 of 10 kept");
        assert_eq!(d.dropped_events, 2);
    }

    #[test]
    fn trace_is_serializable_and_round_trips() {
        let mut rec = Box::new(TraceRecorder::new(TraceConfig::default()));
        rec.freq_change(0, fs(0), Frequency::GHZ, 1.2);
        rec.fast_forward(2, fs(10), fs(90), 40);
        let trace = rec.into_trace(fs(100)).expect("trace");
        let json = serde_json::to_string(&trace).expect("serializes");
        let back: RunTrace = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, trace);
        assert_eq!(back.schema, TRACE_SCHEMA);
    }
}
