//! Bounded event storage for sampling mode.

use std::collections::VecDeque;

/// A keep-the-newest ring buffer with a drop counter.
///
/// Full campaigns stay fast because a traced run's memory is bounded: when
/// the buffer is full, pushing evicts the oldest element and counts it as
/// dropped, so consumers can tell a complete record from a truncated one.
///
/// # Example
///
/// ```
/// use mcd_trace::Ring;
///
/// let mut r = Ring::new(2);
/// r.push(1);
/// r.push(2);
/// r.push(3);
/// assert_eq!(r.dropped(), 1);
/// assert_eq!(r.into_vec(), vec![2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Creates a ring keeping at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Ring {
            // Large capacities (an effectively-unbounded config) must not
            // preallocate; the deque grows on demand.
            buf: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an element, evicting the oldest when full.
    pub fn push(&mut self, value: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(value);
    }

    /// Elements currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many elements were evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Consumes the ring, returning the retained elements oldest-first.
    pub fn into_vec(self) -> Vec<T> {
        self.buf.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_newest_elements() {
        let mut r = Ring::new(3);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.into_vec(), vec![7, 8, 9]);
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let mut r = Ring::new(8);
        r.push("a");
        r.push("b");
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.into_vec(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Ring::<u8>::new(0);
    }
}
