//! The trace data model: what a traced run leaves behind.

use serde::{Deserialize, Serialize};

use mcd_time::Femtos;

/// Number of clock domains in the machine under trace.
pub const DOMAINS: usize = 4;

/// Display labels per domain index, matching the pipeline's domain order.
pub const DOMAIN_LABELS: [&str; DOMAINS] = ["front-end", "integer", "floating-point", "load-store"];

/// Frequency-residency bins: the paper's 32-point (Transmeta) grid
/// granularity over the 250 MHz..1 GHz operating region.
pub const RESIDENCY_BINS: usize = 32;

/// Schema tag embedded in every serialized [`RunTrace`].
pub const TRACE_SCHEMA: &str = "mcd-run-trace/1";

/// Why a domain spent cycles not doing useful work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StallCause {
    /// Waiting out a §2.2 synchronization window on a cross-domain value.
    SyncWindow,
    /// Edges suppressed while the PLL re-locked after a frequency change.
    PllRelock,
    /// Fetch blocked on an unresolved mispredicted branch (redirect).
    BranchRedirect,
    /// Fetch blocked on an instruction-cache miss in flight.
    MemoryWait,
}

impl StallCause {
    /// Number of causes (array dimension for per-cause counters).
    pub const COUNT: usize = 4;

    /// All causes, in counter-index order.
    pub const ALL: [StallCause; StallCause::COUNT] = [
        StallCause::SyncWindow,
        StallCause::PllRelock,
        StallCause::BranchRedirect,
        StallCause::MemoryWait,
    ];

    /// The counter index of this cause.
    pub fn index(self) -> usize {
        match self {
            StallCause::SyncWindow => 0,
            StallCause::PllRelock => 1,
            StallCause::BranchRedirect => 2,
            StallCause::MemoryWait => 3,
        }
    }

    /// A short human-readable tag.
    pub fn label(self) -> &'static str {
        match self {
            StallCause::SyncWindow => "sync-window",
            StallCause::PllRelock => "pll-relock",
            StallCause::BranchRedirect => "branch-redirect",
            StallCause::MemoryWait => "memory-wait",
        }
    }
}

/// A frequency/voltage change applied to a domain's clock.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FreqStep {
    /// When the new operating point took effect.
    pub at: Femtos,
    /// New frequency in Hz.
    pub hz: u64,
    /// New supply voltage in volts (0.0 for request events, where the
    /// voltage is decided later by the DVFS model).
    pub volts: f64,
}

/// A PLL re-lock window during which a domain's clock produced no edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelockSpan {
    /// First suppressed instant.
    pub start: Femtos,
    /// When edges resumed.
    pub end: Femtos,
}

/// A value that had to wait out a synchronization window at a domain
/// boundary. Recorded against the *destination* domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncStall {
    /// When the value was produced.
    pub at: Femtos,
    /// How long it waited to become visible.
    pub wait: Femtos,
    /// Producing domain index.
    pub src: usize,
}

/// A queue-occupancy sample for a domain's issue structure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OccupancySample {
    /// Sample time (a clock edge of the domain).
    pub at: Femtos,
    /// Occupancy as a fraction of capacity.
    pub occupancy: f64,
}

/// A batch of idle edges the run loop consumed without tick machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastForwardSpan {
    /// Pending-edge time when the batch started.
    pub start: Femtos,
    /// Pending-edge time after the batch.
    pub end: Femtos,
    /// Edges consumed.
    pub edges: u64,
}

/// Cycle-weighted counters for one domain, exact over the whole run (not
/// subject to ring-buffer truncation).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DomainCounters {
    /// Operating-point changes applied to this domain's clock.
    pub freq_changes: u64,
    /// Frequency requests issued to this domain (governor or schedule).
    pub freq_requests: u64,
    /// PLL re-lock windows.
    pub relocks: u64,
    /// Stall time per [`StallCause`] (femtoseconds, indexed by
    /// [`StallCause::index`]).
    pub stall_femtos: [u64; StallCause::COUNT],
    /// Stall events per [`StallCause`].
    pub stall_events: [u64; StallCause::COUNT],
    /// Incoming cross-domain values that hit a synchronization window
    /// (subset of `stall_events[SyncWindow]` — identical, kept explicit).
    pub sync_crossings: u64,
    /// Fast-forward batches and total edges consumed in them.
    pub fast_forward_spans: u64,
    pub fast_forward_edges: u64,
    /// Queue-occupancy integration: Σ occupancy over sampled edges, and the
    /// sample count (mean occupancy = sum / samples).
    pub occupancy_sum: f64,
    pub occupancy_samples: u64,
    /// Cycle mass per frequency bin over the 250 MHz..1 GHz region
    /// (cycle-weighted residency; [`RESIDENCY_BINS`] entries).
    pub residency_cycles: Vec<f64>,
}

impl DomainCounters {
    /// Fresh counters with the residency histogram allocated.
    pub fn new() -> Self {
        DomainCounters {
            residency_cycles: vec![0.0; RESIDENCY_BINS],
            ..DomainCounters::default()
        }
    }

    /// The residency bin for a frequency in Hz (clamped into range).
    pub fn residency_bin(hz: f64) -> usize {
        let (lo, hi) = (250e6, 1e9);
        let t = (hz - lo) / (hi - lo);
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        ((t * (RESIDENCY_BINS - 1) as f64).round() as usize).min(RESIDENCY_BINS - 1)
    }

    /// Total synchronization-penalty time (femtoseconds).
    pub fn sync_penalty_femtos(&self) -> u64 {
        self.stall_femtos[StallCause::SyncWindow.index()]
    }

    /// Total PLL re-lock time (femtoseconds).
    pub fn relock_femtos(&self) -> u64 {
        self.stall_femtos[StallCause::PllRelock.index()]
    }

    /// Mean queue occupancy over the sampled edges.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum / self.occupancy_samples as f64
        }
    }

    /// Cycle-weighted mean frequency from the residency histogram, in Hz.
    pub fn mean_frequency_hz(&self) -> f64 {
        let total: f64 = self.residency_cycles.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let (lo, hi) = (250e6, 1e9);
        self.residency_cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let f = lo + (hi - lo) * i as f64 / (RESIDENCY_BINS - 1) as f64;
                f * c
            })
            .sum::<f64>()
            / total
    }
}

/// Everything recorded about one domain.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DomainTrace {
    /// Exact whole-run counters.
    pub counters: DomainCounters,
    /// Operating-point changes (ring-limited; newest kept).
    pub freq_steps: Vec<FreqStep>,
    /// Frequency requests (governor decisions, schedule entries).
    pub freq_requests: Vec<FreqStep>,
    /// PLL re-lock windows.
    pub relocks: Vec<RelockSpan>,
    /// Synchronization-window stalls into this domain.
    pub sync_stalls: Vec<SyncStall>,
    /// Queue-occupancy samples.
    pub occupancy: Vec<OccupancySample>,
    /// Fast-forward batches.
    pub fast_forwards: Vec<FastForwardSpan>,
    /// Events the ring buffers discarded (sum across this domain's rings).
    pub dropped_events: u64,
}

/// The observational record of one traced run: per-domain counters and
/// ring-buffered event samples. Produced *alongside* a byte-identical
/// `RunResult` — nothing here feeds back into the simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    /// Schema tag ([`TRACE_SCHEMA`]).
    pub schema: String,
    /// Wall-clock end of the traced run (last commit time).
    pub total_time: Femtos,
    /// Queue-occupancy downsampling factor the recorder used.
    pub sample_every: u64,
    /// Ring capacity the recorder used for each event class.
    pub ring_capacity: u64,
    /// One entry per domain, in domain-index order ([`DOMAIN_LABELS`]).
    pub domains: Vec<DomainTrace>,
}

impl RunTrace {
    /// Total synchronization-penalty time across all domains (femtoseconds).
    pub fn total_sync_penalty_femtos(&self) -> u64 {
        self.domains
            .iter()
            .map(|d| d.counters.sync_penalty_femtos())
            .sum()
    }

    /// Total stall time per cause across all domains (femtoseconds).
    pub fn stall_breakdown_femtos(&self) -> [u64; StallCause::COUNT] {
        let mut out = [0u64; StallCause::COUNT];
        for d in &self.domains {
            for (acc, v) in out.iter_mut().zip(d.counters.stall_femtos) {
                *acc += v;
            }
        }
        out
    }
}
