//! Observability for the multiple-clock-domain simulator.
//!
//! The paper's entire result set (§4–§5) is per-domain frequency/voltage
//! *timelines*: energy, slowdown, and interval decisions are only
//! explainable by watching what each domain did over time. This crate
//! provides the machinery to watch without perturbing:
//!
//! * [`TraceSink`] — the hook surface the pipeline drives. Every hook is a
//!   plain observer: the simulator behaves byte-identically whether a sink
//!   is attached or not (the golden-fixture tests enforce this).
//! * [`TraceRecorder`] — the standard sink: cycle-weighted per-domain
//!   counters ([`DomainCounters`]) plus ring-buffered event samples
//!   ([`Ring`]), folded into a [`RunTrace`] at the end of a run.
//! * [`chrome_trace_json`] — renders a [`RunTrace`] as Chrome
//!   `trace_event` JSON (one track per clock domain: frequency stairstep,
//!   PLL re-lock slices, synchronization stalls) for `chrome://tracing`
//!   or Perfetto.
//!
//! The crate deliberately depends only on `mcd-time`: hooks identify
//! domains by index (`0..DOMAINS`), so the pipeline crate can depend on
//! this one without a cycle.

mod chrome;
mod model;
mod recorder;
mod ring;
mod sink;

pub use chrome::{chrome_trace_json, chrome_trace_value};
pub use model::{
    DomainCounters, DomainTrace, FastForwardSpan, FreqStep, OccupancySample, RelockSpan, RunTrace,
    StallCause, SyncStall, DOMAINS, DOMAIN_LABELS, RESIDENCY_BINS, TRACE_SCHEMA,
};
pub use recorder::{TraceConfig, TraceRecorder};
pub use ring::Ring;
pub use sink::TraceSink;
