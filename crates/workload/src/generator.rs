//! Deterministic expansion of a [`BenchmarkProfile`] into a dynamic
//! instruction stream.
//!
//! Each phase lazily materializes a *static code region*: every PC slot has
//! a fixed operation class, and every branch slot a fixed behaviour class
//! (biased vs. random) and a fixed taken-target, mostly short backward jumps
//! — i.e. loops. The dynamic stream then walks this static code the way real
//! execution walks a program: hot loops re-execute the same PCs, so the
//! I-cache, BTB, and direction predictors see realistic locality. Register
//! operands and memory addresses are drawn dynamically per instance
//! according to the phase's dependence and locality parameters.
//!
//! The generator is a pure function of `(profile, seed)`: the paper's
//! methodology runs *the same program* twice — once at full speed to collect
//! the analysis trace, once with the derived reconfiguration schedule — so
//! reproducibility is a correctness requirement, not a convenience.

use std::collections::VecDeque;

use crate::isa::{Instruction, OpClass, Reg};
use crate::profile::{BenchmarkProfile, PhaseSpec};

/// Generator RNG — a tiny xoshiro256++, kept local so this crate does not
/// depend on the clocking crate.
#[derive(Debug, Clone)]
struct GenRng {
    state: [u64; 4],
}

impl GenRng {
    fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        GenRng {
            state: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }
}

/// How a static branch behaves across its dynamic instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BranchKind {
    /// Strongly biased (predictable): taken with probability 0.95.
    Biased,
    /// Statistically random (unpredictable): 50/50.
    Random,
}

/// A static branch site: fixed behaviour and fixed taken-target.
#[derive(Debug, Clone, Copy)]
struct StaticBranch {
    kind: BranchKind,
    /// Slot index of the taken target within the phase's code region.
    target_slot: u32,
}

/// One slot of a phase's static code.
#[derive(Debug, Clone, Copy)]
struct StaticOp {
    class: OpClass,
    branch: Option<StaticBranch>,
}

/// A phase's materialized static code region.
#[derive(Debug, Clone)]
struct PhaseCode {
    ops: Vec<StaticOp>,
}

impl PhaseCode {
    /// Builds the static code for one phase. Branch targets are mostly short
    /// backward jumps (loops), occasionally long jumps that spread the
    /// dynamic footprint across the region.
    fn build(spec: &PhaseSpec, rng: &mut GenRng) -> Self {
        let slots = (spec.code_bytes / 4).max(16) as u32;
        // Branch placement: a refractory gap after each branch (basic
        // blocks) plus a compensated Bernoulli rate keeps the *dynamic*
        // branch fraction near the mix value — without the gap, adjacent
        // branches form tight attractor cycles that are nearly all branches.
        let f = spec.mix.fraction(OpClass::Branch);
        let refractory: u32 = 3;
        let p_branch = if f <= 0.0 {
            0.0
        } else {
            let inv = 1.0 / f - refractory as f64;
            if inv <= 1.0 {
                1.0
            } else {
                1.0 / inv
            }
        };
        let mut gap = refractory; // allow an early branch
        let ops = (0..slots)
            .map(|slot| {
                let is_branch = gap >= refractory && rng.chance(p_branch);
                if is_branch {
                    gap = 0;
                    // Branch roles. Back-edges (loop closers) are always
                    // strongly biased — a random back-edge would exit its
                    // loop half the time and never become hot, which would
                    // silently erase the configured unpredictability from
                    // the *dynamic* stream. Unpredictable branches are
                    // short forward if-then-else skips inside loop bodies,
                    // which stay hot. A few long-range jumps (calls) spread
                    // the instruction footprint.
                    let roll = rng.uniform();
                    let (kind, target_slot) = if roll < 0.55 {
                        // Loop back-edge: jump 4–256 instructions backwards,
                        // wrapping at the region start (a saturating jump
                        // would make slot 0 an absorbing attractor and trap
                        // execution in one corner of the code).
                        let d = (4 + rng.below(253) as u32) % slots.max(1);
                        (BranchKind::Biased, (slot + slots - d) % slots)
                    } else if roll < 0.95 {
                        // Forward skip of 2–16 instructions.
                        let d = 2 + rng.below(15) as u32;
                        let kind = if rng.chance((spec.random_branch_frac / 0.40).min(1.0)) {
                            BranchKind::Random
                        } else {
                            BranchKind::Biased
                        };
                        (kind, (slot + d) % slots)
                    } else {
                        // Long-range jump anywhere in the region.
                        (BranchKind::Biased, rng.below(slots as u64) as u32)
                    };
                    StaticOp {
                        class: OpClass::Branch,
                        branch: Some(StaticBranch { kind, target_slot }),
                    }
                } else {
                    gap += 1;
                    // Sample the non-branch classes (rejection).
                    let class = loop {
                        let c = spec.mix.sample(rng.uniform());
                        if c != OpClass::Branch {
                            break c;
                        }
                    };
                    StaticOp {
                        class,
                        branch: None,
                    }
                }
            })
            .collect();
        PhaseCode { ops }
    }
}

/// Base virtual address of each phase's code region.
///
/// The per-phase stride is deliberately *not* a multiple of the 1 MB
/// direct-mapped L2 span (it is 16.25 MB): phases would otherwise alias each
/// other in L2 and every phase transition would thrash the cache.
fn code_base(phase: usize) -> u64 {
    0x0040_0000 + (phase as u64) * 0x0104_0000
}

/// Base virtual address of each phase's hot data region (stride 64 MB +
/// 64 KB, again avoiding L2 aliasing between phases while preserving the
/// L1 set mapping).
fn hot_base(phase: usize) -> u64 {
    0x1000_0000 + (phase as u64) * 0x0401_0000
}

/// Base virtual address of each phase's warm (L2-resident) data region.
fn warm_base(phase: usize) -> u64 {
    0x4000_0000 + (phase as u64) * 0x0400_0000
}

/// Base of the cold streaming region (shared; the pointer only moves
/// forward, so every access is a compulsory miss).
const STREAM_BASE: u64 = 0x8000_0000;

/// A deterministic, infinite instruction stream for one benchmark.
///
/// # Example
///
/// ```
/// use mcd_workload::{suites, WorkloadGenerator};
///
/// let profile = suites::by_name("art").expect("known benchmark");
/// let mut a = WorkloadGenerator::new(profile.clone(), 1);
/// let mut b = WorkloadGenerator::new(profile.clone(), 1);
/// for _ in 0..100 {
///     assert_eq!(a.next_instruction(), b.next_instruction());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    profile: BenchmarkProfile,
    rng: GenRng,
    /// Global dynamic instruction index.
    index: u64,
    /// Current phase and position within it.
    phase: usize,
    phase_pos: u64,
    /// Current slot within the phase's static code.
    slot: u32,
    /// Lazily built static code per phase.
    code: Vec<Option<PhaseCode>>,
    /// Recently written integer / fp destination registers (most recent
    /// first), used to realize dependence distances.
    recent_int: VecDeque<Reg>,
    recent_fp: VecDeque<Reg>,
    /// Round-robin destination allocation cursors.
    next_int_dest: u8,
    next_fp_dest: u8,
    /// Streaming pointer for guaranteed-cold accesses.
    stream_ptr: u64,
}

impl WorkloadGenerator {
    /// Number of architectural registers used for dependence chains; the
    /// rest serve as long-lived (loop-invariant) values.
    const CHAIN_REGS: u8 = 24;

    /// Creates a generator for `profile`, seeded with `seed` (mixed with the
    /// profile's name salt).
    pub fn new(profile: BenchmarkProfile, seed: u64) -> Self {
        let rng = GenRng::new(seed ^ profile.seed_salt);
        let phases = profile.phases.len();
        WorkloadGenerator {
            profile,
            rng,
            index: 0,
            phase: 0,
            phase_pos: 0,
            slot: 0,
            code: vec![None; phases],
            recent_int: VecDeque::with_capacity(32),
            recent_fp: VecDeque::with_capacity(32),
            next_int_dest: 0,
            next_fp_dest: 0,
            stream_ptr: STREAM_BASE,
        }
    }

    /// The profile being expanded.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Index of the phase the *next* instruction belongs to.
    pub fn phase_index(&self) -> usize {
        self.phase
    }

    /// Number of instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.index
    }

    fn spec(&self) -> &PhaseSpec {
        &self.profile.phases[self.phase]
    }

    /// The static code of the current phase, building it on first entry.
    ///
    /// Construction uses an RNG derived only from the profile seed and phase
    /// index, so the code is identical no matter when it is first visited.
    fn ensure_code(&mut self) {
        if self.code[self.phase].is_none() {
            let mut code_rng =
                GenRng::new(self.profile.seed_salt ^ (0xC0DE_0000 + self.phase as u64));
            let built = PhaseCode::build(&self.profile.phases[self.phase], &mut code_rng);
            self.code[self.phase] = Some(built);
        }
    }

    /// Picks a source register honouring the phase's dependence density.
    fn pick_source(&mut self, fp: bool) -> Option<Reg> {
        let spec = self.spec();
        let dep_density = spec.dep_density;
        let dep_distance = spec.dep_distance;
        let recent = if fp {
            &self.recent_fp
        } else {
            &self.recent_int
        };
        if !recent.is_empty() && self.rng.chance(dep_density) {
            // Short-distance dependence: distance ~ exponential with the
            // configured mean, capped by history length.
            let mean = dep_distance.max(1.0);
            let d = ((-(1.0 - self.rng.uniform()).ln() * mean) as usize).min(recent.len() - 1);
            Some(recent[d])
        } else {
            // Long-lived value from the invariant pool.
            let i = Self::CHAIN_REGS + (self.rng.below((32 - Self::CHAIN_REGS) as u64) as u8);
            Some(if fp { Reg::fp(i) } else { Reg::int(i) })
        }
    }

    /// Allocates a destination register round-robin over the chain pool.
    fn pick_dest(&mut self, fp: bool) -> Reg {
        if fp {
            let r = Reg::fp(self.next_fp_dest);
            self.next_fp_dest = (self.next_fp_dest + 1) % Self::CHAIN_REGS;
            self.recent_fp.push_front(r);
            self.recent_fp.truncate(32);
            r
        } else {
            let r = Reg::int(self.next_int_dest);
            self.next_int_dest = (self.next_int_dest + 1) % Self::CHAIN_REGS;
            self.recent_int.push_front(r);
            self.recent_int.truncate(32);
            r
        }
    }

    /// Generates a data address according to the phase's locality model.
    fn pick_address(&mut self) -> u64 {
        let spec = self.spec().clone();
        let phase = self.phase;
        if self.rng.chance(spec.l1d_miss) {
            // Cold access.
            if self.rng.chance(spec.l2_miss) {
                // Streaming: compulsory miss everywhere.
                self.stream_ptr += 64;
                self.stream_ptr
            } else {
                // Warm: L1-hostile but L2-resident by construction. The warm
                // set concentrates on 16 L1 sets (so its 256 lines thrash the
                // 2-way L1 by conflict) while occupying 256 *distinct* sets
                // of the direct-mapped L2 (tag bits land inside the L2 index
                // range). A small per-phase offset keeps phases' warm sets
                // from aliasing each other in L2.
                let set_sel = self.rng.below(16); // L1 set selector (bits 6..10)
                let tag = self.rng.below(16); // L1 tag / L2 set bits 15..19
                let word = self.rng.below(8); // word within the line
                warm_base(phase) + ((phase as u64) << 11) + (set_sel << 6) + (tag << 15) + word * 8
            }
        } else {
            // Hot-set access (L1-resident).
            let hot = spec.hot_set_bytes.max(64);
            hot_base(phase) + (self.rng.below(hot / 8)) * 8
        }
    }

    /// Advances phase bookkeeping after emitting one instruction.
    fn advance_position(&mut self) {
        self.index += 1;
        self.phase_pos += 1;
        if self.phase_pos >= self.profile.phases[self.phase].length {
            self.phase_pos = 0;
            self.phase = (self.phase + 1) % self.profile.phases.len();
            self.slot = 0;
        }
    }

    /// Produces the next dynamic instruction.
    pub fn next_instruction(&mut self) -> Instruction {
        self.ensure_code();
        let spec = self.spec().clone();
        let phase = self.phase;
        let n_slots = self.code[phase].as_ref().expect("code built").ops.len() as u32;
        let slot = self.slot.min(n_slots - 1);
        let op = self.code[phase].as_ref().expect("code built").ops[slot as usize];
        let pc = code_base(phase) + slot as u64 * 4;

        let instr = match op.class {
            OpClass::Load => {
                let addr_src = self.pick_source(false);
                let addr = self.pick_address();
                // Loads feed the fp chains in proportion to fp content.
                let fp_dest = self.rng.chance(spec.mix.fp_fraction() * 1.5);
                let dest = self.pick_dest(fp_dest);
                Instruction::load(pc, dest, addr_src, addr)
            }
            OpClass::Store => {
                let fp_data = self.rng.chance(spec.mix.fp_fraction());
                let data_src = self.pick_source(fp_data);
                let addr_src = self.pick_source(false);
                let addr = self.pick_address();
                Instruction::store(pc, data_src, addr_src, addr)
            }
            OpClass::Branch => {
                let cond_src = self.pick_source(false);
                let sb = op.branch.expect("branch slot has branch data");
                let taken = match sb.kind {
                    BranchKind::Biased => self.rng.chance(0.95),
                    BranchKind::Random => self.rng.chance(0.5),
                };
                let target = code_base(phase) + sb.target_slot as u64 * 4;
                let i = Instruction::branch(pc, cond_src, taken, target);
                self.slot = if taken {
                    sb.target_slot
                } else {
                    (slot + 1) % n_slots
                };
                self.advance_position();
                return i;
            }
            class => {
                let fp = class.is_fp();
                let s1 = self.pick_source(fp);
                let s2 = if self.rng.chance(0.7) {
                    self.pick_source(fp)
                } else {
                    None
                };
                let dest = self.pick_dest(fp);
                Instruction::alu(pc, class, Some(dest), [s1, s2])
            }
        };

        self.slot = (slot + 1) % n_slots;
        self.advance_position();
        instr
    }

    /// Generates the next `n` instructions into a vector.
    pub fn take_instructions(&mut self, n: usize) -> Vec<Instruction> {
        (0..n).map(|_| self.next_instruction()).collect()
    }

    /// Line addresses of every phase's warm (L2-resident) data set.
    ///
    /// Cold accesses re-use these lines with long re-use distances, so a
    /// simulator warming its caches should pre-touch them into the L2:
    /// without that, benchmarks with low miss rates would pay compulsory
    /// misses on this set for millions of instructions (far beyond any
    /// simulated window), which misrepresents the paper's mid-execution
    /// measurement windows.
    pub fn warm_footprint(&self) -> Vec<u64> {
        let mut lines = Vec::new();
        for phase in 0..self.profile.phases.len() {
            for set_sel in 0..16u64 {
                for tag in 0..16u64 {
                    lines.push(
                        warm_base(phase) + ((phase as u64) << 11) + (set_sel << 6) + (tag << 15),
                    );
                }
            }
        }
        lines
    }
}

impl Iterator for WorkloadGenerator {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        Some(self.next_instruction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Mix, Suite};

    fn toy_profile() -> BenchmarkProfile {
        BenchmarkProfile::new(
            "toy",
            Suite::Olden,
            "n/a",
            vec![
                PhaseSpec::compute(1000, Mix::integer_heavy()),
                PhaseSpec::compute(500, Mix::fp_heavy()),
            ],
        )
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = WorkloadGenerator::new(toy_profile(), 7);
        let mut b = WorkloadGenerator::new(toy_profile(), 7);
        for _ in 0..5_000 {
            assert_eq!(a.next_instruction(), b.next_instruction());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = WorkloadGenerator::new(toy_profile(), 1);
        let mut b = WorkloadGenerator::new(toy_profile(), 2);
        let same = (0..100)
            .filter(|_| a.next_instruction() == b.next_instruction())
            .count();
        assert!(same < 100);
    }

    #[test]
    fn mix_fractions_are_roughly_respected() {
        // Dynamic frequencies follow the static mix re-weighted by loop
        // visit counts; they should land near the configured fractions.
        let mut g = WorkloadGenerator::new(toy_profile(), 3);
        let n = 50_000;
        let mut loads = 0;
        let mut branches = 0;
        for _ in 0..n {
            let i = g.next_instruction();
            match i.op {
                OpClass::Load => loads += 1,
                OpClass::Branch => branches += 1,
                _ => {}
            }
        }
        let load_frac = loads as f64 / n as f64;
        let br_frac = branches as f64 / n as f64;
        assert!(load_frac > 0.1 && load_frac < 0.45, "load {load_frac}");
        assert!(br_frac > 0.05 && br_frac < 0.35, "branch {br_frac}");
    }

    #[test]
    fn phases_rotate() {
        let mut g = WorkloadGenerator::new(toy_profile(), 4);
        assert_eq!(g.phase_index(), 0);
        for _ in 0..1000 {
            g.next_instruction();
        }
        assert_eq!(g.phase_index(), 1);
        for _ in 0..500 {
            g.next_instruction();
        }
        assert_eq!(g.phase_index(), 0);
    }

    #[test]
    fn fp_phase_emits_fp_ops_int_phase_does_not() {
        let mut g = WorkloadGenerator::new(toy_profile(), 5);
        let first_phase = g.take_instructions(1000);
        assert!(first_phase.iter().all(|i| !i.op.is_fp()));
        let second_phase = g.take_instructions(500);
        assert!(second_phase.iter().any(|i| i.op.is_fp()));
    }

    #[test]
    fn pcs_stay_in_phase_code_region() {
        let mut g = WorkloadGenerator::new(toy_profile(), 6);
        for _ in 0..2_000 {
            let i = g.next_instruction();
            let base = if i.pc >= code_base(1) {
                code_base(1)
            } else {
                code_base(0)
            };
            assert!(i.pc >= base && i.pc < base + (16 << 10) + 4);
        }
    }

    #[test]
    fn static_branches_have_stable_targets() {
        // Any branch PC seen twice must have the same taken-target.
        let mut g = WorkloadGenerator::new(toy_profile(), 11);
        let mut targets = std::collections::HashMap::new();
        for i in g.take_instructions(20_000) {
            if let Some(b) = i.branch {
                let prev = targets.insert(i.pc, b.target);
                if let Some(p) = prev {
                    assert_eq!(p, b.target, "target changed for pc {:#x}", i.pc);
                }
            }
        }
        assert!(!targets.is_empty());
    }

    #[test]
    fn execution_revisits_hot_code() {
        // Loop-biased branch targets must make some PCs execute many times.
        let mut g = WorkloadGenerator::new(toy_profile(), 12);
        let mut visits = std::collections::HashMap::new();
        for i in g.take_instructions(10_000) {
            *visits.entry(i.pc).or_insert(0u32) += 1;
        }
        let max = visits.values().copied().max().expect("non-empty");
        assert!(max > 10, "hottest pc only executed {max} times");
    }

    #[test]
    fn loads_and_stores_have_addresses() {
        let mut g = WorkloadGenerator::new(toy_profile(), 8);
        for i in g.take_instructions(5_000) {
            if i.op.is_mem() {
                assert!(i.mem.expect("mem payload").addr >= hot_base(0));
            } else {
                assert!(i.mem.is_none());
            }
        }
    }

    #[test]
    fn branch_bias_matches_spec() {
        // With random_branch_frac = 0, nearly all dynamic branches are taken
        // (biased at 0.95).
        let mut phases = toy_profile().phases;
        for p in &mut phases {
            p.random_branch_frac = 0.0;
        }
        let profile = BenchmarkProfile::new("toy2", Suite::Olden, "", phases);
        let mut g = WorkloadGenerator::new(profile, 9);
        let (mut taken, mut total) = (0u32, 0u32);
        for i in g.take_instructions(30_000) {
            if let Some(b) = i.branch {
                total += 1;
                taken += b.taken as u32;
            }
        }
        let rate = taken as f64 / total as f64;
        assert!((rate - 0.95).abs() < 0.02, "taken rate {rate}");
    }

    #[test]
    fn iterator_interface_matches_direct_calls() {
        let mut a = WorkloadGenerator::new(toy_profile(), 10);
        let b = WorkloadGenerator::new(toy_profile(), 10);
        let direct: Vec<_> = (0..50).map(|_| a.next_instruction()).collect();
        let via_iter: Vec<_> = b.take(50).collect();
        assert_eq!(direct, via_iter);
    }
}
