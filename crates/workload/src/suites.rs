//! The sixteen benchmarks of the paper's Table 2, as synthetic profiles.
//!
//! Parameters are calibrated to the qualitative characteristics the paper
//! reports or that are well known for these codes:
//!
//! * `gcc` — 12.5 % L1D miss rate (stated explicitly in §4), large code
//!   footprint, branchy;
//! * `g721` — "well balanced instruction mix, high utilization of the
//!   integer and load/store domains, low cache miss rate, low branch
//!   misprediction rate, IPC above 2";
//! * `art` — floating-point but with "many instruction intervals during
//!   which we can safely scale back the floating point domain": modeled as
//!   alternating FP-busy and FP-idle phases (the structure behind Fig. 8);
//! * `swim` — FP domain must stay fast (high utilization) and a relatively
//!   high branch misprediction rate;
//! * `mcf`, `em3d`, `health` — memory-bound pointer chasers;
//! * `adpcm` — serial dependence chains (worst-case MCD sync overhead).

use crate::profile::{BenchmarkProfile, Mix, PhaseSpec, Suite};

/// Shorthand: build a phase from the common knobs.
#[allow(clippy::too_many_arguments)]
fn phase(
    length: u64,
    mix: Mix,
    dep_density: f64,
    dep_distance: f64,
    l1d_miss: f64,
    l2_miss: f64,
    random_branch_frac: f64,
    code_kb: u64,
) -> PhaseSpec {
    PhaseSpec {
        length,
        mix,
        dep_density,
        dep_distance,
        l1d_miss,
        l2_miss,
        hot_set_bytes: 16 << 10,
        cold_set_bytes: 8 << 20,
        random_branch_frac,
        code_bytes: code_kb << 10,
    }
}

/// Mix order: `[IntAlu, IntMul, IntDiv, FpAdd, FpMul, FpDiv, FpSqrt, Load, Store, Branch]`.
fn mix(w: [f64; 10]) -> Mix {
    Mix::from_weights(w)
}

/// All sixteen benchmark profiles, in the paper's Table 2 / figure order.
pub fn all() -> Vec<BenchmarkProfile> {
    vec![
        adpcm(),
        epic(),
        g721(),
        mesa(),
        em3d(),
        health(),
        mst(),
        power(),
        treeadd(),
        tsp(),
        bzip2(),
        gcc(),
        mcf(),
        parser(),
        art(),
        swim(),
    ]
}

/// Looks a profile up by Table-2 name.
pub fn by_name(name: &str) -> Option<BenchmarkProfile> {
    all().into_iter().find(|p| p.name == name)
}

/// Names of all benchmarks in figure order.
pub fn names() -> Vec<&'static str> {
    vec![
        "adpcm", "epic", "g721", "mesa", "em3d", "health", "mst", "power", "treeadd", "tsp",
        "bzip2", "gcc", "mcf", "parser", "art", "swim",
    ]
}

/// adpcm — serial integer DSP kernel; long dependence chains make it the
/// most sensitive benchmark to inter-domain synchronization.
pub fn adpcm() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "adpcm",
        Suite::MediaBench,
        "ref, entire program",
        vec![
            phase(
                144_000,
                mix([0.52, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.19, 0.10, 0.18]),
                0.68,
                2.5,
                0.003,
                0.05,
                0.02,
                4,
            ),
            phase(
                36_000,
                mix([0.45, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.25, 0.14, 0.15]),
                0.62,
                3.0,
                0.01,
                0.05,
                0.05,
                8,
            ),
        ],
    )
}

/// epic — image compression: a filtering phase with light FP, then an
/// integer encode phase.
pub fn epic() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "epic",
        Suite::MediaBench,
        "ref, entire program",
        vec![
            phase(
                90_000,
                mix([0.28, 0.02, 0.0, 0.12, 0.10, 0.01, 0.0, 0.28, 0.09, 0.10]),
                0.42,
                5.0,
                0.04,
                0.10,
                0.06,
                12,
            ),
            phase(
                90_000,
                mix([0.48, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.22, 0.12, 0.17]),
                0.50,
                4.0,
                0.015,
                0.08,
                0.08,
                16,
            ),
        ],
    )
}

/// g721 — balanced mix, IPC above 2, integer and load/store domains near
/// saturation; the worst case for MCD dynamic scaling.
pub fn g721() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "g721",
        Suite::MediaBench,
        "ref, 0–200M",
        vec![phase(
            180_000,
            mix([0.44, 0.03, 0.005, 0.01, 0.01, 0.0, 0.0, 0.25, 0.11, 0.145]),
            0.32,
            7.0,
            0.005,
            0.05,
            0.03,
            8,
        )],
    )
}

/// mesa — 3-D graphics: FP transform phase plus integer rasterize phase.
pub fn mesa() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "mesa",
        Suite::MediaBench,
        "ref, entire program",
        vec![
            phase(
                105_000,
                mix([0.22, 0.01, 0.0, 0.17, 0.14, 0.02, 0.005, 0.26, 0.09, 0.085]),
                0.38,
                6.0,
                0.02,
                0.08,
                0.05,
                24,
            ),
            phase(
                75_000,
                mix([0.42, 0.02, 0.0, 0.02, 0.01, 0.0, 0.0, 0.26, 0.12, 0.15]),
                0.46,
                5.0,
                0.03,
                0.10,
                0.08,
                24,
            ),
        ],
    )
}

/// em3d — electromagnetic wave propagation on a bipartite graph: serial
/// load-to-load pointer chasing, memory bound.
pub fn em3d() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "em3d",
        Suite::Olden,
        "4K nodes arity 10, 70M–119M",
        vec![phase(
            150_000,
            mix([0.30, 0.0, 0.0, 0.06, 0.05, 0.0, 0.0, 0.36, 0.08, 0.15]),
            0.85,
            1.5,
            0.12,
            0.45,
            0.06,
            8,
        )],
    )
}

/// health — hierarchical health-care simulation: pointer-heavy with
/// irregular branches.
pub fn health() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "health",
        Suite::Olden,
        "4 levels 1K iters, 80M–127M",
        vec![
            phase(
                90_000,
                mix([0.36, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.33, 0.11, 0.19]),
                0.8,
                2.0,
                0.10,
                0.30,
                0.15,
                16,
            ),
            phase(
                45_000,
                mix([0.45, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.26, 0.11, 0.17]),
                0.42,
                5.0,
                0.04,
                0.15,
                0.10,
                16,
            ),
        ],
    )
}

/// mst — minimum spanning tree over a hash-based graph.
pub fn mst() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "mst",
        Suite::Olden,
        "1K nodes, entire program",
        vec![phase(
            120_000,
            mix([0.40, 0.02, 0.0, 0.0, 0.0, 0.0, 0.0, 0.30, 0.10, 0.18]),
            0.7,
            2.5,
            0.08,
            0.25,
            0.09,
            12,
        )],
    )
}

/// power — power-system optimization: compute-bound with real FP content.
pub fn power() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "power",
        Suite::Olden,
        "ref, 199M",
        vec![phase(
            135_000,
            mix([0.24, 0.02, 0.005, 0.18, 0.14, 0.03, 0.005, 0.22, 0.08, 0.10]),
            0.42,
            5.5,
            0.01,
            0.1,
            0.04,
            12,
        )],
    )
}

/// treeadd — recursive binary-tree summation.
pub fn treeadd() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "treeadd",
        Suite::Olden,
        "20 levels 1 iter, 0–200M",
        vec![phase(
            120_000,
            mix([0.38, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.32, 0.12, 0.18]),
            0.6,
            3.0,
            0.05,
            0.20,
            0.05,
            4,
        )],
    )
}

/// tsp — traveling salesman: mixed integer/FP compute with low miss rates.
pub fn tsp() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "tsp",
        Suite::Olden,
        "ref, entire program",
        vec![
            phase(
                90_000,
                mix([0.33, 0.02, 0.005, 0.10, 0.08, 0.015, 0.0, 0.24, 0.08, 0.13]),
                0.46,
                4.5,
                0.02,
                0.10,
                0.07,
                12,
            ),
            phase(
                60_000,
                mix([0.45, 0.02, 0.0, 0.01, 0.01, 0.0, 0.0, 0.23, 0.10, 0.18]),
                0.5,
                4.0,
                0.03,
                0.12,
                0.08,
                12,
            ),
        ],
    )
}

/// bzip2 — compression: integer, mildly memory- and branch-limited.
pub fn bzip2() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "bzip2",
        Suite::SpecInt2000,
        "input.source, 189M",
        vec![
            phase(
                105_000,
                mix([0.46, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.25, 0.11, 0.17]),
                0.46,
                4.5,
                0.035,
                0.12,
                0.12,
                32,
            ),
            phase(
                60_000,
                mix([0.50, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.22, 0.09, 0.18]),
                0.54,
                3.5,
                0.015,
                0.08,
                0.08,
                32,
            ),
        ],
    )
}

/// gcc — compiler on 166.i: 12.5 % L1D miss rate (paper §4), large code
/// footprint, branchy.
pub fn gcc() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "gcc",
        Suite::SpecInt2000,
        "166.i, 0–200M",
        vec![
            phase(
                90_000,
                mix([0.40, 0.01, 0.003, 0.0, 0.0, 0.0, 0.0, 0.25, 0.12, 0.217]),
                0.46,
                4.0,
                0.125,
                0.15,
                0.12,
                192,
            ),
            phase(
                60_000,
                mix([0.44, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.24, 0.11, 0.20]),
                0.42,
                4.5,
                0.10,
                0.12,
                0.10,
                160,
            ),
        ],
    )
}

/// mcf — single-depot vehicle scheduling: the most memory-bound SPEC
/// integer code; dominated by L2 misses.
pub fn mcf() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "mcf",
        Suite::SpecInt2000,
        "ref, 1000M–1100M",
        vec![phase(
            150_000,
            mix([0.34, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.35, 0.09, 0.21]),
            0.8,
            2.0,
            0.20,
            0.60,
            0.10,
            16,
        )],
    )
}

/// parser — natural-language parsing: branchy integer code.
pub fn parser() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "parser",
        Suite::SpecInt2000,
        "ref, 1000M–1100M",
        vec![
            phase(
                90_000,
                mix([0.42, 0.01, 0.002, 0.0, 0.0, 0.0, 0.0, 0.25, 0.10, 0.218]),
                0.6,
                3.0,
                0.04,
                0.12,
                0.15,
                48,
            ),
            phase(
                45_000,
                mix([0.46, 0.01, 0.0, 0.0, 0.0, 0.0, 0.0, 0.23, 0.10, 0.20]),
                0.46,
                4.0,
                0.025,
                0.10,
                0.10,
                48,
            ),
        ],
    )
}

/// art — neural-network image recognition: alternating FP-busy scans and
/// FP-idle bookkeeping, both memory-hungry. The alternation is what lets the
/// off-line tool scale the FP domain repeatedly (paper Fig. 8).
pub fn art() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "art",
        Suite::SpecFp2000,
        "ref, 300M–400M",
        vec![
            phase(
                90_000,
                mix([0.18, 0.01, 0.0, 0.22, 0.17, 0.01, 0.0, 0.26, 0.07, 0.08]),
                0.5,
                4.0,
                0.10,
                0.18,
                0.04,
                12,
            ),
            phase(
                75_000,
                mix([0.42, 0.01, 0.0, 0.015, 0.01, 0.0, 0.0, 0.28, 0.09, 0.175]),
                0.6,
                3.0,
                0.12,
                0.22,
                0.06,
                12,
            ),
        ],
    )
}

/// swim — shallow-water modeling: streaming FP loop nests; the FP domain is
/// busy nearly all the time, and branch behaviour limits scaling.
pub fn swim() -> BenchmarkProfile {
    BenchmarkProfile::new(
        "swim",
        Suite::SpecFp2000,
        "ref, 1000M–1100M",
        vec![phase(
            180_000,
            mix([0.17, 0.01, 0.0, 0.24, 0.19, 0.02, 0.005, 0.25, 0.08, 0.035]),
            0.38,
            5.0,
            0.08,
            0.35,
            0.15,
            8,
        )],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::OpClass;

    #[test]
    fn sixteen_benchmarks_in_figure_order() {
        let profiles = all();
        assert_eq!(profiles.len(), 16);
        let got: Vec<_> = profiles.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(got, names());
    }

    #[test]
    fn by_name_finds_each() {
        for name in names() {
            let p = by_name(name).expect("profile exists");
            assert_eq!(p.name, name);
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn suites_match_table2() {
        assert_eq!(by_name("adpcm").unwrap().suite, Suite::MediaBench);
        assert_eq!(by_name("em3d").unwrap().suite, Suite::Olden);
        assert_eq!(by_name("gcc").unwrap().suite, Suite::SpecInt2000);
        assert_eq!(by_name("swim").unwrap().suite, Suite::SpecFp2000);
    }

    #[test]
    fn gcc_has_paper_miss_rate() {
        let gcc = by_name("gcc").unwrap();
        assert!((gcc.avg_l1d_miss() - 0.115).abs() < 0.02);
    }

    #[test]
    fn integer_benchmarks_have_no_fp() {
        for name in [
            "adpcm", "gcc", "mcf", "bzip2", "parser", "treeadd", "health", "mst",
        ] {
            let p = by_name(name).unwrap();
            assert!(p.avg_fp_fraction() < 0.01, "{name} should be integer-only");
        }
    }

    #[test]
    fn fp_benchmarks_have_fp_content() {
        for name in ["art", "swim", "mesa", "power"] {
            let p = by_name(name).unwrap();
            assert!(p.avg_fp_fraction() > 0.15, "{name} should have FP content");
        }
    }

    #[test]
    fn art_alternates_fp_busy_and_idle() {
        let art = by_name("art").unwrap();
        assert_eq!(art.phases.len(), 2);
        assert!(art.phases[0].mix.fp_fraction() > 0.3);
        assert!(art.phases[1].mix.fp_fraction() < 0.05);
    }

    #[test]
    fn mcf_is_most_memory_bound() {
        let mcf = by_name("mcf").unwrap();
        for p in all() {
            assert!(mcf.avg_l1d_miss() >= p.avg_l1d_miss() - 1e-9 || p.name == "mcf");
        }
    }

    #[test]
    fn all_mixes_include_branches_and_memory() {
        for p in all() {
            for ph in &p.phases {
                assert!(ph.mix.fraction(OpClass::Branch) > 0.02, "{}", p.name);
                assert!(ph.mix.mem_fraction() > 0.2, "{}", p.name);
            }
        }
    }
}
