//! Synthetic workloads for the MCD-DVFS simulator.
//!
//! The paper evaluates sixteen applications from MediaBench, Olden and
//! SPEC2000 (Table 2). Those binaries and reference inputs are not
//! reproducible here, so this crate provides the closest synthetic
//! equivalent: a small micro-op ISA ([`isa`]), per-benchmark statistical
//! profiles ([`profile`], [`suites`]) capturing the characteristics the
//! paper's analysis depends on (instruction mix, dependence density, cache
//! behaviour, branch predictability, and *phase structure*), and a
//! deterministic generator ([`generator`]) that expands a profile into a
//! reproducible dynamic instruction stream.
//!
//! # Example
//!
//! ```
//! use mcd_workload::{suites, WorkloadGenerator};
//!
//! let profile = suites::by_name("gcc").expect("known benchmark");
//! let mut generator = WorkloadGenerator::new(profile.clone(), 42);
//! let first = generator.next_instruction();
//! assert!(first.pc > 0);
//! ```

pub mod generator;
pub mod isa;
pub mod profile;
pub mod suites;

pub use generator::WorkloadGenerator;
pub use isa::{BranchInfo, Instruction, MemInfo, OpClass, Reg};
pub use profile::{BenchmarkProfile, Mix, PhaseSpec, Suite};
