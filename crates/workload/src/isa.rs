//! The micro-op instruction set executed by the simulator.
//!
//! The pipeline does not interpret real machine code; it executes a stream
//! of typed micro-ops carrying exactly the information the timing and power
//! models need: operation class (which determines the executing clock
//! domain, functional unit, and latency), register operands (which determine
//! data dependences), memory addresses (which determine cache behaviour),
//! and branch outcomes (which exercise the branch predictor).

use serde::{Deserialize, Serialize};

/// An architectural register.
///
/// Indices `0..32` are integer registers, `32..64` floating-point registers.
/// Index 31 is *not* hard-wired to zero — the generator simply never reuses
/// registers in a way that needs one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Reg(u8);

impl Reg {
    /// Number of integer architectural registers.
    pub const NUM_INT: u8 = 32;
    /// Number of floating-point architectural registers.
    pub const NUM_FP: u8 = 32;
    /// Total architectural registers.
    pub const NUM_TOTAL: u8 = Self::NUM_INT + Self::NUM_FP;

    /// The `i`-th integer register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn int(i: u8) -> Reg {
        assert!(
            i < Self::NUM_INT,
            "integer register index out of range: {i}"
        );
        Reg(i)
    }

    /// The `i`-th floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 32`.
    pub fn fp(i: u8) -> Reg {
        assert!(i < Self::NUM_FP, "fp register index out of range: {i}");
        Reg(Self::NUM_INT + i)
    }

    /// Flat index in `0..64`, usable as a rename-map key.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is a floating-point register.
    pub fn is_fp(self) -> bool {
        self.0 >= Self::NUM_INT
    }
}

/// Operation classes, each mapping to one functional-unit type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Simple integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (unpipelined).
    IntDiv,
    /// Floating-point add/subtract/convert.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide (unpipelined).
    FpDiv,
    /// Floating-point square root (unpipelined).
    FpSqrt,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

impl OpClass {
    /// All classes, in a stable order (used by mix tables).
    pub const ALL: [OpClass; 10] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::FpSqrt,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Whether the op accesses memory.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the op executes on floating-point units.
    pub fn is_fp(self) -> bool {
        matches!(
            self,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt
        )
    }

    /// Whether the op is a control transfer.
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }

    /// Whether the op writes a destination register.
    pub fn has_dest(self) -> bool {
        !matches!(self, OpClass::Store | OpClass::Branch)
    }
}

/// Branch-specific payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// The architectural outcome of this dynamic branch.
    pub taken: bool,
    /// Target PC if taken.
    pub target: u64,
}

/// Memory-op payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemInfo {
    /// Effective virtual address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: u8,
}

/// One dynamic micro-op.
///
/// # Example
///
/// ```
/// use mcd_workload::{Instruction, OpClass, Reg};
///
/// let add = Instruction::alu(0x1000, OpClass::IntAlu, Some(Reg::int(1)), [Some(Reg::int(2)), None]);
/// assert!(add.op.has_dest());
/// assert!(!add.op.is_mem());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instruction {
    /// Program counter of the op.
    pub pc: u64,
    /// Operation class.
    pub op: OpClass,
    /// Destination register, if the class writes one.
    pub dest: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Memory payload for loads/stores.
    pub mem: Option<MemInfo>,
    /// Branch payload for branches.
    pub branch: Option<BranchInfo>,
}

impl Instruction {
    /// Builds a non-memory, non-branch op.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory or branch class.
    pub fn alu(pc: u64, op: OpClass, dest: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        assert!(
            !op.is_mem() && !op.is_branch(),
            "use load/store/branch constructors"
        );
        Instruction {
            pc,
            op,
            dest,
            srcs,
            mem: None,
            branch: None,
        }
    }

    /// Builds a load.
    pub fn load(pc: u64, dest: Reg, addr_src: Option<Reg>, addr: u64) -> Self {
        Instruction {
            pc,
            op: OpClass::Load,
            dest: Some(dest),
            srcs: [addr_src, None],
            mem: Some(MemInfo { addr, size: 8 }),
            branch: None,
        }
    }

    /// Builds a store.
    pub fn store(pc: u64, data_src: Option<Reg>, addr_src: Option<Reg>, addr: u64) -> Self {
        Instruction {
            pc,
            op: OpClass::Store,
            dest: None,
            srcs: [data_src, addr_src],
            mem: Some(MemInfo { addr, size: 8 }),
            branch: None,
        }
    }

    /// Builds a conditional branch.
    pub fn branch(pc: u64, cond_src: Option<Reg>, taken: bool, target: u64) -> Self {
        Instruction {
            pc,
            op: OpClass::Branch,
            dest: None,
            srcs: [cond_src, None],
            mem: None,
            branch: Some(BranchInfo { taken, target }),
        }
    }

    /// Source registers that are actually present.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_indexing() {
        assert_eq!(Reg::int(0).index(), 0);
        assert_eq!(Reg::int(31).index(), 31);
        assert_eq!(Reg::fp(0).index(), 32);
        assert_eq!(Reg::fp(31).index(), 63);
        assert!(Reg::fp(3).is_fp());
        assert!(!Reg::int(3).is_fp());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn register_bounds_checked() {
        let _ = Reg::int(32);
    }

    #[test]
    fn opclass_predicates() {
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::IntAlu.is_mem());
        assert!(OpClass::FpSqrt.is_fp());
        assert!(!OpClass::Load.is_fp());
        assert!(OpClass::Branch.is_branch());
        assert!(OpClass::Load.has_dest());
        assert!(!OpClass::Store.has_dest());
        assert!(!OpClass::Branch.has_dest());
    }

    #[test]
    fn constructors_fill_payloads() {
        let ld = Instruction::load(0x10, Reg::int(1), Some(Reg::int(2)), 0xdead);
        assert_eq!(ld.mem.expect("mem payload").addr, 0xdead);
        assert_eq!(ld.sources().count(), 1);

        let st = Instruction::store(0x14, Some(Reg::int(1)), Some(Reg::int(2)), 0xbeef);
        assert_eq!(st.sources().count(), 2);
        assert!(st.dest.is_none());

        let br = Instruction::branch(0x18, Some(Reg::int(3)), true, 0x8);
        assert!(br.branch.expect("branch payload").taken);
    }

    #[test]
    #[should_panic(expected = "use load/store/branch constructors")]
    fn alu_constructor_rejects_mem_class() {
        let _ = Instruction::alu(0, OpClass::Load, None, [None, None]);
    }
}
