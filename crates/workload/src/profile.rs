//! Statistical benchmark profiles.
//!
//! A profile captures the workload characteristics the paper's evaluation
//! depends on, per program *phase*: instruction mix, dependence density
//! (how serial the code is), memory behaviour (hot working set vs. cold
//! streaming footprint), and branch predictability. Programs are modeled as
//! repeating sequences of phases, which is what gives the off-line
//! reconfiguration tool temporal structure to exploit (cf. Figure 8 of the
//! paper, where `art` alternates floating-point-idle and busy regions).

use serde::{Deserialize, Serialize};

use crate::isa::OpClass;

/// Benchmark suite of origin (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// MediaBench multimedia workloads.
    MediaBench,
    /// Olden pointer-intensive workloads.
    Olden,
    /// SPEC2000 integer workloads.
    SpecInt2000,
    /// SPEC2000 floating-point workloads.
    SpecFp2000,
}

impl Suite {
    /// Display name matching the paper's Table 2.
    pub fn label(&self) -> &'static str {
        match self {
            Suite::MediaBench => "MediaBench",
            Suite::Olden => "Olden",
            Suite::SpecInt2000 => "SPEC 2000 Int",
            Suite::SpecFp2000 => "SPEC 2000 FP",
        }
    }
}

/// An instruction-class mixture (fractions summing to 1).
///
/// # Example
///
/// ```
/// use mcd_workload::{Mix, OpClass};
///
/// let mix = Mix::integer_heavy();
/// assert!(mix.fraction(OpClass::IntAlu) > 0.3);
/// let total: f64 = OpClass::ALL.iter().map(|&c| mix.fraction(c)).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    fractions: [f64; 10],
}

impl Mix {
    /// Builds a mix from per-class weights (normalized internally).
    ///
    /// Order follows [`OpClass::ALL`]:
    /// `[IntAlu, IntMul, IntDiv, FpAdd, FpMul, FpDiv, FpSqrt, Load, Store, Branch]`.
    ///
    /// # Panics
    ///
    /// Panics if any weight is negative or all weights are zero.
    pub fn from_weights(weights: [f64; 10]) -> Self {
        let sum: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| *w >= 0.0) && sum > 0.0,
            "mix weights must be non-negative and not all zero"
        );
        let mut fractions = weights;
        for f in &mut fractions {
            *f /= sum;
        }
        Mix { fractions }
    }

    /// A typical integer-code mix (no floating point).
    pub fn integer_heavy() -> Self {
        Mix::from_weights([0.42, 0.02, 0.005, 0.0, 0.0, 0.0, 0.0, 0.24, 0.12, 0.195])
    }

    /// A typical floating-point loop-nest mix.
    pub fn fp_heavy() -> Self {
        Mix::from_weights([0.20, 0.01, 0.0, 0.20, 0.16, 0.02, 0.005, 0.25, 0.10, 0.055])
    }

    /// The fraction of dynamic instructions in class `c`.
    pub fn fraction(&self, c: OpClass) -> f64 {
        let idx = OpClass::ALL
            .iter()
            .position(|&x| x == c)
            .expect("class is in ALL");
        self.fractions[idx]
    }

    /// Total floating-point fraction.
    pub fn fp_fraction(&self) -> f64 {
        OpClass::ALL
            .iter()
            .filter(|c| c.is_fp())
            .map(|&c| self.fraction(c))
            .sum()
    }

    /// Total memory-op fraction.
    pub fn mem_fraction(&self) -> f64 {
        self.fraction(OpClass::Load) + self.fraction(OpClass::Store)
    }

    /// Samples a class given a uniform draw in `[0, 1)`.
    pub fn sample(&self, u: f64) -> OpClass {
        let mut acc = 0.0;
        for (i, f) in self.fractions.iter().enumerate() {
            acc += f;
            if u < acc {
                return OpClass::ALL[i];
            }
        }
        OpClass::ALL[9]
    }
}

/// One program phase: a statistically homogeneous region of execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Dynamic instruction count of one occurrence of this phase.
    pub length: u64,
    /// Instruction mixture within the phase.
    pub mix: Mix,
    /// Probability that a source operand is a *recent* value (short
    /// dependence distance). Higher → more serial code → lower ILP.
    pub dep_density: f64,
    /// Mean dependence distance (in instructions) for recent operands.
    pub dep_distance: f64,
    /// Probability that a memory access leaves the hot set and touches the
    /// cold footprint (≈ L1D miss probability).
    pub l1d_miss: f64,
    /// Conditional probability that a cold access also misses in L2.
    pub l2_miss: f64,
    /// Bytes of the hot data set (fits in L1 for cache-friendly codes).
    pub hot_set_bytes: u64,
    /// Bytes of the cold data footprint.
    pub cold_set_bytes: u64,
    /// Fraction of branches whose outcome is statistically unpredictable
    /// (50/50); the rest are strongly biased and predict well.
    pub random_branch_frac: f64,
    /// Static code footprint in bytes (drives I-cache behaviour).
    pub code_bytes: u64,
}

impl PhaseSpec {
    /// A reasonable default compute phase (used as a builder base).
    pub fn compute(length: u64, mix: Mix) -> Self {
        PhaseSpec {
            length,
            mix,
            dep_density: 0.55,
            dep_distance: 4.0,
            l1d_miss: 0.02,
            l2_miss: 0.1,
            hot_set_bytes: 16 << 10,
            cold_set_bytes: 8 << 20,
            random_branch_frac: 0.08,
            code_bytes: 16 << 10,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.length == 0 {
            return Err("phase length must be positive".into());
        }
        for (name, p) in [
            ("dep_density", self.dep_density),
            ("l1d_miss", self.l1d_miss),
            ("l2_miss", self.l2_miss),
            ("random_branch_frac", self.random_branch_frac),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        if self.dep_distance < 1.0 {
            return Err("dep_distance must be >= 1".into());
        }
        if self.hot_set_bytes == 0 || self.cold_set_bytes == 0 || self.code_bytes == 0 {
            return Err("memory footprints must be positive".into());
        }
        Ok(())
    }
}

/// A complete benchmark description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name as in Table 2 (e.g. `"gcc"`).
    pub name: String,
    /// Suite of origin.
    pub suite: Suite,
    /// The paper's simulated instruction window, for documentation.
    pub paper_window: String,
    /// Phases, executed cyclically in order.
    pub phases: Vec<PhaseSpec>,
    /// Salt mixed into the workload RNG so two benchmarks with equal
    /// parameters still produce distinct streams.
    pub seed_salt: u64,
}

impl BenchmarkProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase fails validation.
    pub fn new(
        name: impl Into<String>,
        suite: Suite,
        paper_window: impl Into<String>,
        phases: Vec<PhaseSpec>,
    ) -> Self {
        assert!(!phases.is_empty(), "a benchmark needs at least one phase");
        for (i, p) in phases.iter().enumerate() {
            if let Err(e) = p.validate() {
                panic!("phase {i} invalid: {e}");
            }
        }
        let name = name.into();
        let seed_salt = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
        BenchmarkProfile {
            name,
            suite,
            paper_window: paper_window.into(),
            phases,
            seed_salt,
        }
    }

    /// Total instructions in one full cycle through the phases.
    pub fn cycle_length(&self) -> u64 {
        self.phases.iter().map(|p| p.length).sum()
    }

    /// Dynamic-weighted average FP fraction (useful for sanity checks).
    pub fn avg_fp_fraction(&self) -> f64 {
        let total = self.cycle_length() as f64;
        self.phases
            .iter()
            .map(|p| p.mix.fp_fraction() * p.length as f64 / total)
            .sum()
    }

    /// Dynamic-weighted average L1D miss probability.
    pub fn avg_l1d_miss(&self) -> f64 {
        let total = self.cycle_length() as f64;
        self.phases
            .iter()
            .map(|p| p.l1d_miss * p.length as f64 / total)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_normalizes() {
        let m = Mix::from_weights([2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert!((m.fraction(OpClass::IntAlu) - 0.5).abs() < 1e-12);
        assert!((m.mem_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mix_sample_covers_all_mass() {
        let m = Mix::integer_heavy();
        // Sampling at quantiles reproduces the mixture CDF ordering.
        assert_eq!(m.sample(0.0), OpClass::IntAlu);
        assert_eq!(m.sample(0.999_999), OpClass::Branch);
    }

    #[test]
    fn fp_heavy_mix_has_fp_mass() {
        assert!(Mix::fp_heavy().fp_fraction() > 0.3);
        assert_eq!(Mix::integer_heavy().fp_fraction(), 0.0);
    }

    #[test]
    fn phase_validation_catches_bad_probabilities() {
        let mut p = PhaseSpec::compute(1000, Mix::integer_heavy());
        assert!(p.validate().is_ok());
        p.l1d_miss = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn profile_cycle_length_sums_phases() {
        let p = BenchmarkProfile::new(
            "toy",
            Suite::Olden,
            "n/a",
            vec![
                PhaseSpec::compute(100, Mix::integer_heavy()),
                PhaseSpec::compute(50, Mix::fp_heavy()),
            ],
        );
        assert_eq!(p.cycle_length(), 150);
        assert!(p.avg_fp_fraction() > 0.0);
    }

    #[test]
    fn seed_salt_distinguishes_names() {
        let a = BenchmarkProfile::new(
            "a",
            Suite::Olden,
            "",
            vec![PhaseSpec::compute(1, Mix::integer_heavy())],
        );
        let b = BenchmarkProfile::new(
            "b",
            Suite::Olden,
            "",
            vec![PhaseSpec::compute(1, Mix::integer_heavy())],
        );
        assert_ne!(a.seed_salt, b.seed_salt);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_rejected() {
        let _ = BenchmarkProfile::new("x", Suite::Olden, "", vec![]);
    }
}
