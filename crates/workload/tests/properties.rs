//! Property-based tests for the workload generator.

use proptest::prelude::*;

use mcd_workload::{BenchmarkProfile, Mix, OpClass, PhaseSpec, Suite, WorkloadGenerator};

/// Strategy producing a valid single-phase profile with arbitrary knobs.
fn arbitrary_profile() -> impl Strategy<Value = BenchmarkProfile> {
    (
        0.0f64..0.9, // dep_density
        1.0f64..8.0, // dep_distance
        0.0f64..0.3, // l1d_miss
        0.0f64..0.8, // l2_miss
        0.0f64..0.4, // random_branch_frac
        1u64..64,    // code KB
        0.0f64..0.5, // fp weight
    )
        .prop_map(|(dep, dist, l1, l2, rb, code_kb, fp)| {
            let mix = Mix::from_weights([0.4, 0.02, 0.0, fp, fp * 0.7, 0.0, 0.0, 0.25, 0.1, 0.15]);
            BenchmarkProfile::new(
                "prop",
                Suite::Olden,
                "n/a",
                vec![PhaseSpec {
                    length: 5_000,
                    mix,
                    dep_density: dep,
                    dep_distance: dist,
                    l1d_miss: l1,
                    l2_miss: l2,
                    hot_set_bytes: 16 << 10,
                    cold_set_bytes: 8 << 20,
                    random_branch_frac: rb,
                    code_bytes: code_kb << 10,
                }],
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generator_is_deterministic_for_any_profile(
        profile in arbitrary_profile(),
        seed in any::<u64>(),
    ) {
        let mut a = WorkloadGenerator::new(profile.clone(), seed);
        let mut b = WorkloadGenerator::new(profile, seed);
        for _ in 0..2_000 {
            prop_assert_eq!(a.next_instruction(), b.next_instruction());
        }
    }

    #[test]
    fn instructions_are_always_well_formed(
        profile in arbitrary_profile(),
        seed in any::<u64>(),
    ) {
        let mut generator = WorkloadGenerator::new(profile, seed);
        for _ in 0..2_000 {
            let i = generator.next_instruction();
            // Memory payload iff memory class; branch payload iff branch.
            prop_assert_eq!(i.mem.is_some(), i.op.is_mem());
            prop_assert_eq!(i.branch.is_some(), i.op == OpClass::Branch);
            prop_assert_eq!(i.dest.is_some(), i.op.has_dest());
            // FP ops read/write FP registers.
            if i.op.is_fp() {
                prop_assert!(i.dest.expect("fp ops have dests").is_fp());
            }
            prop_assert!(i.pc >= 0x0040_0000);
        }
    }

    #[test]
    fn branch_targets_are_stable_per_site(
        profile in arbitrary_profile(),
        seed in any::<u64>(),
    ) {
        let mut generator = WorkloadGenerator::new(profile, seed);
        let mut targets = std::collections::HashMap::new();
        for _ in 0..3_000 {
            let i = generator.next_instruction();
            if let Some(b) = i.branch {
                if let Some(prev) = targets.insert(i.pc, b.target) {
                    prop_assert_eq!(prev, b.target);
                }
            }
        }
    }

    #[test]
    fn mix_sample_is_a_valid_class(weights in proptest::collection::vec(0.01f64..10.0, 10), u in 0.0f64..1.0) {
        let mut w = [0.0; 10];
        w.copy_from_slice(&weights);
        let mix = Mix::from_weights(w);
        let class = mix.sample(u);
        prop_assert!(OpClass::ALL.contains(&class));
        let total: f64 = OpClass::ALL.iter().map(|&c| mix.fraction(c)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
