//! Atomic, durable file publication shared by every on-disk artifact.
//!
//! The checkpoint manifest, and now the `mcd-check` fuzzer's repro files,
//! publish bytes with the same discipline: write to a hidden sibling temp
//! file, fsync it *before* the rename (so the published name can never
//! point at bytes the kernel hasn't flushed), rename into place, then
//! best-effort fsync the parent directory (so the rename itself survives
//! a power cut, not just a process kill). A reader therefore always sees
//! either the previous complete file or the next one — never a torn one.
//!
//! Crashes between create and rename leave a `.{name}.tmp` dropping;
//! [`sweep_stale_tmp`] removes those on the next startup.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The hidden sibling temp name used for in-flight writes: `.{name}.tmp`
/// next to the destination.
pub(crate) fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "durable".to_string());
    name.push_str(".tmp");
    path.with_file_name(format!(".{name}"))
}

/// Writes `bytes` to `path` atomically and durably (temp, fsync, rename,
/// parent-directory fsync). On success the full content is on disk
/// under `path`; on failure `path` is untouched (a temp dropping may
/// remain for [`sweep_stale_tmp`]).
pub fn write_atomic_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut file = fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Directory fsync is best-effort: some filesystems refuse it, and
    // the rename is already process-crash-safe without it.
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Removes `.{name}.tmp` droppings from one directory (non-recursive),
/// returning how many were swept. Used by the result cache, its
/// quarantine directory, and the fuzzer's `check-failures/` output dir.
pub fn sweep_stale_tmp(dir: &Path) -> io::Result<usize> {
    let mut swept = 0;
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_file() && name.starts_with('.') && name.ends_with(".tmp") {
            fs::remove_file(&path)?;
            swept += 1;
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcd-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn publishes_full_bytes_and_leaves_no_temp() {
        let dir = scratch("publish");
        let path = dir.join("artifact.json");
        write_atomic_durable(&path, b"{\"ok\": true}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"ok\": true}");
        assert!(!tmp_path(&path).exists(), "temp renamed away");
        // Overwrite is equally atomic.
        write_atomic_durable(&path, b"v2").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v2");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_removes_only_tmp_droppings() {
        let dir = scratch("sweep");
        fs::write(dir.join(".artifact.json.tmp"), b"torn").unwrap();
        fs::write(dir.join(".other.tmp"), b"torn").unwrap();
        fs::write(dir.join("keep.json"), b"good").unwrap();
        assert_eq!(sweep_stale_tmp(&dir).unwrap(), 2);
        assert!(dir.join("keep.json").exists());
        assert_eq!(sweep_stale_tmp(&dir).unwrap(), 0, "idempotent");
        let _ = fs::remove_dir_all(&dir);
    }
}
