//! Crash-safe campaign checkpoint manifest.
//!
//! A manifest records which cells of a campaign have a published, trusted
//! result, plus a digest of the spec that produced them. It is rewritten
//! atomically (temp file + rename) after every cell completes, so a killed
//! campaign always leaves either the previous or the next consistent
//! manifest on disk — never a torn one. `mcd-cli campaign resume` rebuilds
//! the whole campaign from the manifest alone: the spec is embedded, and
//! completed cells are re-verified against the result cache rather than
//! trusted blindly (the cache, not the manifest, is the source of truth
//! for result bytes — the manifest only says where to look first).

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use serde::{Map, Number, Serialize, Value};

use crate::cache::sha256_hex;
use crate::error::HarnessError;
use crate::spec::CampaignSpec;

/// Schema tag embedded in every manifest.
pub const CHECKPOINT_SCHEMA: &str = "mcd-campaign-checkpoint/1";

/// Digest binding a manifest to one exact campaign: the SHA-256 of the
/// spec's canonical JSON. Any change to any sweep axis changes the digest,
/// so a manifest can never silently resume a different campaign.
pub fn spec_digest(spec: &CampaignSpec) -> String {
    sha256_hex(
        serde_json::to_string(&spec.to_value())
            .expect("JSON writing is infallible")
            .as_bytes(),
    )
}

/// Progress record of one campaign, persisted across process deaths.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointManifest {
    spec: CampaignSpec,
    digest: String,
    total: usize,
    completed: BTreeSet<usize>,
}

impl CheckpointManifest {
    /// A fresh manifest for `spec` with nothing completed.
    pub fn new(spec: CampaignSpec, total: usize) -> CheckpointManifest {
        let digest = spec_digest(&spec);
        CheckpointManifest {
            spec,
            digest,
            total,
            completed: BTreeSet::new(),
        }
    }

    /// The embedded campaign spec.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// The spec digest this manifest is bound to.
    pub fn digest(&self) -> &str {
        &self.digest
    }

    /// Total cell count of the campaign.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Cells recorded as completed (result published to the cache).
    pub fn completed(&self) -> &BTreeSet<usize> {
        &self.completed
    }

    /// Cells not yet completed.
    pub fn pending(&self) -> usize {
        self.total - self.completed.len()
    }

    /// Whether every cell is completed.
    pub fn is_complete(&self) -> bool {
        self.completed.len() == self.total
    }

    /// Records cell `index` as completed. Returns `true` if it was new.
    pub fn mark_done(&mut self, index: usize) -> bool {
        self.completed.insert(index)
    }

    /// Serializes the manifest to its canonical JSON document.
    pub fn to_json(&self) -> String {
        let mut doc = Map::new();
        doc.insert(
            "schema".to_string(),
            Value::String(CHECKPOINT_SCHEMA.to_string()),
        );
        doc.insert("spec".to_string(), self.spec.to_value());
        doc.insert(
            "spec_digest".to_string(),
            Value::String(self.digest.clone()),
        );
        doc.insert("total".to_string(), self.total.to_value());
        doc.insert(
            "completed".to_string(),
            Value::Array(self.completed.iter().map(|i| i.to_value()).collect()),
        );
        serde_json::to_string_pretty(&Value::Object(doc)).expect("JSON writing is infallible")
    }

    /// Writes the manifest atomically and durably to `path` via
    /// [`crate::durable::write_atomic_durable`] (temp + fsync + rename +
    /// parent-directory fsync). This is what makes the
    /// `--checkpoint-every` loss bound hold under SIGKILL: a manifest
    /// whose save returned is on disk, period.
    pub fn save(&self, path: &Path) -> Result<(), HarnessError> {
        crate::durable::write_atomic_durable(path, self.to_json().as_bytes()).map_err(|source| {
            HarnessError::CheckpointIo {
                path: path.to_path_buf(),
                source,
            }
        })
    }

    /// Loads and validates a manifest from `path`.
    pub fn load(path: &Path) -> Result<CheckpointManifest, HarnessError> {
        let invalid = |reason: String| HarnessError::CheckpointInvalid {
            path: path.to_path_buf(),
            reason,
        };
        let text = fs::read_to_string(path).map_err(|source| HarnessError::CheckpointIo {
            path: path.to_path_buf(),
            source,
        })?;
        let doc: Value =
            serde_json::from_str(&text).map_err(|e| invalid(format!("not valid JSON: {e:?}")))?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("missing schema tag".to_string()))?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(invalid(format!(
                "schema {schema:?}, expected {CHECKPOINT_SCHEMA:?}"
            )));
        }
        let spec: CampaignSpec = doc
            .get("spec")
            .cloned()
            .ok_or_else(|| invalid("missing spec".to_string()))
            .and_then(|v| {
                serde_json::from_value(&v).map_err(|e| invalid(format!("bad spec: {e:?}")))
            })?;
        let recorded = doc
            .get("spec_digest")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid("missing spec_digest".to_string()))?;
        let actual = spec_digest(&spec);
        if recorded != actual {
            // The embedded spec and its digest disagree: the manifest was
            // hand-edited or corrupted. Refuse rather than guess.
            return Err(HarnessError::CheckpointMismatch {
                expected: recorded.to_string(),
                found: actual,
            });
        }
        let total = doc
            .get("total")
            .and_then(Value::as_number)
            .and_then(Number::as_u64)
            .ok_or_else(|| invalid("missing total".to_string()))? as usize;
        let mut completed = BTreeSet::new();
        for v in doc
            .get("completed")
            .and_then(Value::as_array)
            .ok_or_else(|| invalid("missing completed list".to_string()))?
        {
            let i = v
                .as_number()
                .and_then(Number::as_u64)
                .ok_or_else(|| invalid("non-integer completed index".to_string()))?
                as usize;
            if i >= total {
                return Err(invalid(format!("completed index {i} out of range {total}")));
            }
            completed.insert(i);
        }
        Ok(CheckpointManifest {
            spec,
            digest: actual,
            total,
            completed,
        })
    }

    /// Checks that this manifest belongs to `spec` (same digest).
    pub fn verify_spec(&self, spec: &CampaignSpec) -> Result<(), HarnessError> {
        let found = spec_digest(spec);
        if found == self.digest {
            Ok(())
        } else {
            Err(HarnessError::CheckpointMismatch {
                expected: self.digest.clone(),
                found,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_time::DvfsModel;
    use std::path::PathBuf;

    fn spec() -> CampaignSpec {
        CampaignSpec {
            benchmarks: vec!["gcc".into(), "art".into()],
            seeds: vec![5],
            instructions: 1_000,
            models: vec![DvfsModel::XScale],
            thetas: [0.01, 0.05],
            policies: Vec::new(),
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mcd-ckpt-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn save_load_round_trips_with_progress() {
        let path = scratch("roundtrip");
        let mut m = CheckpointManifest::new(spec(), 2);
        assert_eq!(m.pending(), 2);
        assert!(m.mark_done(1));
        assert!(!m.mark_done(1), "marking twice is idempotent");
        m.save(&path).expect("save manifest");

        let back = CheckpointManifest::load(&path).expect("load manifest");
        assert_eq!(back, m);
        assert_eq!(back.pending(), 1);
        assert!(back.completed().contains(&1));
        assert!(!back.is_complete());
        back.verify_spec(&spec()).expect("same spec verifies");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resuming_a_different_spec_is_refused() {
        let m = CheckpointManifest::new(spec(), 2);
        let mut other = spec();
        other.seeds = vec![6];
        let err = m.verify_spec(&other).unwrap_err();
        assert!(matches!(err, HarnessError::CheckpointMismatch { .. }));
    }

    #[test]
    fn torn_or_tampered_manifests_are_rejected() {
        let path = scratch("torn");
        let m = CheckpointManifest::new(spec(), 2);
        let json = m.to_json();

        // Torn write: truncated JSON.
        fs::write(&path, &json[..json.len() / 2]).unwrap();
        assert!(matches!(
            CheckpointManifest::load(&path),
            Err(HarnessError::CheckpointInvalid { .. })
        ));

        // Tampered spec under a stale digest.
        let tampered = json.replace("\"instructions\": 1000", "\"instructions\": 2000");
        assert_ne!(tampered, json, "replacement must hit");
        fs::write(&path, tampered).unwrap();
        assert!(matches!(
            CheckpointManifest::load(&path),
            Err(HarnessError::CheckpointMismatch { .. })
        ));

        // Out-of-range completed index.
        let bad = json.replace("\"completed\": []", "\"completed\": [9]");
        fs::write(&path, bad).unwrap();
        assert!(matches!(
            CheckpointManifest::load(&path),
            Err(HarnessError::CheckpointInvalid { .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn digest_tracks_every_spec_axis() {
        let base = spec_digest(&spec());
        let mut s = spec();
        s.instructions += 1;
        assert_ne!(base, spec_digest(&s));
        let mut s = spec();
        s.models = vec![DvfsModel::Transmeta];
        assert_ne!(base, spec_digest(&s));
        assert_eq!(base, spec_digest(&spec()), "digest is stable");
    }
}
