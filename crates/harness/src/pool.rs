//! Fixed-size worker pool over an indexed job list.
//!
//! The pool hands out job indices from a shared atomic counter and writes
//! each job's output into the slot with the same index, so the output order
//! is the *job* order — which thread ran which job, and with how many
//! workers, is unobservable in the results. Combined with per-cell seeding
//! (every cell derives its randomness from its own spec, never from shared
//! mutable state), this is what makes campaign output bit-identical across
//! worker counts.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Resolves a requested worker count: `0` means "one per available core".
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Runs `jobs` jobs on `workers` threads, returning the outputs in job
/// order. `run(i)` computes job `i`; jobs are claimed dynamically, so
/// uneven cell costs load-balance across the pool.
///
/// A panic inside `run` is not caught here — callers wanting fault
/// isolation wrap the job body with [`crate::retry::run_isolated`]. If a
/// job does panic anyway, the panic is resurfaced on the calling thread
/// after the pool drains.
pub fn run_indexed<T, F>(workers: usize, jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(workers).min(jobs.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();

    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = run(i);
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            }));
        }
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index below `jobs` was claimed and completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_in_job_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(workers, 100, |i| i * i);
            let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<u32> = run_indexed(4, 0, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_indexed(5, 64, |i| ran[i].fetch_add(1, Ordering::Relaxed));
        assert!(ran.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_requested_workers_resolves_to_parallelism() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }
}
