//! Fixed-size worker pool over an indexed job list.
//!
//! The pool hands out job indices from a shared atomic counter and writes
//! each job's output into the slot with the same index, so the output order
//! is the *job* order — which thread ran which job, and with how many
//! workers, is unobservable in the results. Combined with per-cell seeding
//! (every cell derives its randomness from its own spec, never from shared
//! mutable state), this is what makes campaign output bit-identical across
//! worker counts.
//!
//! Panic containment: a panic escaping a job body is caught *per job* and
//! recorded in that job's slot; the worker keeps claiming, so one bad job
//! can never abort its sibling cells mid-campaign or discard their
//! finished results. [`run_indexed`] resurfaces the lowest-indexed escaped
//! panic only after the whole pool has drained; [`run_indexed_until`]
//! instead reports it in the slot, for callers (the campaign supervisor)
//! that translate escapes into per-cell failures.

use std::num::NonZeroUsize;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::retry::payload_text;

/// Resolves a requested worker count: `0` means "one per available core".
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// One job's slot after the pool drains.
#[derive(Debug)]
pub enum JobSlot<T> {
    /// The job ran to completion.
    Done(T),
    /// A panic escaped the job body (payload rendered as text).
    Panicked(String),
    /// The stop flag was raised before any worker claimed this job.
    Unclaimed,
}

impl<T> JobSlot<T> {
    /// The completed value, if any.
    pub fn into_done(self) -> Option<T> {
        match self {
            JobSlot::Done(v) => Some(v),
            _ => None,
        }
    }
}

/// Runs `jobs` jobs on `workers` threads, returning the outputs in job
/// order. `run(i)` computes job `i`; jobs are claimed dynamically, so
/// uneven cell costs load-balance across the pool.
///
/// An escaped panic fails only its own job at first: every sibling job
/// still runs to completion, and the panic (the lowest-indexed one, for
/// determinism) is resurfaced on the calling thread after the pool drains.
pub fn run_indexed<T, F>(workers: usize, jobs: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let never = AtomicBool::new(false);
    let slots = run_indexed_until(workers, jobs, &never, run);
    slots
        .into_iter()
        .map(|slot| match slot {
            JobSlot::Done(v) => v,
            JobSlot::Panicked(message) => panic::panic_any(message),
            JobSlot::Unclaimed => unreachable!("the stop flag is never raised"),
        })
        .collect()
}

/// Like [`run_indexed`], but cooperative and panic-reporting: workers stop
/// claiming new jobs once `stop` is raised (jobs already claimed run to
/// completion — drain, don't abort), and escaped panics are reported in
/// their slot instead of resurfacing. The output always has one slot per
/// job, in job order.
pub fn run_indexed_until<T, F>(
    workers: usize,
    jobs: usize,
    stop: &AtomicBool,
    run: F,
) -> Vec<JobSlot<T>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = resolve_workers(workers).min(jobs.max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobSlot<T>>>> = (0..jobs).map(|_| Mutex::new(None)).collect();

    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = match panic::catch_unwind(AssertUnwindSafe(|| run(i))) {
                    Ok(v) => JobSlot::Done(v),
                    Err(payload) => JobSlot::Panicked(payload_text(payload.as_ref())),
                };
                *slots[i].lock().expect("result slot poisoned") = Some(out);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .unwrap_or(JobSlot::Unclaimed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outputs_are_in_job_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8] {
            let out = run_indexed(workers, 100, |i| i * i);
            let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expect, "workers = {workers}");
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<u32> = run_indexed(4, 0, |_| unreachable!("no jobs to run"));
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let _ = run_indexed(5, 64, |i| ran[i].fetch_add(1, Ordering::Relaxed));
        assert!(ran.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_requested_workers_resolves_to_parallelism() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    #[test]
    fn escaped_panic_fails_its_job_without_aborting_siblings() {
        let ran: Vec<AtomicUsize> = (0..32).map(|_| AtomicUsize::new(0)).collect();
        let never = AtomicBool::new(false);
        let slots = run_indexed_until(4, 32, &never, |i| {
            ran[i].fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                panic!("job 3 exploded");
            }
            i
        });
        assert!(
            ran.iter().all(|c| c.load(Ordering::Relaxed) == 1),
            "every sibling still ran exactly once"
        );
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                JobSlot::Done(v) => assert_eq!(*v, i),
                JobSlot::Panicked(msg) => {
                    assert_eq!(i, 3);
                    assert_eq!(msg, "job 3 exploded");
                }
                JobSlot::Unclaimed => panic!("no job should be unclaimed"),
            }
        }
    }

    #[test]
    fn run_indexed_resurfaces_the_lowest_indexed_panic_after_draining() {
        let ran: Vec<AtomicUsize> = (0..16).map(|_| AtomicUsize::new(0)).collect();
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            run_indexed(3, 16, |i| {
                ran[i].fetch_add(1, Ordering::Relaxed);
                if i == 5 || i == 11 {
                    panic!("job {i} exploded");
                }
                i
            })
        }));
        let payload = caught.expect_err("the panic must resurface");
        assert_eq!(
            payload.downcast_ref::<String>().map(String::as_str),
            Some("job 5 exploded"),
            "the lowest-indexed panic wins deterministically"
        );
        assert!(
            ran.iter().all(|c| c.load(Ordering::Relaxed) == 1),
            "all jobs ran before the panic resurfaced"
        );
    }

    #[test]
    fn raised_stop_flag_drains_instead_of_finishing() {
        let stop = AtomicBool::new(false);
        let slots = run_indexed_until(1, 8, &stop, |i| {
            if i == 2 {
                stop.store(true, Ordering::SeqCst);
            }
            i
        });
        // Single worker: jobs 0..=2 ran (2 raised the flag mid-run and
        // still completed), everything after is unclaimed.
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                JobSlot::Done(v) if i <= 2 => assert_eq!(*v, i),
                JobSlot::Unclaimed if i > 2 => {}
                other => panic!("job {i}: unexpected slot {other:?}"),
            }
        }
    }
}
