//! Parallel experiment campaign engine for the MCD-DVFS workspace.
//!
//! A *campaign* is a sweep — benchmarks × seeds × DVFS models — expanded
//! into independent cells ([`spec`]), executed on a fixed-size worker pool
//! ([`pool`]) under a supervisor ([`supervisor`]) that owns every failure
//! mode around a cell: panic retry with deterministic fail-fast
//! ([`retry`]), watchdog deadlines for hung cells, exponential backoff for
//! transient cache IO, and quarantine of corrupt cache entries. Results
//! are memoized in a content-addressed result cache ([`cache`]), progress
//! is persisted in a crash-safe checkpoint manifest ([`checkpoint`]), and
//! the run is narrated as JSONL structured telemetry ([`telemetry`]).
//! Deterministic fault injection for all of the above lives in [`chaos`].
//!
//! Determinism is the design invariant: a cell's result depends only on
//! its [`CellSpec`] (the simulator derives all randomness from the spec's
//! seed), results are assembled by cell index rather than completion
//! order, and JSON objects serialize with sorted keys — so a campaign's
//! result bytes are identical for 1, 2 or N workers and identical to the
//! serial driver ([`mcd_core::run_benchmark`]) run cell by cell. That
//! invariant is also what makes the cache sound (a key collision can only
//! come from identical inputs, which produce identical results) and what
//! makes recovery sound: a campaign interrupted and resumed produces the
//! same bytes as one that never failed.
//!
//! ```no_run
//! use mcd_harness::{CampaignSpec, Campaign, ResultCache, Telemetry};
//! use mcd_time::DvfsModel;
//!
//! let spec = CampaignSpec::paper(5, 240_000, DvfsModel::XScale);
//! let cache = ResultCache::open("target/mcd-campaign-cache").unwrap();
//! let report = Campaign::new(spec).workers(4).run(&cache, &Telemetry::stderr()).unwrap();
//! println!("{} computed, {} cached", report.computed(), report.cached());
//! ```

pub mod cache;
pub mod chaos;
pub mod checkpoint;
pub mod durable;
pub mod error;
pub mod pool;
pub mod retry;
pub mod rollup;
pub mod slack;
pub mod snapshot;
pub mod spec;
pub mod supervisor;
pub mod telemetry;

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mcd_core::{BenchmarkResults, RunOptions};

pub use cache::{
    CacheKey, CacheProbe, ResultCache, ScrubFinding, ScrubReport, SpotCheck, CACHE_FORMAT_VERSION,
    QUARANTINE_DIR, SPOT_CHECK_LIMIT,
};
pub use chaos::{Fault, FaultPlan};
pub use checkpoint::{spec_digest, CheckpointManifest, CHECKPOINT_SCHEMA};
pub use durable::{sweep_stale_tmp, write_atomic_durable};
pub use error::{CacheOp, CorruptKind, HarnessError};
pub use retry::{CellFailure, RetryPolicy};
pub use rollup::{
    BenchmarkRollup, CampaignRollup, GridRollup, StallCauseCount, WorkerRollup, ROLLUP_FILE,
    ROLLUP_SCHEMA,
};
pub use slack::{SlackCacheStats, SlackDiskCache, SLACK_CACHE_DIR};
pub use snapshot::{BenchSnapshot, CellTiming, SNAPSHOT_SCHEMA};
pub use spec::{parse_model, CampaignSpec, CellSpec, SpecError};
pub use supervisor::BackoffPolicy;
pub use telemetry::{CellSource, Telemetry};

use pool::JobSlot;

/// How one cell of a finished campaign was produced.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// Result served from the cache.
    Cached(BenchmarkResults),
    /// Result computed this run (with the attempt count that succeeded).
    Computed {
        /// The computed result.
        result: BenchmarkResults,
        /// 1 = first try.
        attempts: u32,
    },
    /// All attempts panicked.
    Failed(CellFailure),
    /// The cell blew its watchdog deadline and was abandoned.
    Stalled {
        /// How long the supervisor waited before giving up.
        waited: Duration,
    },
    /// The campaign was interrupted before any worker claimed this cell.
    Skipped,
}

impl CellOutcome {
    /// The result, unless the cell failed, stalled, or was skipped.
    pub fn result(&self) -> Option<&BenchmarkResults> {
        match self {
            CellOutcome::Cached(r) | CellOutcome::Computed { result: r, .. } => Some(r),
            CellOutcome::Failed(_) | CellOutcome::Stalled { .. } | CellOutcome::Skipped => None,
        }
    }
}

/// Wall time a computed cell spent in each §3.2 pipeline phase, collected
/// from the driver's `phase:` observer labels. Cached cells report zero
/// (nothing ran); the four spans do not sum to the cell's `elapsed` —
/// metrics assembly and supervision overhead sit outside them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellPhases {
    /// Full-speed traced run feeding the off-line analysis.
    pub trace_run: Duration,
    /// DAG construction + shaker slack analysis (both dilation targets).
    pub slack: Duration,
    /// Greedy clustering of per-domain histograms into schedules.
    pub cluster: Duration,
    /// Every dynamic-run simulation (schedule refinement, probes, the
    /// global-frequency search, and the five configuration runs).
    pub simulate: Duration,
}

impl CellPhases {
    /// Accumulates a `phase:`-labelled observer span into the matching
    /// field; returns `false` (and does nothing) for any other label.
    pub fn record(&mut self, stage: &str, span: Duration) -> bool {
        let slot = match stage {
            "phase:trace-run" => &mut self.trace_run,
            "phase:slack" => &mut self.slack,
            "phase:cluster" => &mut self.cluster,
            "phase:simulate" => &mut self.simulate,
            _ => return false,
        };
        *slot += span;
        true
    }
}

/// One cell's record in a [`CampaignReport`].
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell's parameters.
    pub cell: CellSpec,
    /// Its content-addressed cache key.
    pub key: CacheKey,
    /// What happened.
    pub outcome: CellOutcome,
    /// Wall time spent on this cell (cache probe included).
    pub elapsed: Duration,
    /// Pipeline-phase breakdown (zero unless the cell was computed
    /// locally this run).
    pub phases: CellPhases,
}

/// Everything a finished campaign produced, in cell (spec-expansion) order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-cell records, in the order [`CampaignSpec::expand`] produced.
    pub cells: Vec<CellReport>,
    /// Total wall time.
    pub wall: Duration,
    /// Whether the campaign was interrupted (SIGINT or an injected fault)
    /// and drained instead of finishing. An interrupted campaign with a
    /// checkpoint can be resumed.
    pub interrupted: bool,
}

impl CampaignReport {
    fn count(&self, pred: impl Fn(&CellOutcome) -> bool) -> usize {
        self.cells.iter().filter(|c| pred(&c.outcome)).count()
    }

    /// Number of cells served from the cache.
    pub fn cached(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Cached(_)))
    }

    /// Number of cells computed this run.
    pub fn computed(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Computed { .. }))
    }

    /// Number of cells that failed all attempts.
    pub fn failed(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Failed(_)))
    }

    /// Number of cells abandoned past their watchdog deadline.
    pub fn stalled(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Stalled { .. }))
    }

    /// Number of cells skipped because the campaign was interrupted.
    pub fn skipped(&self) -> usize {
        self.count(|o| matches!(o, CellOutcome::Skipped))
    }

    /// All results in cell order, or `None` if any cell is unfinished.
    pub fn results(&self) -> Option<Vec<&BenchmarkResults>> {
        self.cells.iter().map(|c| c.outcome.result()).collect()
    }

    /// The campaign's canonical result document: the JSON array of results
    /// in cell order. This is the byte-stable artifact — identical across
    /// worker counts, cache states, and interrupt/resume histories. `None`
    /// if any cell is unfinished.
    pub fn to_json(&self) -> Option<String> {
        let results: Vec<BenchmarkResults> = self
            .cells
            .iter()
            .map(|c| c.outcome.result().cloned())
            .collect::<Option<Vec<_>>>()?;
        Some(serde_json::to_string_pretty(&results).expect("JSON writing is infallible"))
    }
}

/// A configured, ready-to-run campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: CampaignSpec,
    workers: usize,
    retry: RetryPolicy,
    backoff: BackoffPolicy,
    deadline: Option<Duration>,
    checkpoint: Option<PathBuf>,
    checkpoint_every: usize,
    chaos: Arc<FaultPlan>,
    interrupt: Option<Arc<AtomicBool>>,
    analysis_threads: usize,
}

impl Campaign {
    /// A campaign over `spec` with default worker count (one per core),
    /// retry and backoff policies, no deadline, and no checkpoint.
    pub fn new(spec: CampaignSpec) -> Campaign {
        Campaign {
            spec,
            workers: 0,
            retry: RetryPolicy::default(),
            backoff: BackoffPolicy::default(),
            deadline: None,
            checkpoint: None,
            checkpoint_every: 1,
            chaos: Arc::new(FaultPlan::none()),
            interrupt: None,
            analysis_threads: 1,
        }
    }

    /// Rebuilds a campaign from a checkpoint manifest: the spec is embedded
    /// in the manifest, and the returned campaign persists its progress
    /// back to the same path. Completed cells are re-verified against the
    /// result cache when the campaign runs — the manifest says where to
    /// look first, the cache is the source of truth for bytes.
    pub fn from_checkpoint(path: &Path) -> Result<Campaign, HarnessError> {
        let manifest = CheckpointManifest::load(path)?;
        Ok(Campaign::new(manifest.spec().clone()).checkpoint(path))
    }

    /// Sets the worker count (`0` = one per available core).
    pub fn workers(mut self, workers: usize) -> Campaign {
        self.workers = workers;
        self
    }

    /// Sets the panic retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Campaign {
        self.retry = retry;
        self
    }

    /// Sets the backoff policy for transient cache IO failures.
    pub fn backoff(mut self, backoff: BackoffPolicy) -> Campaign {
        self.backoff = backoff;
        self
    }

    /// Sets a per-attempt watchdog deadline: a cell attempt that runs
    /// longer is abandoned and reported as [`CellOutcome::Stalled`]
    /// (instead of hanging its worker forever).
    pub fn deadline(mut self, deadline: Duration) -> Campaign {
        self.deadline = Some(deadline);
        self
    }

    /// Persists progress to a checkpoint manifest at `path` (rewritten
    /// atomically after every completed cell, or every N with
    /// [`Campaign::checkpoint_every`]). If the file already exists it is
    /// loaded and verified against this campaign's spec, so a restarted
    /// run continues where the last one stopped.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Campaign {
        self.checkpoint = Some(path.into());
        self
    }

    /// Sets the checkpoint cadence: persist the manifest every `every`
    /// completed cells instead of every cell (0 is clamped to 1). A
    /// SIGKILLed campaign then re-verifies at most `every` cells against
    /// the cache on resume — results are never lost (the cache stores
    /// per cell regardless), only done-marks.
    pub fn checkpoint_every(mut self, every: usize) -> Campaign {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Sets the off-line analysis fan-out inside each cell (`1` = serial,
    /// `0` = one thread per core). Results-neutral: any value produces
    /// byte-identical cell results — this only trades cell latency against
    /// cross-cell parallelism when workers already saturate the cores.
    pub fn analysis_threads(mut self, threads: usize) -> Campaign {
        self.analysis_threads = threads;
        self
    }

    /// Installs a deterministic fault plan (chaos testing only).
    pub fn chaos(mut self, plan: FaultPlan) -> Campaign {
        self.chaos = Arc::new(plan);
        self
    }

    /// Installs an external interrupt flag (e.g. raised by a SIGINT
    /// handler). When it becomes `true`, workers finish their in-flight
    /// cells, skip everything unclaimed, and the campaign returns a
    /// resumable report instead of aborting.
    pub fn interrupt(mut self, flag: Arc<AtomicBool>) -> Campaign {
        self.interrupt = Some(flag);
        self
    }

    /// The spec this campaign will run.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Runs the campaign: expand, probe the cache (quarantining corrupt
    /// entries), compute misses on the pool under supervision, store what
    /// was computed, checkpoint progress, and report per-cell outcomes in
    /// spec-expansion order.
    pub fn run(
        &self,
        cache: &ResultCache,
        telemetry: &Telemetry,
    ) -> Result<CampaignReport, HarnessError> {
        let start = Instant::now();
        let cells = self.spec.expand()?;
        let keys: Vec<CacheKey> = cells.iter().map(CacheKey::of).collect();
        let workers = pool::resolve_workers(self.workers);

        // Fast integrity sample before trusting the cache: re-verify a few
        // entries and quarantine anything corrupt (a full walk is
        // `mcd-cli cache verify`).
        let spot = cache.spot_check(SPOT_CHECK_LIMIT);
        if spot.checked > 0 {
            telemetry.cache_spot_check(spot.checked, spot.corrupt);
        }

        // The manifest rides with a dirty-cell counter so saves can be
        // batched to the configured cadence.
        let manifest: Mutex<Option<(CheckpointManifest, usize)>> =
            Mutex::new(match &self.checkpoint {
                Some(path) if path.exists() => {
                    let m = CheckpointManifest::load(path)?;
                    m.verify_spec(&self.spec)?;
                    if m.total() != cells.len() {
                        return Err(HarnessError::CheckpointInvalid {
                            path: path.clone(),
                            reason: format!(
                                "manifest records {} cells, campaign expands to {}",
                                m.total(),
                                cells.len()
                            ),
                        });
                    }
                    Some((m, 0))
                }
                Some(_) => Some((CheckpointManifest::new(self.spec.clone(), cells.len()), 0)),
                None => None,
            });
        // Persist the initial manifest before any work: a campaign killed
        // during its very first cells still leaves a resumable file.
        if let Some(path) = &self.checkpoint {
            let guard = manifest.lock().expect("checkpoint manifest poisoned");
            if let Some((m, _)) = guard.as_ref() {
                m.save(path)?;
            }
        }

        telemetry.campaign_started(cells.len(), workers);
        let stop = self
            .interrupt
            .clone()
            .unwrap_or_else(|| Arc::new(AtomicBool::new(false)));

        // Slack profiles are results-neutral and expensive, so campaigns
        // always share them across processes through a content-addressed
        // store beside the result cache. Best-effort: a cache directory
        // that cannot be created just means recomputing slack.
        let slack = SlackDiskCache::open(cache.dir().join(SLACK_CACHE_DIR))
            .ok()
            .map(Arc::new);
        let options = RunOptions {
            analysis_threads: self.analysis_threads,
            slack_store: slack
                .as_ref()
                .map(|s| Arc::clone(s) as Arc<dyn mcd_core::SlackStore>),
        };

        let slots = pool::run_indexed_until(workers, cells.len(), &stop, |i| {
            let ctx = supervisor::CellContext {
                index: i,
                cell: &cells[i],
                key: &keys[i],
                cache,
                telemetry,
                chaos: &self.chaos,
                retry: self.retry,
                backoff: self.backoff,
                deadline: self.deadline,
                options: &options,
                stop: &stop,
            };
            let (outcome, elapsed, phases) = supervisor::run_cell(&ctx);
            if outcome.result().is_some() {
                if let Some(path) = &self.checkpoint {
                    let mut guard = manifest.lock().expect("checkpoint manifest poisoned");
                    if let Some((m, dirty)) = guard.as_mut() {
                        if m.mark_done(i) {
                            *dirty += 1;
                            if *dirty >= self.checkpoint_every {
                                // Atomic, fsynced rewrite at the cadence: a
                                // crash at any moment leaves a consistent
                                // manifest at most `checkpoint_every` cells
                                // behind the cache. A failed save only costs
                                // resume granularity, never results.
                                if m.save(path).is_ok() {
                                    *dirty = 0;
                                }
                            }
                        }
                    }
                }
            }
            (outcome, elapsed, phases)
        });

        // Flush done-marks the cadence batched up, so a *cleanly* finished
        // campaign's manifest is always exact.
        if let Some(path) = &self.checkpoint {
            let mut guard = manifest.lock().expect("checkpoint manifest poisoned");
            if let Some((m, dirty)) = guard.as_mut() {
                if *dirty > 0 && m.save(path).is_ok() {
                    *dirty = 0;
                }
            }
        }

        let interrupted = stop.load(Ordering::SeqCst);
        let cells: Vec<CellReport> = cells
            .into_iter()
            .zip(keys)
            .zip(slots)
            .enumerate()
            .map(|(i, ((cell, key), slot))| {
                let (outcome, elapsed, phases) = match slot {
                    JobSlot::Done((outcome, elapsed, phases)) => (outcome, elapsed, phases),
                    JobSlot::Panicked(message) => {
                        // A panic that escaped the supervisor itself —
                        // contained to this cell, reported as a failure.
                        telemetry.cell_failed(i, 1, &message, false);
                        (
                            CellOutcome::Failed(CellFailure {
                                attempts: 1,
                                message,
                                deterministic: false,
                            }),
                            Duration::ZERO,
                            CellPhases::default(),
                        )
                    }
                    JobSlot::Unclaimed => {
                        (CellOutcome::Skipped, Duration::ZERO, CellPhases::default())
                    }
                };
                CellReport {
                    cell,
                    key,
                    outcome,
                    elapsed,
                    phases,
                }
            })
            .collect();

        let report = CampaignReport {
            cells,
            wall: start.elapsed(),
            interrupted,
        };
        let slack_stats = slack.as_ref().map(|s| s.stats()).unwrap_or_default();
        if slack_stats.loads > 0 || slack_stats.stores > 0 {
            telemetry.slack_cache(slack_stats.loads, slack_stats.hits, slack_stats.stores);
        }
        // Persist the aggregate view next to the result cache for
        // `mcd-cli campaign report`. Best-effort: losing the summary must
        // not fail a campaign whose results are already safe.
        let _ = rollup::CampaignRollup::from_report(&report)
            .with_slack(slack_stats)
            .with_integrity(spot.checked, spot.corrupt, self.checkpoint_every as u64)
            .save(&cache.dir().join(ROLLUP_FILE));
        if interrupted {
            telemetry.campaign_interrupted(report.cached() + report.computed(), report.skipped());
        }
        telemetry.campaign_finished(
            report.computed(),
            report.cached(),
            report.failed(),
            report.wall,
        );
        Ok(report)
    }

    /// Expands the spec and probes the cache without running anything:
    /// `(cell, key, cached?)` per cell, for `campaign status`.
    pub fn status(
        &self,
        cache: &ResultCache,
    ) -> Result<Vec<(CellSpec, CacheKey, bool)>, SpecError> {
        Ok(self
            .spec
            .expand()?
            .into_iter()
            .map(|cell| {
                let key = CacheKey::of(&cell);
                let cached = cache.contains(&key);
                (cell, key, cached)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_time::DvfsModel;
    use std::path::PathBuf;

    fn scratch_cache(tag: &str) -> (ResultCache, PathBuf) {
        let dir = std::env::temp_dir().join(format!("mcd-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultCache::open(&dir).expect("create cache"), dir)
    }

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            benchmarks: vec!["adpcm".into(), "mst".into(), "gcc".into()],
            seeds: vec![5],
            instructions: 4_000,
            models: vec![DvfsModel::XScale],
            thetas: [0.01, 0.05],
            policies: Vec::new(),
        }
    }

    #[test]
    fn second_run_is_fully_cached_and_byte_identical() {
        let (cache, dir) = scratch_cache("rerun");
        let campaign = Campaign::new(tiny_spec()).workers(2);

        let first = campaign
            .run(&cache, &Telemetry::disabled())
            .expect("first run");
        assert_eq!(first.computed(), 3);
        assert_eq!(first.cached(), 0);
        assert_eq!(first.failed(), 0);
        assert!(!first.interrupted);

        let second = campaign
            .run(&cache, &Telemetry::disabled())
            .expect("second run");
        assert_eq!(
            second.computed(),
            0,
            "unchanged campaign must recompute nothing"
        );
        assert_eq!(second.cached(), 3);
        assert_eq!(first.to_json(), second.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_matches_serial_driver_per_cell() {
        let (cache, dir) = scratch_cache("serial");
        let spec = tiny_spec();
        let report = Campaign::new(spec.clone())
            .workers(2)
            .run(&cache, &Telemetry::disabled())
            .unwrap();
        for (cell, record) in spec.expand().unwrap().iter().zip(&report.cells) {
            let serial = cell.run();
            let parallel = record.outcome.result().expect("cell succeeded");
            assert_eq!(
                serde_json::to_string(parallel).unwrap(),
                serde_json::to_string(&serial).unwrap(),
                "cell {} differs from the serial driver",
                cell.label()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_reflects_cache_population() {
        let (cache, dir) = scratch_cache("status");
        let campaign = Campaign::new(tiny_spec());
        let before = campaign.status(&cache).unwrap();
        assert!(before.iter().all(|(_, _, cached)| !cached));

        campaign.run(&cache, &Telemetry::disabled()).unwrap();
        let after = campaign.status(&cache).unwrap();
        assert!(after.iter().all(|(_, _, cached)| *cached));
        assert_eq!(after.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_run_records_every_cell_and_resumes_complete() {
        let (cache, dir) = scratch_cache("ckpt");
        let ckpt = dir.join("campaign.checkpoint.json");
        let campaign = Campaign::new(tiny_spec()).workers(2).checkpoint(&ckpt);
        let report = campaign.run(&cache, &Telemetry::disabled()).expect("run");
        assert_eq!(report.computed(), 3);

        let manifest = CheckpointManifest::load(&ckpt).expect("manifest written");
        assert!(manifest.is_complete());
        assert_eq!(manifest.total(), 3);

        // Rebuilding from the manifest alone reproduces the same bytes,
        // fully from cache.
        let resumed = Campaign::from_checkpoint(&ckpt)
            .expect("manifest round-trips")
            .run(&cache, &Telemetry::disabled())
            .expect("resume");
        assert_eq!(resumed.cached(), 3);
        assert_eq!(resumed.to_json(), report.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_checkpoint_cadence_still_finishes_exact() {
        let (cache, dir) = scratch_cache("ckpt-cadence");
        let ckpt = dir.join("campaign.checkpoint.json");
        // Cadence far above the cell count: only the initial save and the
        // final flush ever write, and the manifest must still end complete.
        let report = Campaign::new(tiny_spec())
            .workers(2)
            .checkpoint(&ckpt)
            .checkpoint_every(100)
            .run(&cache, &Telemetry::disabled())
            .expect("run");
        assert_eq!(report.computed(), 3);
        let manifest = CheckpointManifest::load(&ckpt).expect("manifest written");
        assert!(manifest.is_complete());

        // Resume under the same cadence is a no-op rerun from cache.
        let resumed = Campaign::from_checkpoint(&ckpt)
            .expect("manifest round-trips")
            .checkpoint_every(100)
            .run(&cache, &Telemetry::disabled())
            .expect("resume");
        assert_eq!(resumed.cached(), 3);
        assert_eq!(resumed.to_json(), report.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpointed_campaign_saves_a_manifest_before_any_work() {
        let (cache, dir) = scratch_cache("ckpt-initial");
        let ckpt = dir.join("campaign.checkpoint.json");
        // Interrupt immediately: no cell ever completes, yet the manifest
        // must already be on disk and resumable.
        let stop = Arc::new(AtomicBool::new(true));
        let report = Campaign::new(tiny_spec())
            .checkpoint(&ckpt)
            .checkpoint_every(50)
            .interrupt(Arc::clone(&stop))
            .run(&cache, &Telemetry::disabled())
            .expect("run");
        assert!(report.interrupted);
        assert_eq!(report.skipped(), 3);
        let manifest = CheckpointManifest::load(&ckpt).expect("initial manifest exists");
        assert_eq!(manifest.completed().len(), 0);
        assert_eq!(manifest.total(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_for_a_different_spec_is_refused() {
        let (cache, dir) = scratch_cache("ckpt-mismatch");
        let ckpt = dir.join("campaign.checkpoint.json");
        Campaign::new(tiny_spec())
            .checkpoint(&ckpt)
            .run(&cache, &Telemetry::disabled())
            .expect("seed the checkpoint");

        let mut other = tiny_spec();
        other.seeds = vec![6];
        let err = Campaign::new(other)
            .checkpoint(&ckpt)
            .run(&cache, &Telemetry::disabled())
            .expect_err("mismatched spec must refuse to resume");
        assert!(matches!(err, HarnessError::CheckpointMismatch { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
