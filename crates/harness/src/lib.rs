//! Parallel experiment campaign engine for the MCD-DVFS workspace.
//!
//! A *campaign* is a sweep — benchmarks × seeds × DVFS models — expanded
//! into independent cells ([`spec`]), executed on a fixed-size worker pool
//! ([`pool`]) with per-cell fault isolation and bounded retry ([`retry`]),
//! memoized in a content-addressed result cache ([`cache`]), and narrated
//! as JSONL structured telemetry ([`telemetry`]).
//!
//! Determinism is the design invariant: a cell's result depends only on
//! its [`CellSpec`] (the simulator derives all randomness from the spec's
//! seed), results are assembled by cell index rather than completion
//! order, and JSON objects serialize with sorted keys — so a campaign's
//! result bytes are identical for 1, 2 or N workers and identical to the
//! serial driver ([`mcd_core::run_benchmark`]) run cell by cell. That
//! invariant is also what makes the cache sound: a key collision can only
//! come from identical inputs, which produce identical results.
//!
//! ```no_run
//! use mcd_harness::{CampaignSpec, Campaign, ResultCache, Telemetry};
//! use mcd_time::DvfsModel;
//!
//! let spec = CampaignSpec::paper(5, 240_000, DvfsModel::XScale);
//! let cache = ResultCache::open("target/mcd-campaign-cache").unwrap();
//! let report = Campaign::new(spec).workers(4).run(&cache, &Telemetry::stderr()).unwrap();
//! println!("{} computed, {} cached", report.computed(), report.cached());
//! ```

pub mod cache;
pub mod pool;
pub mod retry;
pub mod snapshot;
pub mod spec;
pub mod telemetry;

use std::time::{Duration, Instant};

use mcd_core::BenchmarkResults;

pub use cache::{CacheKey, ResultCache, CACHE_FORMAT_VERSION};
pub use retry::{CellFailure, RetryPolicy};
pub use snapshot::{BenchSnapshot, CellTiming, SNAPSHOT_SCHEMA};
pub use spec::{parse_model, CampaignSpec, CellSpec, SpecError};
pub use telemetry::{CellSource, Telemetry};

/// How one cell of a finished campaign was produced.
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// Result served from the cache.
    Cached(BenchmarkResults),
    /// Result computed this run (with the attempt count that succeeded).
    Computed {
        /// The computed result.
        result: BenchmarkResults,
        /// 1 = first try.
        attempts: u32,
    },
    /// All attempts panicked.
    Failed(CellFailure),
}

impl CellOutcome {
    /// The result, unless the cell failed.
    pub fn result(&self) -> Option<&BenchmarkResults> {
        match self {
            CellOutcome::Cached(r) | CellOutcome::Computed { result: r, .. } => Some(r),
            CellOutcome::Failed(_) => None,
        }
    }
}

/// One cell's record in a [`CampaignReport`].
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell's parameters.
    pub cell: CellSpec,
    /// Its content-addressed cache key.
    pub key: CacheKey,
    /// What happened.
    pub outcome: CellOutcome,
    /// Wall time spent on this cell (cache probe included).
    pub elapsed: Duration,
}

/// Everything a finished campaign produced, in cell (spec-expansion) order.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-cell records, in the order [`CampaignSpec::expand`] produced.
    pub cells: Vec<CellReport>,
    /// Total wall time.
    pub wall: Duration,
}

impl CampaignReport {
    /// Number of cells served from the cache.
    pub fn cached(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Cached(_)))
            .count()
    }

    /// Number of cells computed this run.
    pub fn computed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Computed { .. }))
            .count()
    }

    /// Number of cells that failed all attempts.
    pub fn failed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Failed(_)))
            .count()
    }

    /// All results in cell order, or `None` if any cell failed.
    pub fn results(&self) -> Option<Vec<&BenchmarkResults>> {
        self.cells.iter().map(|c| c.outcome.result()).collect()
    }

    /// The campaign's canonical result document: the JSON array of results
    /// in cell order. This is the byte-stable artifact — identical across
    /// worker counts and cache states. `None` if any cell failed.
    pub fn to_json(&self) -> Option<String> {
        let results: Vec<BenchmarkResults> = self
            .cells
            .iter()
            .map(|c| c.outcome.result().cloned())
            .collect::<Option<Vec<_>>>()?;
        Some(serde_json::to_string_pretty(&results).expect("JSON writing is infallible"))
    }
}

/// A configured, ready-to-run campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    spec: CampaignSpec,
    workers: usize,
    retry: RetryPolicy,
}

impl Campaign {
    /// A campaign over `spec` with default worker count (one per core) and
    /// retry policy.
    pub fn new(spec: CampaignSpec) -> Campaign {
        Campaign {
            spec,
            workers: 0,
            retry: RetryPolicy::default(),
        }
    }

    /// Sets the worker count (`0` = one per available core).
    pub fn workers(mut self, workers: usize) -> Campaign {
        self.workers = workers;
        self
    }

    /// Sets the retry policy.
    pub fn retry(mut self, retry: RetryPolicy) -> Campaign {
        self.retry = retry;
        self
    }

    /// The spec this campaign will run.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Runs the campaign: expand, probe the cache, compute misses on the
    /// pool, store what was computed, and report per-cell outcomes in
    /// spec-expansion order.
    pub fn run(
        &self,
        cache: &ResultCache,
        telemetry: &Telemetry,
    ) -> Result<CampaignReport, SpecError> {
        let start = Instant::now();
        let cells = self.spec.expand()?;
        let keys: Vec<CacheKey> = cells.iter().map(CacheKey::of).collect();
        let workers = pool::resolve_workers(self.workers);
        telemetry.campaign_started(cells.len(), workers);

        let outcomes = pool::run_indexed(workers, cells.len(), |i| {
            let cell = &cells[i];
            let key = &keys[i];
            let cell_start = Instant::now();
            telemetry.cell_started(i, cell);

            if let Some(result) = cache.load(key) {
                let elapsed = cell_start.elapsed();
                telemetry.cell_finished(i, CellSource::Cached, elapsed);
                return (CellOutcome::Cached(result), elapsed);
            }

            let attempt =
                || cell.run_observed(&mut |stage, span| telemetry.cell_stage(i, stage, span));
            let outcome = match retry::run_isolated(
                self.retry,
                |n, message| telemetry.cell_retry(i, n, message),
                attempt,
            ) {
                Ok((result, attempts)) => {
                    // A cache write failure only costs a recomputation next
                    // run; the in-memory result is still good.
                    let _ = cache.store(key, cell, &result);
                    telemetry.cell_finished(
                        i,
                        CellSource::Computed { attempts },
                        cell_start.elapsed(),
                    );
                    CellOutcome::Computed { result, attempts }
                }
                Err(failure) => {
                    telemetry.cell_failed(i, failure.attempts, &failure.message);
                    CellOutcome::Failed(failure)
                }
            };
            (outcome, cell_start.elapsed())
        });

        let cells: Vec<CellReport> = cells
            .into_iter()
            .zip(keys)
            .zip(outcomes)
            .map(|((cell, key), (outcome, elapsed))| CellReport {
                cell,
                key,
                outcome,
                elapsed,
            })
            .collect();
        let report = CampaignReport {
            cells,
            wall: start.elapsed(),
        };
        telemetry.campaign_finished(
            report.computed(),
            report.cached(),
            report.failed(),
            report.wall,
        );
        Ok(report)
    }

    /// Expands the spec and probes the cache without running anything:
    /// `(cell, key, cached?)` per cell, for `campaign status`.
    pub fn status(
        &self,
        cache: &ResultCache,
    ) -> Result<Vec<(CellSpec, CacheKey, bool)>, SpecError> {
        Ok(self
            .spec
            .expand()?
            .into_iter()
            .map(|cell| {
                let key = CacheKey::of(&cell);
                let cached = cache.contains(&key);
                (cell, key, cached)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_time::DvfsModel;
    use std::path::PathBuf;

    fn scratch_cache(tag: &str) -> (ResultCache, PathBuf) {
        let dir = std::env::temp_dir().join(format!("mcd-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultCache::open(&dir).expect("create cache"), dir)
    }

    fn tiny_spec() -> CampaignSpec {
        CampaignSpec {
            benchmarks: vec!["adpcm".into(), "mst".into(), "gcc".into()],
            seeds: vec![5],
            instructions: 4_000,
            models: vec![DvfsModel::XScale],
            thetas: [0.01, 0.05],
        }
    }

    #[test]
    fn second_run_is_fully_cached_and_byte_identical() {
        let (cache, dir) = scratch_cache("rerun");
        let campaign = Campaign::new(tiny_spec()).workers(2);

        let first = campaign
            .run(&cache, &Telemetry::disabled())
            .expect("first run");
        assert_eq!(first.computed(), 3);
        assert_eq!(first.cached(), 0);
        assert_eq!(first.failed(), 0);

        let second = campaign
            .run(&cache, &Telemetry::disabled())
            .expect("second run");
        assert_eq!(
            second.computed(),
            0,
            "unchanged campaign must recompute nothing"
        );
        assert_eq!(second.cached(), 3);
        assert_eq!(first.to_json(), second.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_matches_serial_driver_per_cell() {
        let (cache, dir) = scratch_cache("serial");
        let spec = tiny_spec();
        let report = Campaign::new(spec.clone())
            .workers(2)
            .run(&cache, &Telemetry::disabled())
            .unwrap();
        for (cell, record) in spec.expand().unwrap().iter().zip(&report.cells) {
            let serial = cell.run();
            let parallel = record.outcome.result().expect("cell succeeded");
            assert_eq!(
                serde_json::to_string(parallel).unwrap(),
                serde_json::to_string(&serial).unwrap(),
                "cell {} differs from the serial driver",
                cell.label()
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn status_reflects_cache_population() {
        let (cache, dir) = scratch_cache("status");
        let campaign = Campaign::new(tiny_spec());
        let before = campaign.status(&cache).unwrap();
        assert!(before.iter().all(|(_, _, cached)| !cached));

        campaign.run(&cache, &Telemetry::disabled()).unwrap();
        let after = campaign.status(&cache).unwrap();
        assert!(after.iter().all(|(_, _, cached)| *cached));
        assert_eq!(after.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
