//! Campaign sweep specification and its expansion into cells.
//!
//! A campaign is a cross product *benchmarks × seeds × DVFS models* at a
//! fixed instruction window and dilation-target pair. Each point of the
//! product is one [`CellSpec`]: an independent unit of work that produces
//! one [`BenchmarkResults`] and is cached, retried, and scheduled on the
//! worker pool in isolation.

use std::fmt;
use std::str::FromStr;

use serde::{DeError, Deserialize, Map, Serialize, Value};

use mcd_core::{run_benchmark_scenarios, BenchmarkResults, ExperimentConfig, RunOptions};
use mcd_pipeline::PolicySpec;
use mcd_time::DvfsModel;
use mcd_workload::{suites, BenchmarkProfile};

/// A full sweep: the cross product of benchmarks, seeds and DVFS models.
///
/// Serialization is hand-written so the `policies` axis is omitted when
/// empty: policy-free specs produce exactly the pre-policy document (and
/// digest), and documents written before the axis existed still parse.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Benchmarks to run, in figure order. Empty means the full Table-2
    /// suite ([`suites::names`]).
    pub benchmarks: Vec<String>,
    /// Experiment seeds (workload, jitter, PLL lock times). One campaign
    /// row per seed.
    pub seeds: Vec<u64>,
    /// Committed instructions per run.
    pub instructions: u64,
    /// DVFS transition models to sweep.
    pub models: Vec<DvfsModel>,
    /// The two dilation targets `[θ_low, θ_high]` (paper: 1 % and 5 %).
    pub thetas: [f64; 2],
    /// Online control policies (`id[:key=value,…]` grammar). Each cell runs
    /// every listed policy as an extra governed row on top of the five paper
    /// configurations. Empty reproduces the paper sweep exactly.
    pub policies: Vec<String>,
}

impl Serialize for CampaignSpec {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("benchmarks".into(), self.benchmarks.to_value());
        m.insert("seeds".into(), self.seeds.to_value());
        m.insert("instructions".into(), self.instructions.to_value());
        m.insert("models".into(), self.models.to_value());
        m.insert("thetas".into(), self.thetas.to_value());
        if !self.policies.is_empty() {
            m.insert("policies".into(), self.policies.to_value());
        }
        Value::Object(m)
    }
}

impl Deserialize for CampaignSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        Ok(CampaignSpec {
            benchmarks: serde::__private::field(m, "benchmarks")?,
            seeds: serde::__private::field(m, "seeds")?,
            instructions: serde::__private::field(m, "instructions")?,
            models: serde::__private::field(m, "models")?,
            thetas: serde::__private::field(m, "thetas")?,
            policies: opt_policies(m)?,
        })
    }
}

/// Reads an optional `policies` key (absent ⇒ empty, pre-policy documents).
fn opt_policies(m: &Map) -> Result<Vec<String>, DeError> {
    match m.get("policies") {
        Some(v) => {
            <Vec<String>>::from_value(v).map_err(|e| DeError::new(format!("field `policies`: {e}")))
        }
        None => Ok(Vec::new()),
    }
}

impl CampaignSpec {
    /// The paper's headline sweep: all 16 benchmarks, one seed, the XScale
    /// model, θ ∈ {1 %, 5 %}.
    pub fn paper(seed: u64, instructions: u64, model: DvfsModel) -> Self {
        CampaignSpec {
            benchmarks: Vec::new(),
            seeds: vec![seed],
            instructions,
            models: vec![model],
            thetas: [0.01, 0.05],
            policies: Vec::new(),
        }
    }

    /// The benchmark list with the empty-means-all default applied.
    pub fn benchmark_names(&self) -> Vec<String> {
        if self.benchmarks.is_empty() {
            suites::names().iter().map(|n| n.to_string()).collect()
        } else {
            self.benchmarks.clone()
        }
    }

    /// Expands the spec into cells in deterministic order: models outermost,
    /// then seeds, then benchmarks in figure order — so one (model, seed)
    /// row is contiguous and matches the serial driver's iteration order.
    pub fn expand(&self) -> Result<Vec<CellSpec>, SpecError> {
        if self.seeds.is_empty() {
            return Err(SpecError::Empty("seeds"));
        }
        if self.models.is_empty() {
            return Err(SpecError::Empty("models"));
        }
        if self.instructions == 0 {
            return Err(SpecError::Empty("instructions"));
        }
        for theta in self.thetas {
            if !(theta > 0.0 && theta < 1.0) {
                return Err(SpecError::BadTheta(theta));
            }
        }
        let names = self.benchmark_names();
        for name in &names {
            if suites::by_name(name).is_none() {
                return Err(SpecError::UnknownBenchmark(name.clone()));
            }
        }
        let policies = canonical_policies(&self.policies)?;
        let mut cells = Vec::with_capacity(names.len() * self.seeds.len() * self.models.len());
        for &model in &self.models {
            for &seed in &self.seeds {
                for name in &names {
                    cells.push(CellSpec {
                        benchmark: name.clone(),
                        seed,
                        instructions: self.instructions,
                        model,
                        thetas: self.thetas,
                        policies: policies.clone(),
                    });
                }
            }
        }
        Ok(cells)
    }
}

/// Validates policy specs against the registry and canonicalizes them
/// (sorted parameters, normalized numbers), rejecting duplicates that only
/// differ in spelling.
fn canonical_policies(policies: &[String]) -> Result<Vec<String>, SpecError> {
    let mut canonical = Vec::with_capacity(policies.len());
    for raw in policies {
        let spec =
            PolicySpec::parse(raw).map_err(|e| SpecError::BadPolicy(raw.clone(), e.to_string()))?;
        let c = spec.canonical();
        if canonical.contains(&c) {
            return Err(SpecError::BadPolicy(raw.clone(), "duplicate policy".into()));
        }
        canonical.push(c);
    }
    Ok(canonical)
}

/// One independent unit of campaign work: a benchmark under one parameter
/// point, producing the full five-configuration [`BenchmarkResults`] plus
/// one governed row per online policy.
///
/// Serialization is hand-written so `policies` is omitted when empty —
/// policy-free cells keep their pre-policy bytes, and therefore their
/// pre-policy cache keys (see [`crate::CacheKey`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Benchmark name (must exist in [`suites`]).
    pub benchmark: String,
    /// Experiment seed.
    pub seed: u64,
    /// Committed instructions per run.
    pub instructions: u64,
    /// DVFS transition model.
    pub model: DvfsModel,
    /// Dilation targets `[θ_low, θ_high]`.
    pub thetas: [f64; 2],
    /// Canonical online policy specs to run as extra governed rows (empty
    /// for the plain paper cell).
    pub policies: Vec<String>,
}

impl Serialize for CellSpec {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("benchmark".into(), self.benchmark.to_value());
        m.insert("seed".into(), self.seed.to_value());
        m.insert("instructions".into(), self.instructions.to_value());
        m.insert("model".into(), self.model.to_value());
        m.insert("thetas".into(), self.thetas.to_value());
        if !self.policies.is_empty() {
            m.insert("policies".into(), self.policies.to_value());
        }
        Value::Object(m)
    }
}

impl Deserialize for CellSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        Ok(CellSpec {
            benchmark: serde::__private::field(m, "benchmark")?,
            seed: serde::__private::field(m, "seed")?,
            instructions: serde::__private::field(m, "instructions")?,
            model: serde::__private::field(m, "model")?,
            thetas: serde::__private::field(m, "thetas")?,
            policies: opt_policies(m)?,
        })
    }
}

impl CellSpec {
    /// The benchmark profile this cell runs.
    pub fn profile(&self) -> BenchmarkProfile {
        suites::by_name(&self.benchmark)
            .unwrap_or_else(|| panic!("unknown benchmark `{}`", self.benchmark))
    }

    /// The experiment configuration this cell runs under.
    pub fn experiment_config(&self) -> ExperimentConfig {
        ExperimentConfig::paper(self.seed, self.instructions, self.model)
    }

    /// Runs the cell serially on the calling thread, reporting per-stage
    /// wall time through `observe` (configuration label, duration).
    pub fn run_observed(
        &self,
        observe: &mut dyn FnMut(&str, std::time::Duration),
    ) -> BenchmarkResults {
        self.run_with(RunOptions::default(), observe)
    }

    /// [`CellSpec::run_observed`] with explicit execution options (analysis
    /// fan-out, slack-profile store). Options are results-neutral: the
    /// returned results — and therefore the cell's cache bytes — are
    /// identical for any options value.
    pub fn run_with(
        &self,
        options: RunOptions,
        observe: &mut dyn FnMut(&str, std::time::Duration),
    ) -> BenchmarkResults {
        let policies: Vec<PolicySpec> = self
            .policies
            .iter()
            .map(|p| PolicySpec::parse(p).unwrap_or_else(|e| panic!("invalid policy `{p}`: {e}")))
            .collect();
        run_benchmark_scenarios(
            &self.profile(),
            &self.experiment_config(),
            options,
            self.thetas,
            &policies,
            observe,
        )
    }

    /// Runs the cell serially without telemetry.
    pub fn run(&self) -> BenchmarkResults {
        self.run_observed(&mut |_, _| {})
    }

    /// Short human-readable identity, e.g. `gcc/s5/n240000/XScale`; governed
    /// cells append their policies, e.g. `gcc/s5/n240000/XScale+attack-decay`.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/s{}/n{}/{:?}",
            self.benchmark, self.seed, self.instructions, self.model
        );
        for policy in &self.policies {
            label.push('+');
            label.push_str(policy);
        }
        label
    }
}

/// Why a spec could not be expanded.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// A sweep axis has no points (or the instruction window is zero).
    Empty(&'static str),
    /// A benchmark name is not in the Table-2 suite.
    UnknownBenchmark(String),
    /// A dilation target outside (0, 1).
    BadTheta(f64),
    /// An online policy spec the registry rejected (spec, reason).
    BadPolicy(String, String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Empty(axis) => write!(f, "campaign spec has no {axis}"),
            SpecError::UnknownBenchmark(name) => write!(f, "unknown benchmark `{name}`"),
            SpecError::BadTheta(theta) => {
                write!(f, "dilation target {theta} outside (0, 1)")
            }
            SpecError::BadPolicy(spec, reason) => {
                write!(f, "invalid policy `{spec}`: {reason}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Parses a DVFS model name as used on the CLI (`xscale` / `transmeta`).
pub fn parse_model(s: &str) -> Result<DvfsModel, String> {
    match s.to_ascii_lowercase().as_str() {
        "xscale" => Ok(DvfsModel::XScale),
        "transmeta" => Ok(DvfsModel::Transmeta),
        other => Err(format!(
            "unknown DVFS model `{other}` (expected xscale or transmeta)"
        )),
    }
}

impl FromStr for CellSpec {
    type Err = String;

    /// Parses the `label()` form back into a spec (θs take the paper
    /// defaults; a `+policy` suffix per governed row). Used by
    /// `campaign status` filters.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('/').collect();
        if parts.len() != 4 {
            return Err(format!(
                "expected bench/sSEED/nINSNS/MODEL[+POLICY…], got `{s}`"
            ));
        }
        let seed = parts[1]
            .strip_prefix('s')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad seed field `{}`", parts[1]))?;
        let instructions = parts[2]
            .strip_prefix('n')
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("bad instruction field `{}`", parts[2]))?;
        let mut tail = parts[3].split('+');
        let model = tail.next().expect("split yields at least one part");
        let policies = tail
            .map(|p| {
                PolicySpec::parse(p)
                    .map(|spec| spec.canonical())
                    .map_err(|e| format!("invalid policy `{p}`: {e}"))
            })
            .collect::<Result<Vec<String>, String>>()?;
        Ok(CellSpec {
            benchmark: parts[0].to_string(),
            seed,
            instructions,
            model: parse_model(model)?,
            thetas: [0.01, 0.05],
            policies,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_benchmarks_means_full_suite_in_figure_order() {
        let spec = CampaignSpec::paper(5, 1_000, DvfsModel::XScale);
        let cells = spec.expand().expect("valid spec");
        assert_eq!(cells.len(), 16);
        assert_eq!(cells[0].benchmark, "adpcm");
        assert_eq!(cells[15].benchmark, "swim");
    }

    #[test]
    fn expansion_is_models_then_seeds_then_benchmarks() {
        let spec = CampaignSpec {
            benchmarks: vec!["gcc".into(), "art".into()],
            seeds: vec![1, 2],
            instructions: 1_000,
            models: vec![DvfsModel::XScale, DvfsModel::Transmeta],
            thetas: [0.01, 0.05],
            policies: Vec::new(),
        };
        let cells = spec.expand().expect("valid spec");
        let labels: Vec<String> = cells.iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            vec![
                "gcc/s1/n1000/XScale",
                "art/s1/n1000/XScale",
                "gcc/s2/n1000/XScale",
                "art/s2/n1000/XScale",
                "gcc/s1/n1000/Transmeta",
                "art/s1/n1000/Transmeta",
                "gcc/s2/n1000/Transmeta",
                "art/s2/n1000/Transmeta",
            ]
        );
    }

    #[test]
    fn unknown_benchmark_is_rejected() {
        let mut spec = CampaignSpec::paper(5, 1_000, DvfsModel::XScale);
        spec.benchmarks = vec!["vortex".into()];
        assert_eq!(
            spec.expand(),
            Err(SpecError::UnknownBenchmark("vortex".into()))
        );
    }

    #[test]
    fn degenerate_axes_are_rejected() {
        let mut spec = CampaignSpec::paper(5, 1_000, DvfsModel::XScale);
        spec.seeds.clear();
        assert_eq!(spec.expand(), Err(SpecError::Empty("seeds")));

        let mut spec = CampaignSpec::paper(5, 1_000, DvfsModel::XScale);
        spec.thetas = [0.01, 1.5];
        assert_eq!(spec.expand(), Err(SpecError::BadTheta(1.5)));
    }

    #[test]
    fn policies_expand_canonicalized_into_every_cell() {
        let mut spec = CampaignSpec::paper(5, 1_000, DvfsModel::XScale);
        spec.benchmarks = vec!["gcc".into()];
        spec.policies = vec![
            "attack-decay:decay=0.01,attack=0.1".into(),
            "queue-pi".into(),
        ];
        let cells = spec.expand().expect("valid spec");
        assert_eq!(cells.len(), 1);
        assert_eq!(
            cells[0].policies,
            vec!["attack-decay:attack=0.1,decay=0.01", "queue-pi"]
        );
        assert_eq!(
            cells[0].label(),
            "gcc/s5/n1000/XScale+attack-decay:attack=0.1,decay=0.01+queue-pi"
        );
        let parsed: CellSpec = cells[0].label().parse().expect("label round-trips");
        assert_eq!(parsed, cells[0]);
    }

    #[test]
    fn bad_policies_are_rejected_at_expansion() {
        let mut spec = CampaignSpec::paper(5, 1_000, DvfsModel::XScale);
        spec.policies = vec!["thermal-cap".into()];
        assert!(matches!(spec.expand(), Err(SpecError::BadPolicy(_, _))));

        // Two spellings of the same canonical policy are one policy.
        spec.policies = vec!["queue-pi:kp=0.5".into(), "queue-pi:kp=0.50".into()];
        assert!(matches!(spec.expand(), Err(SpecError::BadPolicy(_, _))));
    }

    #[test]
    fn policy_free_specs_serialize_without_the_policies_key() {
        let spec = CampaignSpec::paper(5, 1_000, DvfsModel::XScale);
        let json = serde_json::to_string(&spec).expect("serializable");
        assert!(!json.contains("policies"));
        let back: CampaignSpec = serde_json::from_str(&json).expect("parses");
        assert!(back.policies.is_empty());

        let cell = &spec.expand().expect("valid spec")[0];
        let json = serde_json::to_string(cell).expect("serializable");
        assert!(!json.contains("policies"));
        let back: CellSpec = serde_json::from_str(&json).expect("parses");
        assert_eq!(&back, cell);

        // Governed specs round-trip through the new key.
        let mut governed = spec.clone();
        governed.policies = vec!["attack-decay".into()];
        let json = serde_json::to_string(&governed).expect("serializable");
        assert!(json.contains("\"policies\""));
        let back: CampaignSpec = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, governed);
    }

    #[test]
    fn model_names_parse_case_insensitively() {
        assert_eq!(parse_model("XScale"), Ok(DvfsModel::XScale));
        assert_eq!(parse_model("TRANSMETA"), Ok(DvfsModel::Transmeta));
        assert!(parse_model("longrun").is_err());
    }
}
