//! Campaign-level rollups: per-cell spans aggregated into one summary.
//!
//! A finished [`CampaignReport`] carries a wall-time
//! span for every cell; this module folds them into a [`CampaignRollup`] —
//! outcome counts, cache hit ratio, p50/p95/max cell latency, and a
//! breakdown of why any cells did not finish — that is persisted next to
//! the result cache (see [`ROLLUP_FILE`]) so `mcd-cli campaign report` can
//! print the last run's summary without re-running anything.
//!
//! The rollup is derived data: deleting it loses nothing but the summary.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::{CampaignReport, CellOutcome, SlackCacheStats};

/// Schema tag embedded in every rollup document. v5: adds the per-policy
/// breakdown for campaigns sweeping the online-governor axis (v4 added the
/// integrity layer — audit/divergence/quarantine attribution, cache
/// spot-check counters, and the checkpoint cadence; v3 the slack-profile
/// cache counters, v2 the per-benchmark breakdown and grid attribution);
/// older documents no longer load (the rollup is derived data — rerunning
/// the campaign regenerates it).
pub const ROLLUP_SCHEMA: &str = "mcd-campaign-rollup/5";

/// File name the rollup is persisted under, inside the cache directory.
pub const ROLLUP_FILE: &str = "campaign-rollup.json";

/// One reason cells did not produce a result, with its cell count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallCauseCount {
    /// Cause label: `"panic-deterministic"`, `"panic-transient"`,
    /// `"watchdog-stall"` or `"interrupted-skip"`.
    pub cause: String,
    /// Number of cells lost to this cause.
    pub cells: u64,
}

/// Outcome and latency breakdown for one benchmark of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkRollup {
    /// Benchmark name.
    pub benchmark: String,
    /// Cells of this benchmark (seeds × models).
    pub cells: u64,
    /// Cells computed this run.
    pub computed: u64,
    /// Cells served from the result cache.
    pub cached: u64,
    /// Cells that did not finish (failed, stalled, or skipped).
    pub unfinished: u64,
    /// Median per-cell wall time (nearest-rank, finished cells only).
    pub cell_seconds_p50: f64,
    /// 95th-percentile per-cell wall time (nearest-rank).
    pub cell_seconds_p95: f64,
    /// Slowest cell's wall time.
    pub cell_seconds_max: f64,
}

/// Outcome and latency breakdown for one online control policy of the
/// sweep. A cell carrying several policies counts toward each of them (the
/// governed rows all live inside that one cell).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRollup {
    /// Canonical policy spec (e.g. `attack-decay` or `queue-pi:kp=0.7`).
    pub policy: String,
    /// Cells that ran this policy.
    pub cells: u64,
    /// Cells computed this run.
    pub computed: u64,
    /// Cells served from the result cache.
    pub cached: u64,
    /// Cells that did not finish (failed, stalled, or skipped).
    pub unfinished: u64,
    /// Median per-cell wall time (nearest-rank, finished cells only).
    pub cell_seconds_p50: f64,
    /// 95th-percentile per-cell wall time (nearest-rank).
    pub cell_seconds_p95: f64,
    /// Slowest cell's wall time.
    pub cell_seconds_max: f64,
}

/// One grid worker's share of a distributed campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerRollup {
    /// Coordinator-assigned worker id (one per connection).
    pub worker: u64,
    /// Worker-reported name plus its socket peer address.
    pub peer: String,
    /// Worker environment fingerprint from the `/2` handshake (empty for
    /// `/1`-era records).
    pub fingerprint: String,
    /// Cells this worker returned results for.
    pub cells: u64,
    /// Cells requeued because this worker was evicted mid-assignment.
    pub reassignments: u64,
    /// Redundant audit assignments this worker executed.
    pub audits: u64,
    /// This worker's cells confirmed byte-identical by a second opinion.
    pub verified: u64,
    /// This worker's results contradicted by the local arbiter.
    pub divergences: u64,
    /// Whether this worker was quarantined for lying.
    pub quarantined: bool,
    /// Wire bytes received from this worker.
    pub wire_bytes_in: u64,
    /// Wire bytes sent to this worker.
    pub wire_bytes_out: u64,
    /// 95th-percentile assignment→result round trip (seconds).
    pub cell_rtt_seconds_p95: f64,
}

/// Grid-wide attribution for a distributed campaign: per-worker shares
/// plus campaign totals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridRollup {
    /// Per-worker shares, in worker-id order.
    pub workers: Vec<WorkerRollup>,
    /// Total cell reassignments caused by worker eviction.
    pub reassignments: u64,
    /// Total audit settlements (worker second opinions plus local
    /// arbiter fallbacks).
    pub audits: u64,
    /// Audits where the arbiter contradicted a worker's result.
    pub divergences: u64,
    /// Workers quarantined for lying.
    pub quarantined_workers: u64,
    /// Total wire bytes received from workers.
    pub wire_bytes_in: u64,
    /// Total wire bytes sent to workers.
    pub wire_bytes_out: u64,
    /// 95th-percentile assignment→result round trip across all cells.
    pub cell_rtt_seconds_p95: f64,
}

/// Aggregated view of one finished campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRollup {
    /// Always [`ROLLUP_SCHEMA`].
    pub schema: String,
    /// Total cells the spec expanded to.
    pub cells: u64,
    /// Cells computed this run.
    pub computed: u64,
    /// Cells served from the result cache.
    pub cached: u64,
    /// Cells that failed every attempt.
    pub failed: u64,
    /// Cells abandoned past the watchdog deadline.
    pub stalled: u64,
    /// Cells never claimed (interrupted campaign).
    pub skipped: u64,
    /// `cached / (cached + computed)`; 0 when nothing finished.
    pub cache_hit_ratio: f64,
    /// Total campaign wall time in seconds.
    pub wall_seconds: f64,
    /// Median per-cell wall time (nearest-rank, finished cells only).
    pub cell_seconds_p50: f64,
    /// 95th-percentile per-cell wall time (nearest-rank).
    pub cell_seconds_p95: f64,
    /// Slowest cell's wall time.
    pub cell_seconds_max: f64,
    /// Why cells did not finish, per cause (empty on a clean campaign).
    pub stall_causes: Vec<StallCauseCount>,
    /// Per-benchmark breakdown, in spec (figure) order.
    pub per_benchmark: Vec<BenchmarkRollup>,
    /// Per-policy breakdown for governed campaigns, in first-seen order
    /// (empty when no cell swept the online-governor axis).
    pub per_policy: Vec<PolicyRollup>,
    /// Slack-profile store lookups (distinct from result-cache probes: a
    /// slack hit skips the shaker pass inside a recomputed cell).
    pub slack_loads: u64,
    /// Slack-profile store lookups that returned a stored profile.
    pub slack_hits: u64,
    /// Slack profiles written to the store this run.
    pub slack_stores: u64,
    /// Result-cache entries re-verified by the startup spot check.
    pub spot_checked: u64,
    /// Spot-checked entries found corrupt (left for claim-time repair).
    pub spot_corrupt: u64,
    /// Checkpoint cadence: the manifest was persisted at least every this
    /// many completed cells (1 = every cell).
    pub checkpoint_every: u64,
    /// Distributed-execution attribution (`None` for local campaigns).
    pub grid: Option<GridRollup>,
}

/// Nearest-rank percentile of an ascending-sorted slice.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Ascending-sorted finished-cell spans (seconds) matching `keep`.
fn sorted_spans(report: &CampaignReport, keep: impl Fn(&crate::CellReport) -> bool) -> Vec<f64> {
    let mut spans: Vec<f64> = report
        .cells
        .iter()
        .filter(|c| c.outcome.result().is_some() && keep(c))
        .map(|c| c.elapsed.as_secs_f64())
        .collect();
    spans.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    spans
}

impl CampaignRollup {
    /// Folds a finished campaign's per-cell records into a rollup.
    pub fn from_report(report: &CampaignReport) -> CampaignRollup {
        let spans = sorted_spans(report, |_| true);

        let mut per_benchmark: Vec<BenchmarkRollup> = Vec::new();
        for cell in &report.cells {
            let name = cell.cell.benchmark.as_str();
            if per_benchmark.iter().any(|b| b.benchmark == name) {
                continue;
            }
            let bench_spans = sorted_spans(report, |c| c.cell.benchmark == name);
            let rows = || report.cells.iter().filter(|c| c.cell.benchmark == name);
            let computed = rows()
                .filter(|c| matches!(c.outcome, CellOutcome::Computed { .. }))
                .count() as u64;
            let cached = rows()
                .filter(|c| matches!(c.outcome, CellOutcome::Cached(_)))
                .count() as u64;
            let total = rows().count() as u64;
            per_benchmark.push(BenchmarkRollup {
                benchmark: name.to_string(),
                cells: total,
                computed,
                cached,
                unfinished: total - computed - cached,
                cell_seconds_p50: percentile(&bench_spans, 0.50),
                cell_seconds_p95: percentile(&bench_spans, 0.95),
                cell_seconds_max: bench_spans.last().copied().unwrap_or(0.0),
            });
        }

        let mut per_policy: Vec<PolicyRollup> = Vec::new();
        for cell in &report.cells {
            for policy in &cell.cell.policies {
                if per_policy.iter().any(|p| &p.policy == policy) {
                    continue;
                }
                let policy_spans = sorted_spans(report, |c| c.cell.policies.contains(policy));
                let rows = || {
                    report
                        .cells
                        .iter()
                        .filter(|c| c.cell.policies.contains(policy))
                };
                let computed = rows()
                    .filter(|c| matches!(c.outcome, CellOutcome::Computed { .. }))
                    .count() as u64;
                let cached = rows()
                    .filter(|c| matches!(c.outcome, CellOutcome::Cached(_)))
                    .count() as u64;
                let total = rows().count() as u64;
                per_policy.push(PolicyRollup {
                    policy: policy.clone(),
                    cells: total,
                    computed,
                    cached,
                    unfinished: total - computed - cached,
                    cell_seconds_p50: percentile(&policy_spans, 0.50),
                    cell_seconds_p95: percentile(&policy_spans, 0.95),
                    cell_seconds_max: policy_spans.last().copied().unwrap_or(0.0),
                });
            }
        }

        let mut causes: Vec<StallCauseCount> = Vec::new();
        let mut bump = |cause: &str| {
            match causes.iter_mut().find(|c| c.cause == cause) {
                Some(c) => c.cells += 1,
                None => causes.push(StallCauseCount {
                    cause: cause.to_string(),
                    cells: 1,
                }),
            };
        };
        for cell in &report.cells {
            match &cell.outcome {
                CellOutcome::Cached(_) | CellOutcome::Computed { .. } => {}
                CellOutcome::Failed(f) if f.deterministic => bump("panic-deterministic"),
                CellOutcome::Failed(_) => bump("panic-transient"),
                CellOutcome::Stalled { .. } => bump("watchdog-stall"),
                CellOutcome::Skipped => bump("interrupted-skip"),
            }
        }
        causes.sort_by(|a, b| a.cause.cmp(&b.cause));

        let cached = report.cached() as u64;
        let computed = report.computed() as u64;
        let finished = cached + computed;
        CampaignRollup {
            schema: ROLLUP_SCHEMA.to_string(),
            cells: report.cells.len() as u64,
            computed,
            cached,
            failed: report.failed() as u64,
            stalled: report.stalled() as u64,
            skipped: report.skipped() as u64,
            cache_hit_ratio: if finished > 0 {
                cached as f64 / finished as f64
            } else {
                0.0
            },
            wall_seconds: report.wall.as_secs_f64(),
            cell_seconds_p50: percentile(&spans, 0.50),
            cell_seconds_p95: percentile(&spans, 0.95),
            cell_seconds_max: spans.last().copied().unwrap_or(0.0),
            stall_causes: causes,
            per_benchmark,
            per_policy,
            slack_loads: 0,
            slack_hits: 0,
            slack_stores: 0,
            spot_checked: 0,
            spot_corrupt: 0,
            checkpoint_every: 1,
            grid: None,
        }
    }

    /// Attaches grid (distributed-execution) attribution to the rollup.
    pub fn with_grid(mut self, grid: GridRollup) -> CampaignRollup {
        self.grid = Some(grid);
        self
    }

    /// Attaches the integrity counters: startup cache spot-check results
    /// and the checkpoint cadence the campaign ran with.
    pub fn with_integrity(
        mut self,
        spot_checked: usize,
        spot_corrupt: usize,
        checkpoint_every: u64,
    ) -> CampaignRollup {
        self.spot_checked = spot_checked as u64;
        self.spot_corrupt = spot_corrupt as u64;
        self.checkpoint_every = checkpoint_every.max(1);
        self
    }

    /// Whether the campaign finished without losing cells or catching a
    /// lie: no failed or stalled cells, no audit divergences, no
    /// quarantined workers. `campaign report` exits nonzero when this is
    /// false.
    pub fn healthy(&self) -> bool {
        let grid_clean = self
            .grid
            .as_ref()
            .map(|g| g.divergences == 0 && g.quarantined_workers == 0)
            .unwrap_or(true);
        self.failed == 0 && self.stalled == 0 && grid_clean
    }

    /// Attaches the slack-profile store counters to the rollup.
    pub fn with_slack(mut self, stats: SlackCacheStats) -> CampaignRollup {
        self.slack_loads = stats.loads;
        self.slack_hits = stats.hits;
        self.slack_stores = stats.stores;
        self
    }

    /// Writes the rollup as pretty JSON at `path` (atomic: temp + rename).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).expect("JSON writing is infallible");
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, json)?;
        fs::rename(&tmp, path)
    }

    /// Loads a rollup previously written by [`CampaignRollup::save`].
    pub fn load(path: &Path) -> io::Result<CampaignRollup> {
        let json = fs::read_to_string(path)?;
        let rollup: CampaignRollup = serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        if rollup.schema != ROLLUP_SCHEMA {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown rollup schema {:?}", rollup.schema),
            ));
        }
        Ok(rollup)
    }

    /// Renders the rollup as the aligned table `mcd-cli campaign report`
    /// prints.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let row = |out: &mut String, k: &str, v: String| {
            out.push_str(&format!("{k:<22} {v}\n"));
        };
        row(&mut out, "cells", self.cells.to_string());
        row(
            &mut out,
            "finished",
            format!(
                "{} ({} computed, {} cached)",
                self.computed + self.cached,
                self.computed,
                self.cached
            ),
        );
        row(
            &mut out,
            "cache hit ratio",
            format!("{:.1}%", self.cache_hit_ratio * 100.0),
        );
        if self.slack_loads > 0 || self.slack_stores > 0 {
            row(
                &mut out,
                "slack profile cache",
                format!(
                    "{} hits / {} lookups, {} stored",
                    self.slack_hits, self.slack_loads, self.slack_stores
                ),
            );
        }
        row(&mut out, "wall", format!("{:.3} s", self.wall_seconds));
        row(
            &mut out,
            "cell latency p50",
            format!("{:.3} s", self.cell_seconds_p50),
        );
        row(
            &mut out,
            "cell latency p95",
            format!("{:.3} s", self.cell_seconds_p95),
        );
        row(
            &mut out,
            "cell latency max",
            format!("{:.3} s", self.cell_seconds_max),
        );
        if self.stall_causes.is_empty() {
            row(&mut out, "unfinished cells", "none".to_string());
        } else {
            for c in &self.stall_causes {
                row(&mut out, &format!("lost: {}", c.cause), c.cells.to_string());
            }
        }
        if self.spot_checked > 0 {
            row(
                &mut out,
                "cache spot check",
                format!(
                    "{} checked, {} corrupt",
                    self.spot_checked, self.spot_corrupt
                ),
            );
        }
        row(
            &mut out,
            "checkpoint cadence",
            format!("every {} cells", self.checkpoint_every),
        );
        if !self.per_benchmark.is_empty() {
            out.push_str("\nper-benchmark\n");
            out.push_str(&format!(
                "  {:<12} {:>5} {:>8} {:>6} {:>10} {:>9} {:>9} {:>9}\n",
                "benchmark", "cells", "computed", "cached", "unfinished", "p50 s", "p95 s", "max s"
            ));
            for b in &self.per_benchmark {
                out.push_str(&format!(
                    "  {:<12} {:>5} {:>8} {:>6} {:>10} {:>9.3} {:>9.3} {:>9.3}\n",
                    b.benchmark,
                    b.cells,
                    b.computed,
                    b.cached,
                    b.unfinished,
                    b.cell_seconds_p50,
                    b.cell_seconds_p95,
                    b.cell_seconds_max,
                ));
            }
        }
        if !self.per_policy.is_empty() {
            out.push_str("\nper-policy\n");
            out.push_str(&format!(
                "  {:<36} {:>5} {:>8} {:>6} {:>10} {:>9} {:>9} {:>9}\n",
                "policy", "cells", "computed", "cached", "unfinished", "p50 s", "p95 s", "max s"
            ));
            for p in &self.per_policy {
                out.push_str(&format!(
                    "  {:<36} {:>5} {:>8} {:>6} {:>10} {:>9.3} {:>9.3} {:>9.3}\n",
                    p.policy,
                    p.cells,
                    p.computed,
                    p.cached,
                    p.unfinished,
                    p.cell_seconds_p50,
                    p.cell_seconds_p95,
                    p.cell_seconds_max,
                ));
            }
        }
        if let Some(grid) = &self.grid {
            out.push_str("\ngrid\n");
            out.push_str(&format!(
                "  {:<24} {:>5} {:>10} {:>6} {:>8} {:>8} {:>10} {:>10} {:>9}\n",
                "worker",
                "cells",
                "reassigned",
                "audits",
                "verified",
                "diverged",
                "bytes in",
                "bytes out",
                "rtt p95"
            ));
            for w in &grid.workers {
                out.push_str(&format!(
                    "  {:<24} {:>5} {:>10} {:>6} {:>8} {:>8} {:>10} {:>10} {:>8.3}s{}\n",
                    format!("#{} {}", w.worker, w.peer),
                    w.cells,
                    w.reassignments,
                    w.audits,
                    w.verified,
                    w.divergences,
                    w.wire_bytes_in,
                    w.wire_bytes_out,
                    w.cell_rtt_seconds_p95,
                    if w.quarantined { "  QUARANTINED" } else { "" },
                ));
            }
            out.push_str(&format!(
                "  {:<24} {:>5} {:>10} {:>6} {:>8} {:>8} {:>10} {:>10} {:>8.3}s\n",
                "total",
                grid.workers.iter().map(|w| w.cells).sum::<u64>(),
                grid.reassignments,
                grid.audits,
                grid.workers.iter().map(|w| w.verified).sum::<u64>(),
                grid.divergences,
                grid.wire_bytes_in,
                grid.wire_bytes_out,
                grid.cell_rtt_seconds_p95,
            ));
            if grid.quarantined_workers > 0 {
                out.push_str(&format!(
                    "  {} worker(s) quarantined for audit divergence\n",
                    grid.quarantined_workers
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::CellFailure;
    use crate::{CacheKey, CellPhases, CellReport, CellSpec};
    use mcd_time::DvfsModel;
    use std::time::Duration;

    fn cell(i: u64) -> CellSpec {
        CellSpec {
            benchmark: "adpcm".into(),
            seed: i,
            instructions: 1_000,
            model: DvfsModel::XScale,
            thetas: [0.01, 0.05],
            policies: Vec::new(),
        }
    }

    fn report_with(outcomes: Vec<(CellOutcome, u64)>) -> CampaignReport {
        let cells = outcomes
            .into_iter()
            .enumerate()
            .map(|(i, (outcome, millis))| CellReport {
                cell: cell(i as u64),
                key: CacheKey::of(&cell(i as u64)),
                outcome,
                elapsed: Duration::from_millis(millis),
                phases: CellPhases::default(),
            })
            .collect();
        CampaignReport {
            cells,
            wall: Duration::from_millis(500),
            interrupted: false,
        }
    }

    fn computed() -> CellOutcome {
        CellOutcome::Computed {
            result: cell(0).run(),
            attempts: 1,
        }
    }

    #[test]
    fn rollup_aggregates_latency_and_hit_ratio() {
        let cached = CellOutcome::Cached(cell(0).run());
        let r = report_with(vec![
            (computed(), 100),
            (computed(), 300),
            (cached.clone(), 10),
            (cached, 20),
        ]);
        let roll = CampaignRollup::from_report(&r);
        assert_eq!(roll.cells, 4);
        assert_eq!(roll.computed, 2);
        assert_eq!(roll.cached, 2);
        assert!((roll.cache_hit_ratio - 0.5).abs() < 1e-12);
        // Sorted spans: 10, 20, 100, 300 ms. Nearest-rank p50 = 2nd = 20 ms.
        assert!((roll.cell_seconds_p50 - 0.020).abs() < 1e-9);
        assert!((roll.cell_seconds_p95 - 0.300).abs() < 1e-9);
        assert!((roll.cell_seconds_max - 0.300).abs() < 1e-9);
        assert!(roll.stall_causes.is_empty());
    }

    #[test]
    fn rollup_breaks_down_unfinished_cells_by_cause() {
        let r = report_with(vec![
            (computed(), 50),
            (
                CellOutcome::Failed(CellFailure {
                    attempts: 2,
                    message: "boom".into(),
                    deterministic: true,
                }),
                5,
            ),
            (
                CellOutcome::Stalled {
                    waited: Duration::from_secs(1),
                },
                1_000,
            ),
            (CellOutcome::Skipped, 0),
            (CellOutcome::Skipped, 0),
        ]);
        let roll = CampaignRollup::from_report(&r);
        assert_eq!(roll.failed, 1);
        assert_eq!(roll.stalled, 1);
        assert_eq!(roll.skipped, 2);
        let by_cause: Vec<(&str, u64)> = roll
            .stall_causes
            .iter()
            .map(|c| (c.cause.as_str(), c.cells))
            .collect();
        assert_eq!(
            by_cause,
            vec![
                ("interrupted-skip", 2),
                ("panic-deterministic", 1),
                ("watchdog-stall", 1),
            ]
        );
    }

    #[test]
    fn rollup_breaks_down_per_benchmark() {
        let cached = CellOutcome::Cached(cell(0).run());
        let mut r = report_with(vec![
            (computed(), 100),
            (computed(), 300),
            (cached, 10),
            (CellOutcome::Skipped, 0),
        ]);
        // Rename the back half of the sweep to a second benchmark.
        for c in r.cells.iter_mut().skip(2) {
            c.cell.benchmark = "gsm".into();
        }
        let roll = CampaignRollup::from_report(&r);
        assert_eq!(roll.per_benchmark.len(), 2);
        let adpcm = &roll.per_benchmark[0];
        assert_eq!(adpcm.benchmark, "adpcm");
        assert_eq!((adpcm.cells, adpcm.computed, adpcm.cached), (2, 2, 0));
        assert_eq!(adpcm.unfinished, 0);
        assert!((adpcm.cell_seconds_max - 0.300).abs() < 1e-9);
        let gsm = &roll.per_benchmark[1];
        assert_eq!(gsm.benchmark, "gsm");
        assert_eq!((gsm.cells, gsm.computed, gsm.cached), (2, 0, 1));
        assert_eq!(gsm.unfinished, 1);
        assert!((gsm.cell_seconds_max - 0.010).abs() < 1e-9);
        let table = roll.table();
        assert!(table.contains("per-benchmark"));
        assert!(table.contains("adpcm"));
        assert!(table.contains("gsm"));
    }

    #[test]
    fn rollup_breaks_down_per_policy() {
        let cached = CellOutcome::Cached(cell(0).run());
        let mut r = report_with(vec![
            (computed(), 100),
            (computed(), 300),
            (cached, 10),
            (CellOutcome::Skipped, 0),
        ]);
        // Two cells run attack-decay, one of them also runs queue-pi; the
        // skipped cell is governed too.
        r.cells[0].cell.policies = vec!["attack-decay".into()];
        r.cells[1].cell.policies = vec!["attack-decay".into(), "queue-pi".into()];
        r.cells[3].cell.policies = vec!["queue-pi".into()];
        let roll = CampaignRollup::from_report(&r);
        assert_eq!(roll.per_policy.len(), 2);
        let ad = &roll.per_policy[0];
        assert_eq!(ad.policy, "attack-decay");
        assert_eq!(
            (ad.cells, ad.computed, ad.cached, ad.unfinished),
            (2, 2, 0, 0)
        );
        assert!((ad.cell_seconds_p50 - 0.100).abs() < 1e-9);
        assert!((ad.cell_seconds_max - 0.300).abs() < 1e-9);
        let pi = &roll.per_policy[1];
        assert_eq!(pi.policy, "queue-pi");
        assert_eq!(
            (pi.cells, pi.computed, pi.cached, pi.unfinished),
            (2, 1, 0, 1)
        );
        assert!((pi.cell_seconds_max - 0.300).abs() < 1e-9);
        let table = roll.table();
        assert!(table.contains("per-policy"));
        assert!(table.contains("attack-decay"));
        assert!(table.contains("queue-pi"));
        // A policy-free campaign keeps the section out of the report.
        let quiet = CampaignRollup::from_report(&report_with(vec![(computed(), 10)]));
        assert!(quiet.per_policy.is_empty());
        assert!(!quiet.table().contains("per-policy"));
    }

    #[test]
    fn grid_attribution_round_trips_and_renders() {
        let r = report_with(vec![(computed(), 100)]);
        let roll = CampaignRollup::from_report(&r).with_grid(GridRollup {
            workers: vec![WorkerRollup {
                worker: 1,
                peer: "w1@127.0.0.1:9".into(),
                fingerprint: "0.1.0 x86_64-linux debug".into(),
                cells: 1,
                reassignments: 2,
                audits: 1,
                verified: 1,
                divergences: 0,
                quarantined: false,
                wire_bytes_in: 512,
                wire_bytes_out: 1024,
                cell_rtt_seconds_p95: 0.25,
            }],
            reassignments: 2,
            audits: 1,
            divergences: 0,
            quarantined_workers: 0,
            wire_bytes_in: 512,
            wire_bytes_out: 1024,
            cell_rtt_seconds_p95: 0.25,
        });
        let dir = std::env::temp_dir().join(format!("mcd-rollup-grid-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(ROLLUP_FILE);
        roll.save(&path).expect("save");
        let back = CampaignRollup::load(&path).expect("load");
        assert_eq!(back, roll);
        let _ = std::fs::remove_dir_all(&dir);
        let table = roll.table();
        assert!(table.contains("grid"));
        assert!(table.contains("#1 w1@127.0.0.1:9"));
    }

    #[test]
    fn slack_counters_round_trip_and_render() {
        let r = report_with(vec![(computed(), 100)]);
        let roll = CampaignRollup::from_report(&r).with_slack(SlackCacheStats {
            loads: 3,
            hits: 2,
            stores: 1,
        });
        assert_eq!(
            (roll.slack_loads, roll.slack_hits, roll.slack_stores),
            (3, 2, 1)
        );
        let table = roll.table();
        assert!(table.contains("slack profile cache"));
        assert!(table.contains("2 hits / 3 lookups, 1 stored"));
        // A campaign that never touched the store stays silent.
        let quiet = CampaignRollup::from_report(&r);
        assert!(!quiet.table().contains("slack profile cache"));
    }

    #[test]
    fn health_tracks_failures_and_divergences() {
        let clean = CampaignRollup::from_report(&report_with(vec![(computed(), 10)]));
        assert!(clean.healthy());
        let failed = CampaignRollup::from_report(&report_with(vec![(
            CellOutcome::Failed(CellFailure {
                attempts: 1,
                message: "boom".into(),
                deterministic: true,
            }),
            1,
        )]));
        assert!(!failed.healthy());
        let mut grid = GridRollup {
            workers: vec![],
            reassignments: 0,
            audits: 3,
            divergences: 0,
            quarantined_workers: 0,
            wire_bytes_in: 0,
            wire_bytes_out: 0,
            cell_rtt_seconds_p95: 0.0,
        };
        assert!(clean.clone().with_grid(grid.clone()).healthy());
        grid.divergences = 1;
        grid.quarantined_workers = 1;
        let lied = clean.clone().with_grid(grid);
        assert!(!lied.healthy());
    }

    #[test]
    fn integrity_counters_round_trip_and_render() {
        let r = report_with(vec![(computed(), 100)]);
        let roll = CampaignRollup::from_report(&r).with_integrity(8, 1, 5);
        assert_eq!((roll.spot_checked, roll.spot_corrupt), (8, 1));
        assert_eq!(roll.checkpoint_every, 5);
        let table = roll.table();
        assert!(table.contains("8 checked, 1 corrupt"));
        assert!(table.contains("every 5 cells"));
        // A zero cadence is clamped to the per-cell floor.
        assert_eq!(
            CampaignRollup::from_report(&r)
                .with_integrity(0, 0, 0)
                .checkpoint_every,
            1
        );
    }

    #[test]
    fn rollup_round_trips_through_disk() {
        let r = report_with(vec![(computed(), 100)]);
        let roll = CampaignRollup::from_report(&r);
        let dir = std::env::temp_dir().join(format!("mcd-rollup-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(ROLLUP_FILE);
        roll.save(&path).expect("save");
        let back = CampaignRollup::load(&path).expect("load");
        assert_eq!(back, roll);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_report_rolls_up_to_zeros() {
        let roll = CampaignRollup::from_report(&report_with(vec![]));
        assert_eq!(roll.cells, 0);
        assert_eq!(roll.cache_hit_ratio, 0.0);
        assert_eq!(roll.cell_seconds_p50, 0.0);
        assert!(roll.table().contains("none"));
    }
}
