//! Cross-process slack-profile store.
//!
//! The shaker pass is the most expensive piece of the off-line tool that
//! is *independent of the dilation target*: a [`mcd_offline::SlackProfile`]
//! depends only on the traced run and the shaker configuration, never on
//! θ, the DVFS model's timing constants, or how many analysis threads
//! computed it. That makes it safe to share across processes: a campaign,
//! the serial driver and a grid worker all derive byte-identical profiles
//! from the same key material, so serving a stored profile is
//! results-neutral by construction.
//!
//! The store is content-addressed the same way the result cache is: the
//! file name is the SHA-256 of the key material
//! ([`mcd_core`]'s `SlackStore` keys come from
//! `mcd_offline::slack_cache_key_material`, which embeds a format tag, the
//! benchmark identity and the analysis-relevant configuration subset), and
//! the file body carries its own payload digest so tampering or torn
//! writes degrade to a miss, never to a wrong profile. Writes go through a
//! temp file + atomic rename, so concurrent writers and crashes leave
//! either the old bytes or the new bytes, both of which decode to the same
//! profile.

use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use mcd_core::SlackStore;

use crate::cache::{sha256_hex, CacheKey, ScrubFinding, ScrubReport, QUARANTINE_DIR};
use crate::error::CorruptKind;

/// Subdirectory of the result-cache directory that holds slack profiles.
pub const SLACK_CACHE_DIR: &str = "slack";

/// Hit/miss counters of a [`SlackDiskCache`], for rollups and telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlackCacheStats {
    /// Lookups performed.
    pub loads: u64,
    /// Lookups that returned a valid stored profile.
    pub hits: u64,
    /// Profiles written.
    pub stores: u64,
}

/// A content-addressed, tamper-evident, atomic on-disk slack-profile
/// store implementing [`mcd_core::SlackStore`].
#[derive(Debug)]
pub struct SlackDiskCache {
    dir: PathBuf,
    loads: AtomicU64,
    hits: AtomicU64,
    stores: AtomicU64,
}

impl SlackDiskCache {
    /// Opens (creating if needed) a store rooted at `dir`, sweeping any
    /// stale `<key>.tmp.<pid>` files a crashed writer left behind — the
    /// same crash-dropping rule the result cache applies to its own
    /// directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SlackDiskCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let store = SlackDiskCache {
            dir,
            loads: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        };
        store.sweep_stale_tmp()?;
        Ok(store)
    }

    /// The store's directory.
    pub fn dir(&self) -> &PathBuf {
        &self.dir
    }

    /// The store's quarantine directory (not created until first used).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    /// Removes leftover `<key>.tmp.<pid>` temp files from interrupted
    /// stores, returning how many were swept. A live writer whose temp is
    /// swept from under it only loses that one best-effort store — its
    /// rename fails and the profile is recomputed elsewhere.
    pub fn sweep_stale_tmp(&self) -> io::Result<usize> {
        let mut swept = 0;
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_file() && name.contains(".tmp.") {
                fs::remove_file(&path)?;
                swept += 1;
            }
        }
        Ok(swept)
    }

    /// Re-validates every stored profile's digest framing. With
    /// `quarantine` true (a scrub), bad entries move to
    /// `slack/quarantine/` as evidence; false (a verify) reports without
    /// touching the bytes.
    pub fn scrub(&self, quarantine: bool) -> io::Result<ScrubReport> {
        let mut keys: Vec<String> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if !path.is_file() {
                continue;
            }
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(key) = name.strip_suffix(".json").and_then(CacheKey::from_hex) {
                keys.push(key.hex().to_string());
            }
        }
        keys.sort();
        let mut report = ScrubReport::default();
        for key in keys {
            report.checked += 1;
            let path = self.dir.join(format!("{key}.json"));
            let kind = match fs::read_to_string(&path) {
                Ok(text) => match Self::decode(&text) {
                    Some(_) => continue,
                    // An unframed file and a framed-but-mismatched file are
                    // different damage: the latter proves the payload
                    // changed after it was written.
                    None if text.split_once('\n').is_none() => CorruptKind::Malformed,
                    None => CorruptKind::DigestMismatch,
                },
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                Err(_) => CorruptKind::Unreadable,
            };
            let evidence = if quarantine {
                let qdir = self.quarantine_dir();
                fs::create_dir_all(&qdir)?;
                let dest = qdir.join(format!("{key}.json"));
                fs::rename(&path, &dest)?;
                Some(dest)
            } else {
                None
            };
            report.findings.push(ScrubFinding {
                key,
                kind,
                evidence,
            });
        }
        Ok(report)
    }

    /// Counters since this handle was opened.
    pub fn stats(&self) -> SlackCacheStats {
        SlackCacheStats {
            loads: self.loads.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
        }
    }

    fn path_for(&self, key_material: &str) -> PathBuf {
        self.dir
            .join(format!("{}.json", sha256_hex(key_material.as_bytes())))
    }

    /// Encodes `payload` with its own digest line so corruption is
    /// detectable without parsing JSON.
    fn encode(payload: &str) -> String {
        format!("{}\n{payload}", sha256_hex(payload.as_bytes()))
    }

    /// Decodes a stored file, returning the payload only if its digest
    /// line matches the bytes that follow it.
    fn decode(text: &str) -> Option<&str> {
        let (digest, payload) = text.split_once('\n')?;
        if digest.len() != 64 || digest != sha256_hex(payload.as_bytes()) {
            return None;
        }
        Some(payload)
    }
}

impl SlackStore for SlackDiskCache {
    fn load(&self, key_material: &str) -> Option<String> {
        self.loads.fetch_add(1, Ordering::Relaxed);
        let text = fs::read_to_string(self.path_for(key_material)).ok()?;
        let payload = Self::decode(&text)?;
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(payload.to_string())
    }

    fn store(&self, key_material: &str, payload: &str) {
        // Atomic publish: write the digest-framed body to a temp file in
        // the same directory, then rename over the final name. Best-effort
        // throughout — a failed store only costs recomputation elsewhere.
        let path = self.path_for(key_material);
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if fs::write(&tmp, Self::encode(payload)).is_ok() {
            if fs::rename(&tmp, &path).is_ok() {
                self.stores.fetch_add(1, Ordering::Relaxed);
            } else {
                let _ = fs::remove_file(&tmp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> (SlackDiskCache, PathBuf) {
        let dir = std::env::temp_dir().join(format!("mcd-slack-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        (SlackDiskCache::open(&dir).expect("create store"), dir)
    }

    #[test]
    fn round_trips_a_payload_and_counts() {
        let (store, dir) = scratch("roundtrip");
        assert_eq!(store.load("key-a"), None, "empty store misses");
        store.store("key-a", "{\"profile\":1}");
        assert_eq!(store.load("key-a"), Some("{\"profile\":1}".to_string()));
        assert_eq!(store.load("key-b"), None, "distinct keys are distinct");
        assert_eq!(
            store.stats(),
            SlackCacheStats {
                loads: 3,
                hits: 1,
                stores: 1
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn payloads_with_newlines_survive_framing() {
        let (store, dir) = scratch("newlines");
        let payload = "line one\nline two\n";
        store.store("key", payload);
        assert_eq!(store.load("key").as_deref(), Some(payload));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_entry_degrades_to_a_miss() {
        let (store, dir) = scratch("tamper");
        store.store("key", "{\"honest\":true}");
        let path = store.path_for("key");
        let mut text = fs::read_to_string(&path).unwrap();
        text = text.replace("true", "flip");
        fs::write(&path, text).unwrap();
        assert_eq!(store.load("key"), None, "digest mismatch must not serve");

        fs::write(&path, "no digest line at all").unwrap();
        assert_eq!(store.load("key"), None, "unframed file must not serve");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let (store, dir) = scratch("sweep");
        store.store("key", "{\"keep\":1}");
        let stale = dir.join(format!("{}.tmp.99999", "ab".repeat(32)));
        fs::write(&stale, "half-written").unwrap();
        let reopened = SlackDiskCache::open(&dir).expect("open sweeps");
        assert!(!stale.exists(), "stale tmp swept on open");
        assert_eq!(reopened.load("key"), Some("{\"keep\":1}".to_string()));
        assert_eq!(reopened.sweep_stale_tmp().unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_quarantines_tampered_profiles() {
        let (store, dir) = scratch("scrub");
        store.store("good", "{\"profile\":1}");
        store.store("bad", "{\"profile\":2}");
        store.store("unframed", "{\"profile\":3}");
        let bad = store.path_for("bad");
        let text = fs::read_to_string(&bad).unwrap().replace('2', "7");
        fs::write(&bad, text).unwrap();
        fs::write(store.path_for("unframed"), "no digest line").unwrap();

        let verify = store.scrub(false).expect("verify");
        assert_eq!(verify.checked, 3);
        assert_eq!(verify.findings.len(), 2);
        assert!(verify.findings.iter().all(|f| f.evidence.is_none()));
        assert!(bad.exists(), "verify leaves the bytes");

        let scrub = store.scrub(true).expect("scrub");
        assert_eq!(scrub.findings.len(), 2);
        let kinds: Vec<CorruptKind> = scrub.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&CorruptKind::DigestMismatch));
        assert!(kinds.contains(&CorruptKind::Malformed));
        for f in &scrub.findings {
            assert!(f
                .evidence
                .as_ref()
                .unwrap()
                .starts_with(store.quarantine_dir()));
        }
        assert!(!bad.exists(), "tampered profile moved aside");
        assert_eq!(store.load("good"), Some("{\"profile\":1}".to_string()));
        assert_eq!(store.load("bad"), None);
        assert!(store.scrub(true).expect("rescrub").clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn second_handle_sees_first_handles_entries() {
        let (store, dir) = scratch("reopen");
        store.store("key", "{\"x\":2}");
        let reopened = SlackDiskCache::open(&dir).unwrap();
        assert_eq!(reopened.load("key"), Some("{\"x\":2}".to_string()));
        assert_eq!(reopened.stats().hits, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
