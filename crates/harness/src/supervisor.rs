//! Supervised execution of one campaign cell.
//!
//! The supervisor is the layer between the worker pool and the simulator:
//! it owns everything that can go wrong around a cell and turns each
//! failure mode into a structured, recoverable outcome.
//!
//! - **Cache probe with quarantine**: a corrupt entry (torn write, bit
//!   rot, tampering — anything [`ResultCache::probe`] flags) is moved to
//!   `quarantine/` as evidence and the cell is recomputed. A corrupt
//!   entry is *never* served as a hit.
//! - **Watchdog deadline**: with a deadline set, each attempt runs on a
//!   monitored thread; if it does not finish in time the supervisor
//!   abandons it and reports [`CellOutcome::Stalled`] — the worker slot
//!   survives a hung simulator and moves on to the next cell.
//! - **Retry with deterministic fail-fast**: panics are retried per
//!   [`RetryPolicy`]; byte-identical consecutive payloads stop early
//!   ([`crate::retry`]).
//! - **Backoff on store failures**: transient cache IO errors are retried
//!   with exponential backoff; a store that still fails only costs a
//!   recomputation next run (the in-memory result is still good).
//!
//! Chaos faults from a [`FaultPlan`] are injected at exactly these seams,
//! so the chaos suite exercises the same code paths real failures take.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use mcd_core::{BenchmarkResults, RunOptions};

use crate::cache::{CacheKey, CacheProbe, ResultCache};
use crate::chaos::FaultPlan;
use crate::retry::{payload_text, CellFailure, RetryPolicy};
use crate::spec::CellSpec;
use crate::telemetry::{CellSource, Telemetry};
use crate::{CellOutcome, CellPhases};

/// Exponential backoff for transient IO failures (distinct from the
/// deterministic-panic retry budget: IO errors are environmental and
/// waiting genuinely helps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Delay before the second attempt.
    pub base: Duration,
    /// Multiplier applied per further attempt.
    pub multiplier: u32,
    /// Upper bound on any single delay.
    pub cap: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            multiplier: 4,
            cap: Duration::from_secs(2),
        }
    }
}

impl BackoffPolicy {
    /// The delay after failed attempt `attempt` (1-based):
    /// `base · multiplier^(attempt-1)`, capped.
    pub fn delay(&self, attempt: u32) -> Duration {
        let factor = self.multiplier.saturating_pow(attempt.saturating_sub(1));
        self.base.saturating_mul(factor).min(self.cap)
    }
}

/// Everything the supervisor needs to run one cell.
pub struct CellContext<'a> {
    /// Cell index in spec-expansion order.
    pub index: usize,
    /// The cell to run.
    pub cell: &'a CellSpec,
    /// Its content-addressed key.
    pub key: &'a CacheKey,
    /// The result cache.
    pub cache: &'a ResultCache,
    /// The telemetry sink.
    pub telemetry: &'a Telemetry,
    /// The fault plan ([`FaultPlan::none`] outside chaos tests).
    pub chaos: &'a Arc<FaultPlan>,
    /// Panic retry policy.
    pub retry: RetryPolicy,
    /// IO backoff policy.
    pub backoff: BackoffPolicy,
    /// Per-attempt watchdog deadline (`None` = wait forever, no monitor
    /// thread).
    pub deadline: Option<Duration>,
    /// Results-neutral execution options (analysis fan-out, slack store).
    pub options: &'a RunOptions,
    /// Campaign interrupt flag (raised by SIGINT or an injected fault).
    pub stop: &'a Arc<AtomicBool>,
}

/// The cache-free slice of a cell's context: everything needed to run
/// attempts, but nothing about where the result is stored. Grid workers
/// compute cells through this (the result cache lives on the coordinator);
/// [`run_cell`] wraps it with the probe/quarantine/store machinery.
pub struct ComputeContext<'a> {
    /// Cell index in spec-expansion order.
    pub index: usize,
    /// The cell to run.
    pub cell: &'a CellSpec,
    /// The telemetry sink.
    pub telemetry: &'a Telemetry,
    /// The fault plan ([`FaultPlan::none`] outside chaos tests).
    pub chaos: &'a Arc<FaultPlan>,
    /// Panic retry policy.
    pub retry: RetryPolicy,
    /// Per-attempt watchdog deadline (`None` = wait forever, no monitor
    /// thread).
    pub deadline: Option<Duration>,
    /// Results-neutral execution options (analysis fan-out, slack store).
    pub options: &'a RunOptions,
}

/// One attempt's fate.
// Constructed once per attempt; the Ok/Panicked size skew is irrelevant.
#[allow(clippy::large_enum_variant)]
enum Attempt {
    Ok(BenchmarkResults),
    Panicked(String),
    Stalled(Duration),
}

/// Runs one cell under full supervision, returning its outcome, wall
/// time (cache probe included), and the computed attempt's pipeline-phase
/// breakdown (zero for cached, failed and stalled cells).
pub fn run_cell(ctx: &CellContext<'_>) -> (CellOutcome, Duration, CellPhases) {
    let cell_start = Instant::now();
    ctx.telemetry.cell_started(ctx.index, ctx.cell);

    match ctx.cache.probe(ctx.key) {
        CacheProbe::Hit(result) => {
            let elapsed = cell_start.elapsed();
            ctx.telemetry
                .cell_finished(ctx.index, CellSource::Cached, elapsed);
            return (CellOutcome::Cached(result), elapsed, CellPhases::default());
        }
        CacheProbe::Corrupt(kind) => {
            // Preserve the evidence, free the slot, recompute. If the move
            // itself fails the recomputation's store still overwrites the
            // bad entry atomically.
            let _ = ctx.cache.quarantine(ctx.key);
            ctx.telemetry
                .cache_quarantined(ctx.index, ctx.key.hex(), kind);
        }
        CacheProbe::Miss => {}
    }

    let compute = ComputeContext {
        index: ctx.index,
        cell: ctx.cell,
        telemetry: ctx.telemetry,
        chaos: ctx.chaos,
        retry: ctx.retry,
        deadline: ctx.deadline,
        options: ctx.options,
    };
    let (outcome, phases) = compute_cell(&compute);
    if let CellOutcome::Computed { result, .. } = &outcome {
        store_with_backoff(ctx, result);
    }
    if matches!(outcome, CellOutcome::Computed { .. }) && ctx.chaos.record_computed() {
        // An injected interrupt takes the same path a SIGINT does.
        ctx.stop.store(true, Ordering::SeqCst);
    }
    let elapsed = cell_start.elapsed();
    match &outcome {
        CellOutcome::Computed { attempts, .. } => {
            ctx.telemetry.cell_finished(
                ctx.index,
                CellSource::Computed {
                    attempts: *attempts,
                },
                elapsed,
            );
        }
        CellOutcome::Failed(f) => {
            ctx.telemetry
                .cell_failed(ctx.index, f.attempts, &f.message, f.deterministic);
        }
        CellOutcome::Stalled { waited } => {
            ctx.telemetry.cell_stalled(ctx.index, *waited);
            // The abandoned attempt thread may wedge the process for good;
            // make sure the stall's narration reaches the disk now.
            ctx.telemetry.sync();
        }
        CellOutcome::Cached(_) | CellOutcome::Skipped => {}
    }
    (outcome, elapsed, phases)
}

/// The retry loop over monitored attempts: computes the cell, nothing
/// else. Returns only [`CellOutcome::Computed`], [`CellOutcome::Failed`]
/// or [`CellOutcome::Stalled`]; storing the result (and the surrounding
/// started/finished telemetry) is the caller's job. The returned
/// [`CellPhases`] cover the final attempt only — a retried attempt's
/// partial spans are discarded so phases are never double-counted.
pub fn compute_cell(ctx: &ComputeContext<'_>) -> (CellOutcome, CellPhases) {
    let max_attempts = ctx.retry.max_attempts.max(1);
    let mut previous: Option<String> = None;
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let mut phases = CellPhases::default();
        match execute_attempt(ctx, attempt, &mut phases) {
            Attempt::Ok(result) => {
                return (
                    CellOutcome::Computed {
                        result,
                        attempts: attempt,
                    },
                    phases,
                );
            }
            Attempt::Stalled(waited) => {
                // A stall is not retried: the watchdog already waited the
                // full deadline, and a deterministic simulator would stall
                // again. Resume recomputes it later.
                return (CellOutcome::Stalled { waited }, CellPhases::default());
            }
            Attempt::Panicked(message) => {
                let repeats = previous.as_deref() == Some(message.as_str());
                if (repeats && ctx.retry.fail_fast_deterministic) || attempt >= max_attempts {
                    return (
                        CellOutcome::Failed(CellFailure {
                            attempts: attempt,
                            message,
                            deterministic: repeats,
                        }),
                        CellPhases::default(),
                    );
                }
                ctx.telemetry.cell_retry(ctx.index, attempt, &message);
                previous = Some(message);
            }
        }
    }
}

/// Runs the cell body once: inline when no deadline is set, else on a
/// watchdog-monitored thread that can be abandoned. Phase spans observed
/// during the attempt are accumulated into `phases` (on the watchdog path,
/// whatever arrived before an abandonment is kept) and forwarded to
/// telemetry either way.
fn execute_attempt(ctx: &ComputeContext<'_>, attempt: u32, phases: &mut CellPhases) -> Attempt {
    let Some(deadline) = ctx.deadline else {
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cell_body(
                ctx.cell,
                ctx.chaos,
                ctx.index,
                attempt,
                ctx.options,
                &mut |stage, span| {
                    phases.record(stage, span);
                    ctx.telemetry.cell_stage(ctx.index, stage, span);
                },
            )
        }));
        return match out {
            Ok(result) => Attempt::Ok(result),
            Err(payload) => Attempt::Panicked(payload_text(payload.as_ref())),
        };
    };

    // One Done message per attempt; the Stage/Done size skew is irrelevant.
    #[allow(clippy::large_enum_variant)]
    enum Msg {
        Stage(String, Duration),
        Done(Result<BenchmarkResults, String>),
    }

    let (tx, rx) = mpsc::channel::<Msg>();
    let cell = ctx.cell.clone();
    let chaos = Arc::clone(ctx.chaos);
    let options = ctx.options.clone();
    let index = ctx.index;
    let spawned = thread::Builder::new()
        .name(format!("mcd-cell-{index}-a{attempt}"))
        .spawn(move || {
            let stage_tx = tx.clone();
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cell_body(
                    &cell,
                    &chaos,
                    index,
                    attempt,
                    &options,
                    &mut |stage, span| {
                        // The supervisor may have abandoned us; a closed
                        // channel just means nobody is listening any more.
                        let _ = stage_tx.send(Msg::Stage(stage.to_string(), span));
                    },
                )
            }));
            let _ = tx.send(Msg::Done(
                out.map_err(|payload| payload_text(payload.as_ref())),
            ));
        });
    if spawned.is_err() {
        // Could not spawn the monitor thread (resource exhaustion): run
        // inline rather than fail the cell — losing the watchdog for one
        // attempt beats losing the result.
        let saved = ctx.deadline;
        let inline_ctx = ComputeContext {
            deadline: None,
            ..*ctx
        };
        let out = execute_attempt(&inline_ctx, attempt, phases);
        debug_assert!(saved.is_some());
        return out;
    }

    let started = Instant::now();
    loop {
        let Some(remaining) = deadline.checked_sub(started.elapsed()) else {
            return Attempt::Stalled(started.elapsed());
        };
        match rx.recv_timeout(remaining) {
            Ok(Msg::Stage(stage, span)) => {
                phases.record(&stage, span);
                ctx.telemetry.cell_stage(ctx.index, &stage, span);
            }
            Ok(Msg::Done(Ok(result))) => return Attempt::Ok(result),
            Ok(Msg::Done(Err(message))) => return Attempt::Panicked(message),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Deadline blown: abandon the attempt thread (it keeps the
                // dead channel, we keep the worker slot).
                return Attempt::Stalled(started.elapsed());
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The attempt thread died without reporting — catch_unwind
                // should make this impossible, but degrade to a failure
                // rather than hang or crash the campaign.
                return Attempt::Panicked("attempt thread terminated without a result".to_string());
            }
        }
    }
}

/// The actual cell computation, with chaos injection at the front so an
/// injected panic or stall flows through exactly the paths a real one
/// would.
fn cell_body(
    cell: &CellSpec,
    chaos: &FaultPlan,
    index: usize,
    attempt: u32,
    options: &RunOptions,
    observe: &mut dyn FnMut(&str, Duration),
) -> BenchmarkResults {
    if let Some(message) = chaos.panic_message(index, attempt) {
        std::panic::panic_any(message);
    }
    if let Some(stall) = chaos.stall(index) {
        thread::sleep(stall);
    }
    cell.run_with(options.clone(), observe)
}

/// Publishes a computed result, retrying transient IO failures with
/// exponential backoff. A store that still fails after the budget is
/// logged and absorbed — the in-memory result is good, and the cache will
/// recompute the cell next run. Public because the grid coordinator stores
/// worker-computed results through exactly this path.
#[allow(clippy::too_many_arguments)]
pub fn store_result(
    cache: &ResultCache,
    key: &CacheKey,
    cell: &CellSpec,
    result: &BenchmarkResults,
    backoff: &BackoffPolicy,
    chaos: &FaultPlan,
    telemetry: &Telemetry,
    index: usize,
) {
    if let Some(keep) = chaos.torn_store(index) {
        // Injected crash-mid-flush: publish a torn entry. The *next* run's
        // probe must detect and quarantine it.
        let _ = cache.store_torn(key, cell, result, keep);
        return;
    }
    let max_attempts = backoff.max_attempts.max(1);
    for attempt in 1..=max_attempts {
        let stored = if chaos.take_store_io_error(index) {
            Err(std::io::Error::other("chaos: injected store failure"))
        } else {
            cache.store(key, cell, result)
        };
        match stored {
            Ok(()) => return,
            Err(e) => {
                if attempt == max_attempts {
                    return;
                }
                telemetry.io_retry(index, "store", attempt, &e.to_string());
                thread::sleep(backoff.delay(attempt));
            }
        }
    }
}

fn store_with_backoff(ctx: &CellContext<'_>, result: &BenchmarkResults) {
    store_result(
        ctx.cache,
        ctx.key,
        ctx.cell,
        result,
        &ctx.backoff,
        ctx.chaos,
        ctx.telemetry,
        ctx.index,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::Fault;
    use mcd_time::DvfsModel;
    use std::path::PathBuf;

    fn cell() -> CellSpec {
        CellSpec {
            benchmark: "adpcm".to_string(),
            seed: 3,
            instructions: 600,
            model: DvfsModel::XScale,
            thetas: [0.01, 0.05],
            policies: Vec::new(),
        }
    }

    fn scratch(tag: &str) -> (ResultCache, PathBuf) {
        let dir = std::env::temp_dir().join(format!("mcd-super-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (ResultCache::open(&dir).expect("create cache"), dir)
    }

    struct Fixture {
        cell: CellSpec,
        key: CacheKey,
        cache: ResultCache,
        dir: PathBuf,
        telemetry: Telemetry,
        chaos: Arc<FaultPlan>,
        options: RunOptions,
        stop: Arc<AtomicBool>,
    }

    impl Fixture {
        fn new(tag: &str, chaos: FaultPlan) -> Fixture {
            let (cache, dir) = scratch(tag);
            let cell = cell();
            let key = CacheKey::of(&cell);
            Fixture {
                cell,
                key,
                cache,
                dir,
                telemetry: Telemetry::disabled(),
                chaos: Arc::new(chaos),
                options: RunOptions::default(),
                stop: Arc::new(AtomicBool::new(false)),
            }
        }

        fn ctx(&self) -> CellContext<'_> {
            CellContext {
                index: 0,
                cell: &self.cell,
                key: &self.key,
                cache: &self.cache,
                telemetry: &self.telemetry,
                chaos: &self.chaos,
                retry: RetryPolicy::default(),
                backoff: BackoffPolicy {
                    base: Duration::from_millis(1),
                    ..BackoffPolicy::default()
                },
                deadline: None,
                options: &self.options,
                stop: &self.stop,
            }
        }
    }

    impl Drop for Fixture {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }

    #[test]
    fn backoff_delays_grow_exponentially_and_cap() {
        let b = BackoffPolicy {
            max_attempts: 5,
            base: Duration::from_millis(10),
            multiplier: 4,
            cap: Duration::from_millis(100),
        };
        assert_eq!(b.delay(1), Duration::from_millis(10));
        assert_eq!(b.delay(2), Duration::from_millis(40));
        assert_eq!(b.delay(3), Duration::from_millis(100), "capped");
        assert_eq!(b.delay(4), Duration::from_millis(100));
    }

    #[test]
    fn clean_cell_computes_then_caches() {
        let fx = Fixture::new("clean", FaultPlan::none());
        let (outcome, _, _) = run_cell(&fx.ctx());
        assert!(matches!(outcome, CellOutcome::Computed { attempts: 1, .. }));
        let (outcome, _, _) = run_cell(&fx.ctx());
        assert!(matches!(outcome, CellOutcome::Cached(_)));
    }

    #[test]
    fn deadline_turns_an_injected_stall_into_a_stalled_outcome() {
        let fx = Fixture::new(
            "stall",
            FaultPlan::new(vec![Fault::Stall {
                cell: 0,
                by: Duration::from_millis(400),
            }]),
        );
        let mut ctx = fx.ctx();
        ctx.deadline = Some(Duration::from_millis(40));
        let start = Instant::now();
        let (outcome, _, _) = run_cell(&ctx);
        assert!(
            matches!(outcome, CellOutcome::Stalled { waited } if waited >= Duration::from_millis(40)),
            "outcome: {outcome:?}"
        );
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "the stalled attempt was abandoned, not awaited"
        );
    }

    #[test]
    fn deadline_leaves_fast_cells_untouched() {
        let fx = Fixture::new("fast", FaultPlan::none());
        let mut ctx = fx.ctx();
        ctx.deadline = Some(Duration::from_secs(60));
        let (outcome, _, _) = run_cell(&ctx);
        let CellOutcome::Computed { result, .. } = outcome else {
            panic!("expected computed, got {outcome:?}");
        };
        assert_eq!(
            serde_json::to_string(&result).unwrap(),
            serde_json::to_string(&fx.cell.run()).unwrap(),
            "monitored attempt is byte-identical to an inline run"
        );
    }

    #[test]
    fn transient_store_errors_are_absorbed_by_backoff() {
        let fx = Fixture::new(
            "backoff",
            FaultPlan::new(vec![Fault::StoreIoError { cell: 0, times: 2 }]),
        );
        let (outcome, _, _) = run_cell(&fx.ctx());
        assert!(matches!(outcome, CellOutcome::Computed { .. }));
        assert!(
            fx.cache.contains(&fx.key),
            "the third store attempt succeeded"
        );
        assert!(
            matches!(fx.cache.probe(&fx.key), CacheProbe::Hit(_)),
            "and published a valid entry"
        );
    }

    #[test]
    fn corrupt_entry_is_quarantined_and_recomputed() {
        let fx = Fixture::new("quarantine", FaultPlan::none());
        let (outcome, _, _) = run_cell(&fx.ctx());
        let CellOutcome::Computed { result: honest, .. } = outcome else {
            panic!("expected computed");
        };
        fx.cache
            .corrupt_with(&fx.key, b"{\"key\": \"junk\"}")
            .unwrap();

        let (outcome, _, _) = run_cell(&fx.ctx());
        let CellOutcome::Computed { result, .. } = outcome else {
            panic!("a corrupt entry must be recomputed, never served");
        };
        assert_eq!(
            serde_json::to_string(&result).unwrap(),
            serde_json::to_string(&honest).unwrap()
        );
        assert!(
            fx.cache
                .quarantine_dir()
                .join(format!("{}.json", fx.key.hex()))
                .is_file(),
            "evidence preserved in quarantine"
        );
    }

    #[test]
    fn injected_deterministic_panic_fails_fast() {
        let fx = Fixture::new(
            "panic",
            FaultPlan::new(vec![Fault::Panic {
                cell: 0,
                attempts: u32::MAX,
            }]),
        );
        let mut ctx = fx.ctx();
        ctx.retry = RetryPolicy::attempts(5);
        let (outcome, _, _) = run_cell(&ctx);
        let CellOutcome::Failed(f) = outcome else {
            panic!("expected failure");
        };
        assert_eq!(f.attempts, 2, "fail-fast after two identical payloads");
        assert!(f.deterministic);
        assert!(f.message.contains("injected panic"));
    }

    #[test]
    fn injected_transient_panic_recovers_on_retry() {
        let fx = Fixture::new(
            "transient",
            FaultPlan::new(vec![Fault::Panic {
                cell: 0,
                attempts: 1,
            }]),
        );
        let (outcome, _, _) = run_cell(&fx.ctx());
        assert!(matches!(outcome, CellOutcome::Computed { attempts: 2, .. }));
    }
}
