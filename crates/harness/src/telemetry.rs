//! Structured campaign telemetry as JSON Lines.
//!
//! Every event is one JSON object per line with an `"event"` tag and a
//! monotonic `"t_us"` timestamp (microseconds since the sink was created).
//! Telemetry goes to its own stream (a file, stderr, or nowhere) and never
//! mixes with result bytes, so machine consumers of campaign output parse
//! results without filtering progress noise — and the result bytes stay
//! identical whether telemetry is on or off. Writes are best-effort: a
//! full disk or failing sink drops events, never the campaign.
//!
//! Crash recovery: a process killed mid-write can leave a *torn tail* — a
//! partial final line with no terminating newline or with truncated JSON.
//! [`replay`] parses a log while detecting and isolating such a tail
//! (returning every complete event plus the number of bytes dropped), and
//! [`Telemetry::append_file`] truncates the tail before appending, so a
//! resumed campaign continues a valid JSONL stream instead of corrupting
//! it further or failing to parse the whole log.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Map, Number, Serialize, Value};

use crate::error::{CorruptKind, HarnessError};
use crate::spec::CellSpec;

/// Where a finished cell's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Served from the result cache.
    Cached,
    /// Computed by a worker (with the attempt count that succeeded).
    Computed {
        /// 1 = first try.
        attempts: u32,
    },
}

impl CellSource {
    fn tag(&self) -> &'static str {
        match self {
            CellSource::Cached => "cached",
            CellSource::Computed { .. } => "computed",
        }
    }
}

/// A thread-safe JSONL event sink.
///
/// Cloneable handles are not needed: the campaign shares one `Telemetry`
/// by reference across workers; the line writer is mutex-guarded so events
/// from concurrent cells interleave at line granularity, never mid-line.
pub struct Telemetry {
    sink: Option<Mutex<Sink>>,
    start: Instant,
}

/// The two sink shapes: an arbitrary writer (tests, stderr) and a buffered
/// file kept as a concrete type so [`Telemetry::sync`] can reach the file
/// descriptor for an fsync on abnormal-exit paths.
enum Sink {
    Writer(Box<dyn Write + Send>),
    File(BufWriter<File>),
}

impl Write for Sink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Sink::Writer(w) => w.write(buf),
            Sink::File(f) => f.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Sink::Writer(w) => w.flush(),
            Sink::File(f) => f.flush(),
        }
    }
}

/// Microseconds as a JSON number, with fractional (nanosecond) precision:
/// cached cells finish in well under a microsecond, and truncating to whole
/// micros reported their `cell_finished` spans as `elapsed=0`.
fn micros(d: Duration) -> Value {
    Value::Number(Number::F64(d.as_nanos() as f64 / 1_000.0))
}

/// Replays a JSONL telemetry log: every complete, parseable event in
/// order, plus the byte length of a torn final line if the log ends
/// mid-write. A torn tail is isolated, not fatal — only a torn line in the
/// *middle* of the log (which a line-buffered writer cannot produce)
/// reports an error.
pub fn replay(path: &Path) -> Result<(Vec<Value>, Option<usize>), HarnessError> {
    let text = std::fs::read(path).map_err(|source| HarnessError::TelemetryIo {
        path: Some(path.to_path_buf()),
        source,
    })?;
    let text = String::from_utf8_lossy(&text);
    let mut events = Vec::new();
    let mut tail = None;
    for (number, line) in text.split_inclusive('\n').enumerate() {
        let complete = line.ends_with('\n');
        let body = line.trim_end_matches(['\n', '\r']);
        if body.is_empty() {
            continue;
        }
        match serde_json::from_str::<Value>(body) {
            Ok(event) if complete => events.push(event),
            // A parseable body with no newline: the crash hit between the
            // JSON bytes and the newline. Still a torn tail — the writer
            // never considered the line committed.
            Ok(_) => tail = Some(line.len()),
            Err(_) if !complete => tail = Some(line.len()),
            Err(_) => {
                // Garbage in the middle of the log is real corruption, not
                // a crash artifact.
                return Err(HarnessError::TelemetryCorrupt {
                    path: path.to_path_buf(),
                    line: number + 1,
                });
            }
        }
    }
    Ok((events, tail))
}

/// Truncates a torn final line off a telemetry log in place, returning the
/// number of bytes removed (0 when the log was already clean). Missing
/// files are fine (0).
pub fn repair_torn_tail(path: &Path) -> Result<usize, HarnessError> {
    let io_err = |source: io::Error| HarnessError::TelemetryIo {
        path: Some(path.to_path_buf()),
        source,
    };
    let mut file = match OpenOptions::new().read(true).write(true).open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(io_err(e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes).map_err(io_err)?;
    let keep = match bytes.iter().rposition(|&b| b == b'\n') {
        Some(last_newline) => last_newline + 1,
        None => 0,
    };
    let torn = bytes.len() - keep;
    if torn > 0 {
        file.set_len(keep as u64).map_err(io_err)?;
        file.seek(SeekFrom::End(0)).map_err(io_err)?;
    }
    Ok(torn)
}

impl Telemetry {
    /// Discards all events.
    pub fn disabled() -> Telemetry {
        Telemetry {
            sink: None,
            start: Instant::now(),
        }
    }

    /// Appends events to standard error.
    pub fn stderr() -> Telemetry {
        Telemetry::to_writer(Box::new(io::stderr()))
    }

    /// Writes events to an arbitrary sink (used by tests to inject failing
    /// writers; write errors are absorbed, never propagated).
    pub fn to_writer(sink: Box<dyn Write + Send>) -> Telemetry {
        Telemetry {
            sink: Some(Mutex::new(Sink::Writer(sink))),
            start: Instant::now(),
        }
    }

    /// Writes events to a file (truncating any previous contents).
    pub fn to_file(path: &Path) -> io::Result<Telemetry> {
        Ok(Telemetry {
            sink: Some(Mutex::new(Sink::File(BufWriter::new(File::create(path)?)))),
            start: Instant::now(),
        })
    }

    /// Appends events to a file, first truncating any torn final line a
    /// crashed writer left, so a resumed campaign extends a valid JSONL
    /// stream.
    pub fn append_file(path: &Path) -> io::Result<Telemetry> {
        let _ = repair_torn_tail(path);
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Telemetry {
            sink: Some(Mutex::new(Sink::File(BufWriter::new(file)))),
            start: Instant::now(),
        })
    }

    /// Flushes the sink and, for file sinks, fsyncs the file descriptor.
    /// Called on abnormal-exit paths — watchdog abandonment, grid worker
    /// disconnect — so the events narrating the failure reach the disk even
    /// if the process dies right after. Best-effort like every write.
    pub fn sync(&self) {
        let Some(sink) = &self.sink else { return };
        let mut sink = sink.lock().expect("telemetry sink poisoned");
        let _ = sink.flush();
        if let Sink::File(f) = &*sink {
            let _ = f.get_ref().sync_all();
        }
    }

    /// Writes one finished event object (tag and timestamp already set).
    fn write_line(&self, obj: Map) {
        let Some(sink) = &self.sink else { return };
        let line = serde_json::to_string(&Value::Object(obj)).expect("JSON writing is infallible");
        let mut sink = sink.lock().expect("telemetry sink poisoned");
        // Telemetry is best-effort: a full disk must not fail the campaign.
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }

    fn emit(&self, event: &'static str, fields: Map) {
        if self.sink.is_none() {
            return;
        }
        let mut obj = fields;
        obj.insert("event".to_string(), Value::String(event.to_string()));
        obj.insert("t_us".to_string(), micros(self.start.elapsed()));
        self.write_line(obj);
    }

    /// Re-emits an event that a grid worker produced remotely, attributing
    /// it to `worker` and restamping it on this sink's clock (the worker's
    /// own timestamp is preserved as `worker_t_us` — the two clocks are not
    /// comparable). Non-object payloads are dropped: a worker that forwards
    /// garbage must not corrupt the coordinator's stream.
    pub fn forward(&self, worker: u64, event: &Value) {
        if self.sink.is_none() {
            return;
        }
        let Some(obj) = event.as_object() else { return };
        let mut obj = obj.clone();
        if let Some(t) = obj.remove("t_us") {
            obj.insert("worker_t_us".to_string(), t);
        }
        obj.insert("worker".to_string(), worker.to_value());
        obj.insert("t_us".to_string(), micros(self.start.elapsed()));
        self.write_line(obj);
    }

    /// Campaign kicked off: total cell count and how many were already
    /// cached at probe time.
    pub fn campaign_started(&self, total: usize, workers: usize) {
        let mut f = Map::new();
        f.insert("cells".to_string(), total.to_value());
        f.insert("workers".to_string(), workers.to_value());
        self.emit("campaign_started", f);
    }

    /// A worker picked up a cell.
    pub fn cell_started(&self, index: usize, cell: &CellSpec) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("label".to_string(), Value::String(cell.label()));
        self.emit("cell_started", f);
    }

    /// One configuration stage of a computed cell finished (stage spans).
    pub fn cell_stage(&self, index: usize, stage: &str, elapsed: Duration) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("stage".to_string(), Value::String(stage.to_string()));
        f.insert("us".to_string(), micros(elapsed));
        self.emit("cell_stage", f);
    }

    /// End-of-campaign slack-profile store counters (distinct from result
    /// cache hits: a slack hit skips the shaker pass inside a cell that is
    /// otherwise recomputed).
    pub fn slack_cache(&self, loads: u64, hits: u64, stores: u64) {
        let mut f = Map::new();
        f.insert("loads".to_string(), loads.to_value());
        f.insert("hits".to_string(), hits.to_value());
        f.insert("stores".to_string(), stores.to_value());
        self.emit("slack_cache", f);
    }

    /// A cell attempt panicked and will be retried.
    pub fn cell_retry(&self, index: usize, attempt: u32, message: &str) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("attempt".to_string(), attempt.to_value());
        f.insert("message".to_string(), Value::String(message.to_string()));
        self.emit("cell_retry", f);
    }

    /// A cell finished (from cache or computed).
    pub fn cell_finished(&self, index: usize, source: CellSource, elapsed: Duration) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert(
            "source".to_string(),
            Value::String(source.tag().to_string()),
        );
        if let CellSource::Computed { attempts } = source {
            f.insert("attempts".to_string(), attempts.to_value());
        }
        f.insert("us".to_string(), micros(elapsed));
        self.emit("cell_finished", f);
    }

    /// A cell exhausted its retry budget (or failed fast on a
    /// deterministic panic).
    pub fn cell_failed(&self, index: usize, attempts: u32, message: &str, deterministic: bool) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("attempts".to_string(), attempts.to_value());
        f.insert("message".to_string(), Value::String(message.to_string()));
        f.insert("deterministic".to_string(), Value::Bool(deterministic));
        self.emit("cell_failed", f);
    }

    /// A corrupt cache entry was quarantined and will be recomputed.
    pub fn cache_quarantined(&self, index: usize, key: &str, kind: CorruptKind) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("key".to_string(), Value::String(key.to_string()));
        f.insert("kind".to_string(), Value::String(kind.tag().to_string()));
        self.emit("cache_quarantined", f);
    }

    /// A transient IO failure is being retried with backoff.
    pub fn io_retry(&self, index: usize, op: &str, attempt: u32, error: &str) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("op".to_string(), Value::String(op.to_string()));
        f.insert("attempt".to_string(), attempt.to_value());
        f.insert("error".to_string(), Value::String(error.to_string()));
        self.emit("io_retry", f);
    }

    /// A cell blew its watchdog deadline and was abandoned.
    pub fn cell_stalled(&self, index: usize, waited: Duration) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("waited_us".to_string(), micros(waited));
        self.emit("cell_stalled", f);
    }

    /// The campaign was interrupted; cells not yet claimed were skipped.
    pub fn campaign_interrupted(&self, done: usize, skipped: usize) {
        let mut f = Map::new();
        f.insert("done".to_string(), done.to_value());
        f.insert("skipped".to_string(), skipped.to_value());
        self.emit("campaign_interrupted", f);
    }

    /// Campaign summary: counts by outcome plus wall time.
    pub fn campaign_finished(&self, computed: usize, cached: usize, failed: usize, wall: Duration) {
        let mut f = Map::new();
        f.insert("computed".to_string(), computed.to_value());
        f.insert("cached".to_string(), cached.to_value());
        f.insert("failed".to_string(), failed.to_value());
        f.insert("wall_us".to_string(), micros(wall));
        self.emit("campaign_finished", f);
    }

    /// A grid worker completed the wire handshake and joined the campaign.
    /// `fingerprint` is the worker's environment summary from the `/2`
    /// handshake (empty for `/1`-era peers).
    pub fn grid_worker_joined(&self, worker: u64, name: &str, peer: &str, fingerprint: &str) {
        let mut f = Map::new();
        f.insert("worker".to_string(), worker.to_value());
        f.insert("name".to_string(), Value::String(name.to_string()));
        f.insert("peer".to_string(), Value::String(peer.to_string()));
        f.insert(
            "fingerprint".to_string(),
            Value::String(fingerprint.to_string()),
        );
        self.emit("grid_worker_joined", f);
    }

    /// A cell was assigned to a grid worker over the wire.
    pub fn grid_cell_assigned(&self, index: usize, worker: u64) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("worker".to_string(), worker.to_value());
        self.emit("grid_cell_assigned", f);
    }

    /// A grid worker returned a cell result; `rtt` is assignment-to-result
    /// wall time as the coordinator measured it.
    pub fn grid_cell_result(&self, index: usize, worker: u64, rtt: Duration) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("worker".to_string(), worker.to_value());
        f.insert("rtt_us".to_string(), micros(rtt));
        self.emit("grid_cell_result", f);
    }

    /// A grid worker was evicted (disconnect or heartbeat timeout); its
    /// in-flight cell, if any, goes back on the queue for reassignment.
    pub fn grid_worker_evicted(&self, worker: u64, reassigned: Option<usize>, reason: &str) {
        let mut f = Map::new();
        f.insert("worker".to_string(), worker.to_value());
        f.insert(
            "reassigned_cell".to_string(),
            match reassigned {
                Some(i) => i.to_value(),
                None => Value::Null,
            },
        );
        f.insert("reason".to_string(), Value::String(reason.to_string()));
        self.emit("grid_worker_evicted", f);
    }

    /// An audit settled: a second opinion (worker `auditor`, or the
    /// coordinator itself acting as arbiter) compared canonical result
    /// bytes for `primary`'s cell.
    pub fn grid_cell_audited(&self, index: usize, primary: u64, auditor: u64, matched: bool) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("primary".to_string(), primary.to_value());
        f.insert("auditor".to_string(), auditor.to_value());
        f.insert("matched".to_string(), Value::Bool(matched));
        self.emit("grid_cell_audited", f);
    }

    /// Two workers returned different canonical bytes for the same cell;
    /// the coordinator is recomputing locally to arbitrate.
    pub fn grid_audit_divergence(&self, index: usize, primary: u64, auditor: u64) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("primary".to_string(), primary.to_value());
        f.insert("auditor".to_string(), auditor.to_value());
        self.emit("grid_audit_divergence", f);
    }

    /// A worker was quarantined for lying: evicted, its unverified results
    /// discarded from the cache, and `cells_requeued` cells put back on the
    /// queue for honest recomputation.
    pub fn worker_quarantined(&self, worker: u64, cells_requeued: usize, reason: &str) {
        let mut f = Map::new();
        f.insert("worker".to_string(), worker.to_value());
        f.insert("cells_requeued".to_string(), cells_requeued.to_value());
        f.insert("reason".to_string(), Value::String(reason.to_string()));
        self.emit("worker_quarantined", f);
    }

    /// Campaign-startup cache spot check: `checked` entries re-verified,
    /// `quarantined` of them found corrupt and moved aside.
    pub fn cache_spot_check(&self, checked: usize, corrupt: usize) {
        let mut f = Map::new();
        f.insert("checked".to_string(), checked.to_value());
        f.insert("corrupt".to_string(), corrupt.to_value());
        self.emit("cache_spot_check", f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_time::DvfsModel;
    use std::fs;
    use std::path::PathBuf;

    fn sample_cell() -> CellSpec {
        CellSpec {
            benchmark: "art".to_string(),
            seed: 1,
            instructions: 500,
            model: DvfsModel::Transmeta,
            thetas: [0.01, 0.05],
            policies: Vec::new(),
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mcd-telemetry-{tag}-{}.jsonl", std::process::id()))
    }

    #[test]
    fn events_are_one_json_object_per_line() {
        let path = scratch("basic");
        let telemetry = Telemetry::to_file(&path).expect("create telemetry file");
        telemetry.campaign_started(4, 2);
        telemetry.cell_started(0, &sample_cell());
        telemetry.cell_stage(0, "dynamic-5%", Duration::from_micros(1200));
        telemetry.cell_retry(0, 1, "synthetic panic");
        telemetry.cell_finished(
            0,
            CellSource::Computed { attempts: 2 },
            Duration::from_millis(3),
        );
        telemetry.cell_finished(1, CellSource::Cached, Duration::from_micros(80));
        telemetry.cell_failed(2, 2, "still broken", true);
        telemetry.cache_quarantined(3, "ab12", CorruptKind::DigestMismatch);
        telemetry.io_retry(3, "store", 1, "injected");
        telemetry.cell_stalled(3, Duration::from_millis(100));
        telemetry.campaign_interrupted(3, 1);
        telemetry.campaign_finished(1, 1, 1, Duration::from_millis(5));
        drop(telemetry);

        let text = fs::read_to_string(&path).expect("read telemetry back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 12);
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("each line is valid JSON");
            assert!(v.get("event").is_some(), "line missing event tag: {line}");
            assert!(v.get("t_us").is_some(), "line missing timestamp: {line}");
        }
        assert!(lines[0].contains("campaign_started"));
        let finished: Value = serde_json::from_str(lines[4]).unwrap();
        assert_eq!(
            finished.get("source").and_then(Value::as_str),
            Some("computed")
        );
        let quarantined: Value = serde_json::from_str(lines[7]).unwrap();
        assert_eq!(
            quarantined.get("kind").and_then(Value::as_str),
            Some("digest-mismatch")
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn sub_microsecond_spans_are_not_truncated_to_zero() {
        let path = scratch("submicro");
        let telemetry = Telemetry::to_file(&path).expect("create telemetry file");
        telemetry.cell_finished(0, CellSource::Cached, Duration::from_nanos(250));
        drop(telemetry);

        let text = fs::read_to_string(&path).expect("read telemetry back");
        let v: Value = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        let us = v
            .get("us")
            .and_then(Value::as_number)
            .expect("us field present")
            .as_f64();
        assert!(
            (us - 0.25).abs() < 1e-12,
            "250 ns must report as 0.25 µs, got {us}"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn disabled_sink_swallows_everything() {
        let telemetry = Telemetry::disabled();
        telemetry.campaign_started(1, 1);
        telemetry.campaign_finished(1, 0, 0, Duration::ZERO);
    }

    #[test]
    fn failing_sink_never_fails_the_campaign() {
        let telemetry = Telemetry::to_writer(Box::new(crate::chaos::FailingWriter::after(1)));
        telemetry.campaign_started(2, 1);
        telemetry.cell_started(0, &sample_cell());
        telemetry.campaign_finished(2, 0, 0, Duration::ZERO);
    }

    #[test]
    fn replay_isolates_a_byte_truncated_tail() {
        let path = scratch("torn");
        let telemetry = Telemetry::to_file(&path).expect("create telemetry file");
        telemetry.campaign_started(2, 1);
        telemetry.cell_started(0, &sample_cell());
        telemetry.cell_finished(0, CellSource::Cached, Duration::from_micros(10));
        drop(telemetry);

        // Byte-truncate the fixture mid-final-line, as a crash would.
        let full = fs::read(&path).unwrap();
        let torn = &full[..full.len() - 17];
        assert!(!torn.ends_with(b"\n"));
        fs::write(&path, torn).unwrap();

        let (events, tail) = replay(&path).expect("torn tail is not fatal");
        assert_eq!(events.len(), 2, "complete lines all parse");
        let dropped = tail.expect("tail detected");
        assert!(dropped > 0);

        // Repair truncates exactly the torn bytes, leaving valid JSONL.
        assert_eq!(repair_torn_tail(&path).unwrap(), dropped);
        let (events, tail) = replay(&path).expect("repaired log parses");
        assert_eq!(events.len(), 2);
        assert!(tail.is_none());
        assert_eq!(repair_torn_tail(&path).unwrap(), 0, "repair is idempotent");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn append_after_crash_continues_a_valid_stream() {
        let path = scratch("append");
        let telemetry = Telemetry::to_file(&path).expect("create telemetry file");
        telemetry.campaign_started(2, 1);
        telemetry.cell_finished(0, CellSource::Cached, Duration::from_micros(10));
        drop(telemetry);

        // Crash leaves a torn tail...
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 9]).unwrap();

        // ...append_file repairs it, then extends the stream.
        let resumed = Telemetry::append_file(&path).expect("append");
        resumed.cell_finished(1, CellSource::Cached, Duration::from_micros(11));
        resumed.campaign_finished(0, 2, 0, Duration::from_millis(1));
        drop(resumed);

        let (events, tail) = replay(&path).expect("stream is valid");
        assert!(tail.is_none());
        assert_eq!(events.len(), 3, "one pre-crash survivor + two appended");
        assert_eq!(
            events[2].get("event").and_then(Value::as_str),
            Some("campaign_finished")
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn forwarded_events_are_attributed_and_restamped() {
        let path = scratch("forward");
        let telemetry = Telemetry::to_file(&path).expect("create telemetry file");
        // A remote worker's event, with its own clock.
        let mut remote = Map::new();
        remote.insert("event".to_string(), Value::String("cell_started".into()));
        remote.insert("cell".to_string(), 3usize.to_value());
        remote.insert("t_us".to_string(), Value::Number(Number::F64(42.0)));
        telemetry.forward(7, &Value::Object(remote));
        telemetry.forward(7, &Value::String("not an object".into()));
        telemetry.sync();

        let text = fs::read_to_string(&path).expect("read telemetry back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "non-object payloads are dropped");
        let v: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(v.get("event").and_then(Value::as_str), Some("cell_started"));
        assert_eq!(
            v.get("worker")
                .and_then(Value::as_number)
                .map(Number::as_f64),
            Some(7.0)
        );
        assert_eq!(
            v.get("worker_t_us")
                .and_then(Value::as_number)
                .map(Number::as_f64),
            Some(42.0),
            "remote timestamp preserved under its own key"
        );
        assert!(v.get("t_us").is_some(), "restamped on the local clock");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn sync_is_safe_on_every_sink_shape() {
        Telemetry::disabled().sync();
        let writer = Telemetry::to_writer(Box::new(crate::chaos::FailingWriter::after(0)));
        writer.campaign_started(1, 1);
        writer.sync();
        let path = scratch("sync");
        let file = Telemetry::to_file(&path).expect("create telemetry file");
        file.campaign_started(1, 1);
        file.sync();
        let text = fs::read_to_string(&path).expect("synced file is readable");
        assert!(text.contains("campaign_started"));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn replay_of_a_missing_file_is_an_io_error() {
        let path = scratch("missing");
        let _ = fs::remove_file(&path);
        assert!(matches!(
            replay(&path),
            Err(HarnessError::TelemetryIo { .. })
        ));
        assert_eq!(repair_torn_tail(&path).unwrap(), 0, "nothing to repair");
    }
}
