//! Structured campaign telemetry as JSON Lines.
//!
//! Every event is one JSON object per line with an `"event"` tag and a
//! monotonic `"t_us"` timestamp (microseconds since the sink was created).
//! Telemetry goes to its own stream (a file, stderr, or nowhere) and never
//! mixes with result bytes, so machine consumers of campaign output parse
//! results without filtering progress noise — and the result bytes stay
//! identical whether telemetry is on or off.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use serde::{Map, Serialize, Value};

use crate::spec::CellSpec;

/// Where a finished cell's result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellSource {
    /// Served from the result cache.
    Cached,
    /// Computed by a worker (with the attempt count that succeeded).
    Computed {
        /// 1 = first try.
        attempts: u32,
    },
}

impl CellSource {
    fn tag(&self) -> &'static str {
        match self {
            CellSource::Cached => "cached",
            CellSource::Computed { .. } => "computed",
        }
    }
}

/// A thread-safe JSONL event sink.
///
/// Cloneable handles are not needed: the campaign shares one `Telemetry`
/// by reference across workers; the line writer is mutex-guarded so events
/// from concurrent cells interleave at line granularity, never mid-line.
pub struct Telemetry {
    sink: Option<Mutex<Box<dyn Write + Send>>>,
    start: Instant,
}

/// Microseconds as a JSON number (u64 — a campaign outlives u32, not u64).
fn micros(d: Duration) -> Value {
    (d.as_micros() as u64).to_value()
}

impl Telemetry {
    /// Discards all events.
    pub fn disabled() -> Telemetry {
        Telemetry {
            sink: None,
            start: Instant::now(),
        }
    }

    /// Appends events to standard error.
    pub fn stderr() -> Telemetry {
        Telemetry {
            sink: Some(Mutex::new(Box::new(io::stderr()))),
            start: Instant::now(),
        }
    }

    /// Writes events to a file (truncating any previous contents).
    pub fn to_file(path: &Path) -> io::Result<Telemetry> {
        let file = BufWriter::new(File::create(path)?);
        Ok(Telemetry {
            sink: Some(Mutex::new(Box::new(file))),
            start: Instant::now(),
        })
    }

    fn emit(&self, event: &'static str, fields: Map) {
        let Some(sink) = &self.sink else { return };
        let mut obj = fields;
        obj.insert("event".to_string(), Value::String(event.to_string()));
        obj.insert("t_us".to_string(), micros(self.start.elapsed()));
        let line = serde_json::to_string(&Value::Object(obj)).expect("JSON writing is infallible");
        let mut sink = sink.lock().expect("telemetry sink poisoned");
        // Telemetry is best-effort: a full disk must not fail the campaign.
        let _ = writeln!(sink, "{line}");
        let _ = sink.flush();
    }

    /// Campaign kicked off: total cell count and how many were already
    /// cached at probe time.
    pub fn campaign_started(&self, total: usize, workers: usize) {
        let mut f = Map::new();
        f.insert("cells".to_string(), total.to_value());
        f.insert("workers".to_string(), workers.to_value());
        self.emit("campaign_started", f);
    }

    /// A worker picked up a cell.
    pub fn cell_started(&self, index: usize, cell: &CellSpec) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("label".to_string(), Value::String(cell.label()));
        self.emit("cell_started", f);
    }

    /// One configuration stage of a computed cell finished (stage spans).
    pub fn cell_stage(&self, index: usize, stage: &str, elapsed: Duration) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("stage".to_string(), Value::String(stage.to_string()));
        f.insert("us".to_string(), micros(elapsed));
        self.emit("cell_stage", f);
    }

    /// A cell attempt panicked and will be retried.
    pub fn cell_retry(&self, index: usize, attempt: u32, message: &str) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("attempt".to_string(), attempt.to_value());
        f.insert("message".to_string(), Value::String(message.to_string()));
        self.emit("cell_retry", f);
    }

    /// A cell finished (from cache or computed).
    pub fn cell_finished(&self, index: usize, source: CellSource, elapsed: Duration) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert(
            "source".to_string(),
            Value::String(source.tag().to_string()),
        );
        if let CellSource::Computed { attempts } = source {
            f.insert("attempts".to_string(), attempts.to_value());
        }
        f.insert("us".to_string(), micros(elapsed));
        self.emit("cell_finished", f);
    }

    /// A cell exhausted its retry budget.
    pub fn cell_failed(&self, index: usize, attempts: u32, message: &str) {
        let mut f = Map::new();
        f.insert("cell".to_string(), index.to_value());
        f.insert("attempts".to_string(), attempts.to_value());
        f.insert("message".to_string(), Value::String(message.to_string()));
        self.emit("cell_failed", f);
    }

    /// Campaign summary: counts by outcome plus wall time.
    pub fn campaign_finished(&self, computed: usize, cached: usize, failed: usize, wall: Duration) {
        let mut f = Map::new();
        f.insert("computed".to_string(), computed.to_value());
        f.insert("cached".to_string(), cached.to_value());
        f.insert("failed".to_string(), failed.to_value());
        f.insert("wall_us".to_string(), micros(wall));
        self.emit("campaign_finished", f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_time::DvfsModel;
    use std::fs;

    fn sample_cell() -> CellSpec {
        CellSpec {
            benchmark: "art".to_string(),
            seed: 1,
            instructions: 500,
            model: DvfsModel::Transmeta,
            thetas: [0.01, 0.05],
        }
    }

    #[test]
    fn events_are_one_json_object_per_line() {
        let path = std::env::temp_dir().join(format!("mcd-telemetry-{}.jsonl", std::process::id()));
        let telemetry = Telemetry::to_file(&path).expect("create telemetry file");
        telemetry.campaign_started(4, 2);
        telemetry.cell_started(0, &sample_cell());
        telemetry.cell_stage(0, "dynamic-5%", Duration::from_micros(1200));
        telemetry.cell_retry(0, 1, "synthetic panic");
        telemetry.cell_finished(
            0,
            CellSource::Computed { attempts: 2 },
            Duration::from_millis(3),
        );
        telemetry.cell_finished(1, CellSource::Cached, Duration::from_micros(80));
        telemetry.cell_failed(2, 2, "still broken");
        telemetry.campaign_finished(1, 1, 1, Duration::from_millis(5));
        drop(telemetry);

        let text = fs::read_to_string(&path).expect("read telemetry back");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8);
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("each line is valid JSON");
            assert!(v.get("event").is_some(), "line missing event tag: {line}");
            assert!(v.get("t_us").is_some(), "line missing timestamp: {line}");
        }
        assert!(lines[0].contains("campaign_started"));
        let finished: Value = serde_json::from_str(lines[4]).unwrap();
        assert_eq!(
            finished.get("source").and_then(Value::as_str),
            Some("computed")
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn disabled_sink_swallows_everything() {
        let telemetry = Telemetry::disabled();
        telemetry.campaign_started(1, 1);
        telemetry.campaign_finished(1, 0, 0, Duration::ZERO);
    }
}
