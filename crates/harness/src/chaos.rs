//! Deterministic fault injection for the campaign harness.
//!
//! A [`FaultPlan`] is a fixed, inspectable list of faults the supervisor
//! consults at each injection point: before a cell attempt (panic, stall),
//! around a cache store (IO error, torn write), and after each computed
//! cell (simulated interrupt). Faults target explicit cells and attempt
//! counts, so a chaos test states exactly what goes wrong and when — and
//! the *same plan with the same campaign* misbehaves identically on every
//! run. [`FaultPlan::storm`] derives a mixed plan pseudo-randomly from a
//! seed for soak-style tests; the derivation is a pure function of the
//! seed, never of wall-clock time or thread scheduling.
//!
//! The plan is harness-level: it breaks the machinery *around* the
//! simulator (workers, cache, telemetry), never the simulated results.
//! Simulator-level perturbations (jitter outliers, PLL overruns) live
//! behind the `chaos` feature of `mcd-time` instead.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::Duration;

use serde::{Deserialize, Number, Serialize, Value};

/// One injected fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the cell body on attempts `1..=attempts` of this cell.
    Panic {
        /// Target cell index (spec-expansion order).
        cell: usize,
        /// How many leading attempts panic. `u32::MAX` = every attempt
        /// (a deterministic, unrecoverable panic).
        attempts: u32,
    },
    /// Sleep inside the cell body before computing, simulating a hang. A
    /// supervisor deadline shorter than the stall sees a hung cell.
    Stall {
        /// Target cell index.
        cell: usize,
        /// How long the cell hangs.
        by: Duration,
    },
    /// The first `times` cache stores of this cell fail with an injected
    /// IO error (transient — backoff retries eventually succeed).
    StoreIoError {
        /// Target cell index.
        cell: usize,
        /// How many consecutive stores fail.
        times: u32,
    },
    /// The cell's cache entry is published torn: only the first `keep`
    /// bytes are written, simulating a crash mid-flush.
    TornStore {
        /// Target cell index.
        cell: usize,
        /// Bytes of the entry actually written.
        keep: usize,
    },
    /// After `computed` cells have finished computing, raise the campaign
    /// interrupt flag — the same path a SIGINT takes — so the run drains
    /// and leaves a resumable checkpoint.
    InterruptAfter {
        /// Computed-cell count that triggers the interrupt.
        computed: usize,
    },
    /// The worker *lies* about this cell: it computes honestly, then
    /// perturbs one deterministically chosen numeric field of the result
    /// before reporting it. The simulator itself is untouched — this
    /// models a hostile or broken remote host, and exists to exercise
    /// the grid audit/arbiter/quarantine path. Never part of
    /// [`FaultPlan::storm`], which feeds local campaigns where a lie
    /// would (correctly) break serial-byte convergence.
    Lie {
        /// Target cell index.
        cell: usize,
        /// Seed choosing which field is perturbed.
        seed: u64,
    },
}

/// A deterministic schedule of injected faults, shared across workers.
///
/// Counters (store failures seen, cells computed) are atomics: the plan is
/// consulted concurrently, but which faults fire for which cell is fixed
/// by the plan, not by scheduling.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    store_failures: Vec<AtomicU32>,
    computed: AtomicUsize,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan from an explicit fault list.
    pub fn new(faults: Vec<Fault>) -> FaultPlan {
        let store_failures = faults.iter().map(|_| AtomicU32::new(0)).collect();
        FaultPlan {
            faults,
            store_failures,
            computed: AtomicUsize::new(0),
        }
    }

    /// Derives a mixed plan pseudo-randomly (but reproducibly) from `seed`
    /// for a campaign of `cells` cells: roughly one fault per four cells,
    /// drawn from the transient kinds (recoverable panic, short stall,
    /// transient store error, torn store). Identical seeds give identical
    /// plans.
    pub fn storm(seed: u64, cells: usize) -> FaultPlan {
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut faults = Vec::new();
        for cell in 0..cells {
            if next() % 4 != 0 {
                continue;
            }
            faults.push(match next() % 4 {
                0 => Fault::Panic { cell, attempts: 1 },
                1 => Fault::Stall {
                    cell,
                    by: Duration::from_millis(5 + next() % 20),
                },
                2 => Fault::StoreIoError {
                    cell,
                    times: 1 + (next() % 2) as u32,
                },
                _ => Fault::TornStore {
                    cell,
                    keep: (next() % 64) as usize,
                },
            });
        }
        FaultPlan::new(faults)
    }

    /// The plan's fault list.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The panic message to raise for `(cell, attempt)`, if planned. An
    /// every-attempt fault (`attempts == u32::MAX`) panics with the *same*
    /// payload each time, like a real deterministic bug — so the retry
    /// loop's fail-fast classification sees it as deterministic. A finite
    /// fault varies its payload by attempt, like an environmental failure.
    pub fn panic_message(&self, cell: usize, attempt: u32) -> Option<String> {
        self.faults.iter().find_map(|f| match f {
            Fault::Panic {
                cell: c,
                attempts: n,
            } if *c == cell && attempt <= *n => Some(if *n == u32::MAX {
                format!("chaos: injected panic (cell {cell})")
            } else {
                format!("chaos: injected panic (cell {cell} attempt {attempt})")
            }),
            _ => None,
        })
    }

    /// The stall to inject before computing `cell`, if planned.
    pub fn stall(&self, cell: usize) -> Option<Duration> {
        self.faults.iter().find_map(|f| match f {
            Fault::Stall { cell: c, by } if *c == cell => Some(*by),
            _ => None,
        })
    }

    /// Consumes one planned store failure for `cell`: `true` means this
    /// store call must fail with an injected IO error. Each call burns one
    /// of the fault's `times`, so backoff retries eventually get through.
    pub fn take_store_io_error(&self, cell: usize) -> bool {
        for (fault, used) in self.faults.iter().zip(&self.store_failures) {
            if let Fault::StoreIoError { cell: c, times } = fault {
                if *c == cell {
                    let prior = used.fetch_add(1, Ordering::Relaxed);
                    if prior < *times {
                        return true;
                    }
                    used.fetch_sub(1, Ordering::Relaxed);
                    return false;
                }
            }
        }
        false
    }

    /// The torn-write byte budget for `cell`'s store, if planned.
    pub fn torn_store(&self, cell: usize) -> Option<usize> {
        self.faults.iter().find_map(|f| match f {
            Fault::TornStore { cell: c, keep } if *c == cell => Some(*keep),
            _ => None,
        })
    }

    /// Records one computed cell; `true` when the plan says the campaign
    /// should now be interrupted.
    pub fn record_computed(&self) -> bool {
        let done = self.computed.fetch_add(1, Ordering::Relaxed) + 1;
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::InterruptAfter { computed } if done >= *computed))
    }

    /// The lie seed for `cell`'s reported result, if planned.
    pub fn lie(&self, cell: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::Lie { cell: c, seed } if *c == cell => Some(*seed),
            _ => None,
        })
    }

    /// A plan in which the worker lies about *every* one of `cells`
    /// cells, with per-cell seeds derived from `seed`. Grid-test only:
    /// local campaigns have no audit layer to catch it.
    pub fn liar(seed: u64, cells: usize) -> FaultPlan {
        FaultPlan::new(
            (0..cells)
                .map(|cell| Fault::Lie {
                    cell,
                    seed: seed ^ cell as u64,
                })
                .collect(),
        )
    }
}

/// Perturbs one deterministically chosen numeric leaf of a JSON document
/// (object keys are canonically ordered, so "the `n`-th number" is well
/// defined). Returns `false` when the document holds no numbers.
pub fn corrupt_number(doc: &mut Value, seed: u64) -> bool {
    fn collect<'a>(v: &'a mut Value, out: &mut Vec<&'a mut Number>) {
        match v {
            Value::Number(n) => out.push(n),
            Value::Array(items) => items.iter_mut().for_each(|item| collect(item, out)),
            Value::Object(map) => map.values_mut().for_each(|item| collect(item, out)),
            Value::Null | Value::Bool(_) | Value::String(_) => {}
        }
    }
    let mut numbers = Vec::new();
    collect(doc, &mut numbers);
    if numbers.is_empty() {
        return false;
    }
    // splitmix64 finalizer, as FaultPlan::storm.
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let pick = ((z ^ (z >> 31)) % numbers.len() as u64) as usize;
    *numbers[pick] = match *numbers[pick] {
        Number::U64(n) => Number::U64(n ^ 1),
        Number::I64(n) => Number::I64(n ^ 1),
        Number::F64(0.0) => Number::F64(1.0),
        Number::F64(n) => Number::F64(-n),
    };
    true
}

/// Applies a seeded lie to a serializable result: re-encodes it through
/// the JSON data model, corrupts one numeric field, and decodes it back.
/// Returns `false` (leaving the value untouched) when the document has
/// no numbers or the corrupted form no longer decodes.
pub fn lie_about<T: Serialize + Deserialize>(value: &mut T, seed: u64) -> bool {
    let mut doc = value.to_value();
    if !corrupt_number(&mut doc, seed) {
        return false;
    }
    match T::from_value(&doc) {
        Ok(corrupted) => {
            *value = corrupted;
            true
        }
        Err(_) => false,
    }
}

/// A `Write` sink whose every `write` fails after the first `ok_writes`
/// calls — for testing that telemetry IO failures never affect results.
#[derive(Debug)]
pub struct FailingWriter {
    ok_writes: usize,
    seen: usize,
}

impl FailingWriter {
    /// A writer that accepts `ok_writes` writes, then fails all later ones.
    pub fn after(ok_writes: usize) -> FailingWriter {
        FailingWriter { ok_writes, seen: 0 }
    }
}

impl std::io::Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.seen += 1;
        if self.seen > self.ok_writes {
            Err(std::io::Error::other(
                "chaos: injected telemetry write failure",
            ))
        } else {
            Ok(buf.len())
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_faults_target_their_cell_and_attempt() {
        let plan = FaultPlan::new(vec![
            Fault::Panic {
                cell: 2,
                attempts: 1,
            },
            Fault::Stall {
                cell: 3,
                by: Duration::from_millis(50),
            },
        ]);
        assert!(plan.panic_message(2, 1).is_some());
        assert!(plan.panic_message(2, 2).is_none(), "only the first attempt");
        assert!(plan.panic_message(1, 1).is_none(), "wrong cell");
        assert_eq!(plan.stall(3), Some(Duration::from_millis(50)));
        assert_eq!(plan.stall(2), None);
    }

    #[test]
    fn store_io_errors_are_consumed_transiently() {
        let plan = FaultPlan::new(vec![Fault::StoreIoError { cell: 0, times: 2 }]);
        assert!(plan.take_store_io_error(0));
        assert!(plan.take_store_io_error(0));
        assert!(
            !plan.take_store_io_error(0),
            "budget exhausted: store succeeds"
        );
        assert!(!plan.take_store_io_error(1), "other cells unaffected");
    }

    #[test]
    fn interrupt_fires_at_the_planned_count() {
        let plan = FaultPlan::new(vec![Fault::InterruptAfter { computed: 2 }]);
        assert!(!plan.record_computed());
        assert!(plan.record_computed());
        assert!(plan.record_computed(), "stays raised after the threshold");
    }

    #[test]
    fn storm_is_a_pure_function_of_the_seed() {
        let a = FaultPlan::storm(7, 64);
        let b = FaultPlan::storm(7, 64);
        assert_eq!(a.faults(), b.faults());
        assert!(!a.is_empty(), "64 cells at ~1/4 density yields faults");
        let c = FaultPlan::storm(8, 64);
        assert_ne!(a.faults(), c.faults(), "different seed, different plan");
    }

    #[test]
    fn corrupt_number_is_a_deterministic_single_field_lie() {
        let doc = || serde_json::from_str::<Value>(r#"{"a": 3, "b": [1.5, {"c": 0.0}]}"#).unwrap();
        let (mut a, mut b) = (doc(), doc());
        assert!(corrupt_number(&mut a, 9));
        assert!(corrupt_number(&mut b, 9));
        assert_eq!(a, b, "same seed, same lie");
        assert_ne!(a, doc(), "the lie changes the document");
        let mut numberless = Value::String("x".to_string());
        assert!(!corrupt_number(&mut numberless, 1), "nothing to lie about");
    }

    #[test]
    fn liar_plan_targets_every_cell_with_derived_seeds() {
        let plan = FaultPlan::liar(42, 3);
        assert_eq!(plan.faults().len(), 3);
        for cell in 0..3 {
            assert_eq!(plan.lie(cell), Some(42 ^ cell as u64));
        }
        assert_eq!(plan.lie(3), None);
        assert_eq!(plan.panic_message(0, 1), None, "a liar never crashes");
    }

    #[test]
    fn failing_writer_fails_after_budget() {
        use std::io::Write;
        let mut w = FailingWriter::after(1);
        assert!(w.write(b"ok").is_ok());
        assert!(w.write(b"fails").is_err());
        assert!(w.flush().is_ok());
    }
}
