//! Per-cell fault isolation.
//!
//! A panicking cell must not take down the campaign (or its worker
//! thread): the cell body runs under [`std::panic::catch_unwind`], the
//! panic payload is captured as text, and the cell is retried up to a
//! bounded number of attempts before being reported as failed. The
//! simulator is deterministic, so a panic normally repeats — the retry
//! budget exists for environmental failures (and keeps one flaky cell from
//! silently producing a partial campaign).

use std::panic::{self, AssertUnwindSafe};

/// How persistently to rerun a failing cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 2 }
    }
}

/// A cell that failed all its attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// How many attempts were made.
    pub attempts: u32,
    /// The last attempt's panic payload, as text.
    pub message: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "failed after {} attempt(s): {}",
            self.attempts, self.message
        )
    }
}

impl std::error::Error for CellFailure {}

/// Renders a panic payload (the `Box<dyn Any>` from `catch_unwind`) as text.
fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string())
    }
}

/// Runs `body`, catching panics and retrying per `policy`. Returns the
/// successful value and the number of attempts it took, or the last
/// failure. `on_retry(attempt, message)` is called after each failed
/// attempt that will be retried, for telemetry.
pub fn run_isolated<T>(
    policy: RetryPolicy,
    mut on_retry: impl FnMut(u32, &str),
    body: impl Fn() -> T,
) -> Result<(T, u32), CellFailure> {
    let max_attempts = policy.max_attempts.max(1);
    let mut last = String::new();
    for attempt in 1..=max_attempts {
        match panic::catch_unwind(AssertUnwindSafe(&body)) {
            Ok(value) => return Ok((value, attempt)),
            Err(payload) => {
                last = payload_text(payload.as_ref());
                if attempt < max_attempts {
                    on_retry(attempt, &last);
                }
            }
        }
    }
    Err(CellFailure {
        attempts: max_attempts,
        message: last,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn success_passes_through_on_first_attempt() {
        let out = run_isolated(RetryPolicy::default(), |_, _| {}, || 7);
        assert_eq!(out, Ok((7, 1)));
    }

    #[test]
    fn deterministic_panic_exhausts_the_budget() {
        let retries = Cell::new(0);
        let out: Result<(u32, u32), _> = run_isolated(
            RetryPolicy { max_attempts: 3 },
            |_, _| retries.set(retries.get() + 1),
            || panic!("boom {}", 42),
        );
        assert_eq!(
            out,
            Err(CellFailure {
                attempts: 3,
                message: "boom 42".to_string()
            })
        );
        assert_eq!(
            retries.get(),
            2,
            "on_retry fires between attempts, not after the last"
        );
    }

    #[test]
    fn transient_panic_recovers() {
        let calls = Cell::new(0);
        let out = run_isolated(
            RetryPolicy { max_attempts: 2 },
            |_, _| {},
            || {
                calls.set(calls.get() + 1);
                if calls.get() == 1 {
                    panic!("flaky");
                }
                "ok"
            },
        );
        assert_eq!(out, Ok(("ok", 2)));
    }

    #[test]
    fn zero_attempt_policy_still_runs_once() {
        let out = run_isolated(RetryPolicy { max_attempts: 0 }, |_, _| {}, || 1);
        assert_eq!(out, Ok((1, 1)));
    }
}
