//! Per-cell fault isolation with deterministic-panic classification.
//!
//! A panicking cell must not take down the campaign (or its worker
//! thread): the cell body runs under [`std::panic::catch_unwind`], the
//! panic payload is captured as text, and the cell is retried up to a
//! bounded number of attempts before being reported as failed. The
//! simulator is deterministic, so a panic normally repeats — when two
//! consecutive attempts produce byte-identical payloads the failure is
//! classified *deterministic* and (by default) the remaining retry budget
//! is not burned on a guaranteed repeat. The budget exists for
//! environmental failures, whose payloads vary run to run.

use std::panic::{self, AssertUnwindSafe};

use crate::error::HarnessError;

/// How persistently to rerun a failing cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Stop early once two consecutive attempts panic with identical
    /// payloads — the panic is deterministic and will repeat forever.
    pub fail_fast_deterministic: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 2,
            fail_fast_deterministic: true,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and deterministic fail-fast.
    pub fn attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }
}

/// A cell that failed all its attempts (or failed fast).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// How many attempts were made.
    pub attempts: u32,
    /// The last attempt's panic payload, as text.
    pub message: String,
    /// `true` when consecutive attempts produced identical payloads: the
    /// panic is a pure function of the cell and retrying cannot help.
    pub deterministic: bool,
}

impl CellFailure {
    /// The structured form of this failure.
    pub fn to_error(&self) -> HarnessError {
        HarnessError::CellPanic {
            message: self.message.clone(),
            deterministic: self.deterministic,
        }
    }
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "failed after {} attempt(s){}: {}",
            self.attempts,
            if self.deterministic {
                " (deterministic)"
            } else {
                ""
            },
            self.message
        )
    }
}

impl std::error::Error for CellFailure {}

/// Renders a panic payload (the `Box<dyn Any>` from `catch_unwind`) as text.
pub(crate) fn payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string())
    }
}

/// Runs `body`, catching panics and retrying per `policy`. Returns the
/// successful value and the number of attempts it took, or the last
/// failure. `on_retry(attempt, message)` is called after each failed
/// attempt that will be retried, for telemetry.
pub fn run_isolated<T>(
    policy: RetryPolicy,
    on_retry: impl FnMut(u32, &str),
    body: impl Fn() -> T,
) -> Result<(T, u32), CellFailure> {
    run_attempts(policy, on_retry, |_attempt| {
        panic::catch_unwind(AssertUnwindSafe(&body)).map_err(|p| payload_text(p.as_ref()))
    })
}

/// The retry loop itself, over an attempt function that reports failure as
/// a rendered payload. Factored out so the supervisor can run attempts on
/// watchdog-monitored threads while reusing the same budget/fail-fast
/// logic (and so the logic is testable without real panics).
pub fn run_attempts<T>(
    policy: RetryPolicy,
    mut on_retry: impl FnMut(u32, &str),
    mut attempt_fn: impl FnMut(u32) -> Result<T, String>,
) -> Result<(T, u32), CellFailure> {
    let max_attempts = policy.max_attempts.max(1);
    let mut previous: Option<String> = None;
    for attempt in 1..=max_attempts {
        match attempt_fn(attempt) {
            Ok(value) => return Ok((value, attempt)),
            Err(message) => {
                let repeats = previous.as_deref() == Some(message.as_str());
                if repeats && policy.fail_fast_deterministic {
                    // Two identical payloads in a row: the failure is a pure
                    // function of the cell. Spend no more of the budget.
                    return Err(CellFailure {
                        attempts: attempt,
                        message,
                        deterministic: true,
                    });
                }
                if attempt == max_attempts {
                    return Err(CellFailure {
                        attempts: max_attempts,
                        message,
                        deterministic: repeats,
                    });
                }
                on_retry(attempt, &message);
                previous = Some(message);
            }
        }
    }
    unreachable!("the loop returns on the final attempt")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn success_passes_through_on_first_attempt() {
        let out = run_isolated(RetryPolicy::default(), |_, _| {}, || 7);
        assert_eq!(out, Ok((7, 1)));
    }

    #[test]
    fn deterministic_panic_fails_fast_instead_of_burning_the_budget() {
        let retries = Cell::new(0);
        let out: Result<(u32, u32), _> = run_isolated(
            RetryPolicy::attempts(5),
            |_, _| retries.set(retries.get() + 1),
            || panic!("boom {}", 42),
        );
        assert_eq!(
            out,
            Err(CellFailure {
                attempts: 2,
                message: "boom 42".to_string(),
                deterministic: true,
            }),
            "identical consecutive payloads stop the retry loop early"
        );
        assert_eq!(retries.get(), 1, "only the first failure schedules a retry");
    }

    #[test]
    fn fail_fast_off_exhausts_the_budget() {
        let retries = Cell::new(0);
        let policy = RetryPolicy {
            max_attempts: 3,
            fail_fast_deterministic: false,
        };
        let out: Result<(u32, u32), _> = run_isolated(
            policy,
            |_, _| retries.set(retries.get() + 1),
            || panic!("boom {}", 42),
        );
        assert_eq!(
            out,
            Err(CellFailure {
                attempts: 3,
                message: "boom 42".to_string(),
                deterministic: true,
            })
        );
        assert_eq!(
            retries.get(),
            2,
            "on_retry fires between attempts, not after the last"
        );
    }

    #[test]
    fn varying_payloads_are_not_classified_deterministic() {
        let calls = Cell::new(0u32);
        let out: Result<(u32, u32), _> = run_isolated(
            RetryPolicy::attempts(3),
            |_, _| {},
            || {
                calls.set(calls.get() + 1);
                panic!("transient failure #{}", calls.get());
            },
        );
        let failure = out.unwrap_err();
        assert_eq!(failure.attempts, 3, "varying payloads use the whole budget");
        assert!(!failure.deterministic);
        assert_eq!(failure.message, "transient failure #3");
    }

    #[test]
    fn transient_panic_recovers() {
        let calls = Cell::new(0);
        let out = run_isolated(
            RetryPolicy::attempts(2),
            |_, _| {},
            || {
                calls.set(calls.get() + 1);
                if calls.get() == 1 {
                    panic!("flaky");
                }
                "ok"
            },
        );
        assert_eq!(out, Ok(("ok", 2)));
    }

    #[test]
    fn zero_attempt_policy_still_runs_once() {
        let out = run_isolated(RetryPolicy::attempts(0), |_, _| {}, || 1);
        assert_eq!(out, Ok((1, 1)));
    }

    #[test]
    fn failure_converts_to_structured_error() {
        let failure = CellFailure {
            attempts: 2,
            message: "boom".into(),
            deterministic: true,
        };
        match failure.to_error() {
            HarnessError::CellPanic {
                message,
                deterministic,
            } => {
                assert_eq!(message, "boom");
                assert!(deterministic);
            }
            other => panic!("wrong variant: {other}"),
        }
        assert!(failure.to_string().contains("(deterministic)"));
    }
}
