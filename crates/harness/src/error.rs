//! Structured failure taxonomy for the campaign harness.
//!
//! Every way a campaign can go wrong — a panicking cell, a hung worker, a
//! corrupt or unwritable cache entry, a torn telemetry log, a checkpoint
//! that does not match the spec being resumed — is one variant of
//! [`HarnessError`], so callers (the supervisor, the CLI, tests) branch on
//! *kind* rather than scraping panic strings. The display form is stable
//! enough to log but the enum is the contract.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

use crate::spec::SpecError;

/// Which cache operation an IO failure interrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOp {
    /// Reading an entry.
    Load,
    /// Writing the temp file or renaming it into place.
    Store,
    /// Moving a corrupt entry into quarantine.
    Quarantine,
    /// Creating or sweeping the cache directory.
    Open,
}

impl CacheOp {
    /// Stable lowercase tag for telemetry.
    pub fn tag(&self) -> &'static str {
        match self {
            CacheOp::Load => "load",
            CacheOp::Store => "store",
            CacheOp::Quarantine => "quarantine",
            CacheOp::Open => "open",
        }
    }
}

/// Why a cache entry failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// The entry file exists but could not be read.
    Unreadable,
    /// The bytes are not valid JSON (torn write, truncation, bit rot).
    Malformed,
    /// The entry parses but is missing a required field.
    MissingField,
    /// The recorded key does not match the entry's file name.
    KeyMismatch,
    /// The result bytes do not hash to the recorded digest.
    DigestMismatch,
}

impl CorruptKind {
    /// Stable lowercase tag for telemetry.
    pub fn tag(&self) -> &'static str {
        match self {
            CorruptKind::Unreadable => "unreadable",
            CorruptKind::Malformed => "malformed",
            CorruptKind::MissingField => "missing-field",
            CorruptKind::KeyMismatch => "key-mismatch",
            CorruptKind::DigestMismatch => "digest-mismatch",
        }
    }
}

/// A structured harness failure.
#[derive(Debug)]
pub enum HarnessError {
    /// The campaign spec itself is invalid.
    Spec(SpecError),
    /// An IO failure in the result cache.
    CacheIo {
        /// Which operation failed.
        op: CacheOp,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A cache entry exists but failed validation.
    CacheCorrupt {
        /// The entry's hex key.
        key: String,
        /// What validation failed.
        kind: CorruptKind,
    },
    /// A cell attempt panicked.
    CellPanic {
        /// The panic payload rendered as text.
        message: String,
        /// `true` when consecutive attempts produced identical payloads —
        /// the panic is deterministic and further retries are pointless.
        deterministic: bool,
    },
    /// A cell ran past its watchdog deadline and was abandoned.
    CellStalled {
        /// How long the supervisor waited before giving up.
        waited: Duration,
    },
    /// A checkpoint manifest could not be read or written.
    CheckpointIo {
        /// The manifest path.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A checkpoint manifest parsed but is not usable.
    CheckpointInvalid {
        /// The manifest path.
        path: PathBuf,
        /// What was wrong with it.
        reason: String,
    },
    /// A checkpoint manifest describes a different campaign than the one
    /// being resumed (the spec digest changed).
    CheckpointMismatch {
        /// Digest recorded in the manifest.
        expected: String,
        /// Digest of the spec being resumed.
        found: String,
    },
    /// A telemetry log ends mid-line (torn tail after a crash).
    TelemetryTorn {
        /// The log path.
        path: PathBuf,
        /// Bytes of partial final line that were (or must be) dropped.
        tail_bytes: usize,
    },
    /// A telemetry log has an unparseable line *before* the tail — real
    /// corruption, not a crash artifact (a line-buffered writer can only
    /// tear the final line).
    TelemetryCorrupt {
        /// The log path.
        path: PathBuf,
        /// 1-based line number of the first bad line.
        line: usize,
    },
    /// A telemetry IO failure that could not be absorbed.
    TelemetryIo {
        /// The log path, when known.
        path: Option<PathBuf>,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::Spec(e) => write!(f, "invalid campaign spec: {e}"),
            HarnessError::CacheIo { op, path, source } => {
                write!(
                    f,
                    "cache {} failed at {}: {source}",
                    op.tag(),
                    path.display()
                )
            }
            HarnessError::CacheCorrupt { key, kind } => {
                write!(f, "cache entry {key} is corrupt ({})", kind.tag())
            }
            HarnessError::CellPanic {
                message,
                deterministic,
            } => {
                let kind = if *deterministic {
                    "deterministic panic"
                } else {
                    "panic"
                };
                write!(f, "cell {kind}: {message}")
            }
            HarnessError::CellStalled { waited } => {
                write!(
                    f,
                    "cell stalled past its {:.1}s deadline",
                    waited.as_secs_f64()
                )
            }
            HarnessError::CheckpointIo { path, source } => {
                write!(f, "checkpoint IO failed at {}: {source}", path.display())
            }
            HarnessError::CheckpointInvalid { path, reason } => {
                write!(f, "checkpoint {} is invalid: {reason}", path.display())
            }
            HarnessError::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint describes a different campaign (manifest spec digest {expected}, \
                 resumed spec digest {found})"
            ),
            HarnessError::TelemetryTorn { path, tail_bytes } => write!(
                f,
                "telemetry log {} has a torn final line ({tail_bytes} bytes)",
                path.display()
            ),
            HarnessError::TelemetryCorrupt { path, line } => write!(
                f,
                "telemetry log {} has corrupt line {line}",
                path.display()
            ),
            HarnessError::TelemetryIo { path, source } => match path {
                Some(p) => write!(f, "telemetry IO failed at {}: {source}", p.display()),
                None => write!(f, "telemetry IO failed: {source}"),
            },
        }
    }
}

impl std::error::Error for HarnessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HarnessError::Spec(e) => Some(e),
            HarnessError::CacheIo { source, .. }
            | HarnessError::CheckpointIo { source, .. }
            | HarnessError::TelemetryIo { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SpecError> for HarnessError {
    fn from(e: SpecError) -> Self {
        HarnessError::Spec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms_name_the_failure_kind() {
        let e = HarnessError::CacheCorrupt {
            key: "ab12".into(),
            kind: CorruptKind::DigestMismatch,
        };
        assert_eq!(
            e.to_string(),
            "cache entry ab12 is corrupt (digest-mismatch)"
        );

        let e = HarnessError::CellPanic {
            message: "boom".into(),
            deterministic: true,
        };
        assert!(e.to_string().contains("deterministic panic"));

        let e = HarnessError::CheckpointMismatch {
            expected: "aa".into(),
            found: "bb".into(),
        };
        assert!(e.to_string().contains("different campaign"));
    }

    #[test]
    fn spec_errors_convert() {
        let e: HarnessError = SpecError::Empty("seeds").into();
        assert!(matches!(e, HarnessError::Spec(SpecError::Empty("seeds"))));
    }
}
