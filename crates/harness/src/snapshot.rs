//! Wall-clock performance snapshots of campaign runs.
//!
//! A [`BenchSnapshot`] freezes the per-cell and total wall times of one
//! campaign into a JSON document (`BENCH_*.json` at the repo root). Paired
//! with a cold cache it measures raw simulator throughput; committed
//! snapshots let performance PRs carry their evidence, and later sessions
//! compare like against like by re-running the same spec.

use serde::Serialize;

use crate::{CampaignReport, CampaignSpec, CellOutcome};

/// Schema tag embedded in every snapshot document. v2: adds the per-cell
/// and total pipeline-phase breakdown (trace run / slack analysis /
/// clustering / simulation seconds).
pub const SNAPSHOT_SCHEMA: &str = "mcd-bench-snapshot/2";

/// One cell's wall time within a snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct CellTiming {
    /// Human-readable cell label (`benchmark/seed/model`).
    pub cell: String,
    /// Wall time spent on the cell, seconds.
    pub elapsed_s: f64,
    /// `computed`, `cached`, or `failed`.
    pub outcome: String,
    /// Seconds in the full-speed traced run (zero for cached cells).
    pub trace_run_s: f64,
    /// Seconds in DAG construction + shaker slack analysis.
    pub slack_s: f64,
    /// Seconds in greedy schedule clustering.
    pub cluster_s: f64,
    /// Seconds in dynamic-run simulation (refinement, probes, the global
    /// search, and the five configuration runs).
    pub simulate_s: f64,
}

/// A campaign wall-clock snapshot, serializable to `BENCH_*.json`.
#[derive(Debug, Clone, Serialize)]
pub struct BenchSnapshot {
    /// Document format tag ([`SNAPSHOT_SCHEMA`]).
    pub schema: String,
    /// Committed instructions per simulation run.
    pub instructions: u64,
    /// Seeds swept.
    pub seeds: Vec<u64>,
    /// DVFS models swept.
    pub models: Vec<String>,
    /// Benchmarks run (the empty-means-all default already applied).
    pub benchmarks: Vec<String>,
    /// Cells computed this run (a cold cache makes this every cell).
    pub computed: usize,
    /// Cells served from the cache (non-zero means the snapshot does NOT
    /// measure raw simulator throughput).
    pub cached: usize,
    /// Cells that failed every attempt.
    pub failed: usize,
    /// Total campaign wall time, seconds.
    pub wall_s: f64,
    /// Slowest single cell, seconds.
    pub max_cell_s: f64,
    /// Total seconds in traced runs across all computed cells.
    pub trace_run_s: f64,
    /// Total seconds in slack analysis across all computed cells.
    pub slack_s: f64,
    /// Total seconds in schedule clustering across all computed cells.
    pub cluster_s: f64,
    /// Total seconds in dynamic-run simulation across all computed cells.
    pub simulate_s: f64,
    /// Per-cell wall times, in spec-expansion order.
    pub cells: Vec<CellTiming>,
}

impl BenchSnapshot {
    /// Builds a snapshot from a finished campaign.
    pub fn from_report(spec: &CampaignSpec, report: &CampaignReport) -> BenchSnapshot {
        let cells: Vec<CellTiming> = report
            .cells
            .iter()
            .map(|c| CellTiming {
                cell: c.cell.label(),
                elapsed_s: c.elapsed.as_secs_f64(),
                outcome: match &c.outcome {
                    CellOutcome::Cached(_) => "cached".to_string(),
                    CellOutcome::Computed { .. } => "computed".to_string(),
                    CellOutcome::Failed(_) => "failed".to_string(),
                    CellOutcome::Stalled { .. } => "stalled".to_string(),
                    CellOutcome::Skipped => "skipped".to_string(),
                },
                trace_run_s: c.phases.trace_run.as_secs_f64(),
                slack_s: c.phases.slack.as_secs_f64(),
                cluster_s: c.phases.cluster.as_secs_f64(),
                simulate_s: c.phases.simulate.as_secs_f64(),
            })
            .collect();
        BenchSnapshot {
            schema: SNAPSHOT_SCHEMA.to_string(),
            instructions: spec.instructions,
            seeds: spec.seeds.clone(),
            models: spec.models.iter().map(|m| format!("{m:?}")).collect(),
            benchmarks: spec.benchmark_names(),
            computed: report.computed(),
            cached: report.cached(),
            failed: report.failed(),
            wall_s: report.wall.as_secs_f64(),
            max_cell_s: cells.iter().map(|c| c.elapsed_s).fold(0.0, f64::max),
            trace_run_s: cells.iter().map(|c| c.trace_run_s).sum(),
            slack_s: cells.iter().map(|c| c.slack_s).sum(),
            cluster_s: cells.iter().map(|c| c.cluster_s).sum(),
            simulate_s: cells.iter().map(|c| c.simulate_s).sum(),
            cells,
        }
    }

    /// Pretty JSON for the `BENCH_*.json` file (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut json = serde_json::to_string_pretty(self).expect("snapshot serializes");
        json.push('\n');
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Campaign, ResultCache, Telemetry};
    use mcd_time::DvfsModel;

    #[test]
    fn snapshot_captures_cold_campaign_timing() {
        let mut spec = CampaignSpec::paper(1, 400, DvfsModel::XScale);
        spec.benchmarks = vec!["adpcm".to_string(), "gcc".to_string()];
        let dir = std::env::temp_dir().join(format!("mcd-snapshot-test-{}", std::process::id()));
        let cache = ResultCache::open(&dir).expect("create cache dir");
        let report = Campaign::new(spec.clone())
            .run(&cache, &Telemetry::disabled())
            .expect("valid spec");
        let snap = BenchSnapshot::from_report(&spec, &report);
        assert_eq!(snap.schema, SNAPSHOT_SCHEMA);
        assert_eq!(snap.cells.len(), 2);
        assert_eq!(snap.computed + snap.cached, 2);
        assert_eq!(snap.failed, 0);
        assert_eq!(snap.benchmarks, vec!["adpcm", "gcc"]);
        assert!(snap.wall_s > 0.0);
        assert!(snap.max_cell_s <= snap.wall_s + 1e-9);
        if snap.computed == 2 {
            assert!(
                snap.simulate_s > 0.0 && snap.trace_run_s > 0.0,
                "computed cells must carry a phase breakdown: {snap:?}"
            );
            for c in &snap.cells {
                let phase_sum = c.trace_run_s + c.slack_s + c.cluster_s + c.simulate_s;
                assert!(
                    phase_sum <= c.elapsed_s + 1e-9,
                    "phases exceed the cell span: {c:?}"
                );
            }
        }
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"mcd-bench-snapshot/2\""));
        assert!(json.contains("\"simulate_s\""));
        assert!(json.ends_with('\n'));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
