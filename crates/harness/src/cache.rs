//! Content-addressed result cache with corruption quarantine.
//!
//! A cell's cache key is the SHA-256 digest of the *canonical compact JSON*
//! of its key material: a format-version tag, the cell parameters (seed,
//! instruction window, DVFS model, dilation targets) and the full benchmark
//! profile the cell runs. The JSON layer serializes objects through
//! `BTreeMap`, so keys are emitted in sorted order and the digest is
//! independent of struct field declaration order — renaming or reordering
//! fields with the same values hashes identically, while any change to a
//! parameter *value* (or to the profile definition itself) produces a new
//! key and forces recomputation.
//!
//! Entries are plain JSON files named `<hex-digest>.json` under the cache
//! directory, written atomically (temp file + rename) so a crashed or
//! concurrent writer can never leave a truncated entry at the published
//! name. Each entry additionally records the SHA-256 of its result's
//! canonical JSON, so *any* byte damage to the result — torn flush, bit
//! rot, hand edits — is detected on load. [`ResultCache::probe`] reports a
//! damaged entry as [`CacheProbe::Corrupt`]; the supervisor then moves it
//! to `quarantine/` (preserving the evidence) and recomputes. A corrupt
//! entry is never returned as a hit. Stale `.{key}.tmp` files left by a
//! crash between write and rename are swept on [`ResultCache::open`].

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::Serialize;
use serde_json::Value;

use mcd_core::BenchmarkResults;

use crate::error::CorruptKind;
use crate::spec::CellSpec;

/// Bumped whenever the meaning of a cached result changes (simulator
/// semantics, result schema, entry format), invalidating all prior
/// entries. v2: entries carry a result digest.
pub const CACHE_FORMAT_VERSION: u32 = 2;

/// Key-material schema tag for cells that exercise the online-policy axis.
/// Policy-free cells omit it (and serialize their spec without the
/// `policies` key), keeping every pre-policy cache key — and therefore
/// every warm cache — exactly as it was.
pub const CELL_KEY_SCHEMA: &str = "mcd-cell-key/2";

/// Name of the quarantine subdirectory under the cache root.
pub const QUARANTINE_DIR: &str = "quarantine";

/// How many entries the campaign-startup spot check re-verifies (a fast
/// sample, not a full scrub — `mcd-cli cache verify` walks everything).
pub const SPOT_CHECK_LIMIT: usize = 8;

/// A cell's content hash: 64 lowercase hex characters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey(String);

impl CacheKey {
    /// Derives the key for a cell.
    pub fn of(cell: &CellSpec) -> CacheKey {
        // Assemble the key material as a JSON object. BTreeMap-backed
        // objects mean the serialized bytes are canonical: field order in
        // the source structs cannot influence the digest.
        let mut material = serde_json::Map::new();
        material.insert("format".to_string(), CACHE_FORMAT_VERSION.to_value());
        material.insert("cell".to_string(), cell.to_value());
        material.insert("profile".to_string(), cell.profile().to_value());
        if !cell.policies.is_empty() {
            material.insert("schema".to_string(), CELL_KEY_SCHEMA.to_value());
        }
        let canonical =
            serde_json::to_string(&Value::Object(material)).expect("JSON writing is infallible");
        CacheKey(sha256::hex_digest(canonical.as_bytes()))
    }

    /// The 64-character hex digest.
    pub fn hex(&self) -> &str {
        &self.0
    }

    /// Reconstructs a key from its hex digest (e.g. an entry filename);
    /// `None` unless the string is exactly 64 lowercase hex characters.
    pub fn from_hex(hex: &str) -> Option<CacheKey> {
        let well_formed = hex.len() == 64
            && hex
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b));
        well_formed.then(|| CacheKey(hex.to_string()))
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// SHA-256 of arbitrary bytes as lowercase hex — the digest the cache uses
/// for keys and entry integrity, shared with the checkpoint manifest.
pub(crate) fn sha256_hex(data: &[u8]) -> String {
    sha256::hex_digest(data)
}

/// Canonical compact JSON of a result — the bytes the entry digest covers.
fn result_canonical_json(result: &BenchmarkResults) -> String {
    serde_json::to_string(&result.to_value()).expect("JSON writing is infallible")
}

/// What a validated cache lookup found.
// Probes happen once per cell (hundreds of milliseconds apart), so the
// size skew between Hit and the tag-only variants costs nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum CacheProbe {
    /// No entry on disk.
    Miss,
    /// A valid entry whose result digest checks out.
    Hit(BenchmarkResults),
    /// An entry exists but failed validation and must not be trusted.
    Corrupt(CorruptKind),
}

/// One corrupt entry found by a [`ResultCache::scrub`] walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubFinding {
    /// The entry's 64-hex cache key.
    pub key: String,
    /// Which validation step the entry failed.
    pub kind: CorruptKind,
    /// Where the bytes were moved (`None` on a read-only verify).
    pub evidence: Option<PathBuf>,
}

/// Report from re-validating every published cache entry.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Entries examined.
    pub checked: usize,
    /// Corrupt entries found (quarantined unless the walk was read-only).
    pub findings: Vec<ScrubFinding>,
}

impl ScrubReport {
    /// Whether every entry validated.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Result of the fast campaign-startup integrity sample
/// ([`ResultCache::spot_check`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SpotCheck {
    /// Entries re-verified.
    pub checked: usize,
    /// Entries found corrupt. The bytes are left in place: the claim-time
    /// probe quarantines them with full cell context (telemetry, evidence,
    /// recomputation) when the campaign reaches the cell.
    pub corrupt: usize,
}

/// On-disk store of finished cell results, addressed by [`CacheKey`].
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Opens (creating if needed) a cache rooted at `dir`, sweeping any
    /// stale `.{key}.tmp` files a crashed writer left behind (a crash
    /// between `fs::write` and `fs::rename` would otherwise leak them
    /// forever).
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let cache = ResultCache { dir: dir.into() };
        fs::create_dir_all(&cache.dir)?;
        cache.sweep_stale_tmp()?;
        Ok(cache)
    }

    /// Removes leftover temp files from interrupted stores, returning how
    /// many were swept. Safe because a temp file is only meaningful to the
    /// store call that created it — once that call is gone (crashed), the
    /// file is garbage by construction. The quarantine subdirectory is
    /// swept by the same rule, so orphaned temp files dragged there by a
    /// crash mid-quarantine (or by tooling shuffling entries) do not
    /// accumulate as pseudo-evidence forever.
    pub fn sweep_stale_tmp(&self) -> io::Result<usize> {
        let mut swept = crate::durable::sweep_stale_tmp(&self.dir)?;
        let qdir = self.quarantine_dir();
        if qdir.is_dir() {
            swept += crate::durable::sweep_stale_tmp(&qdir)?;
        }
        Ok(swept)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The quarantine directory (not created until first used).
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(format!("{}.json", key.hex()))
    }

    /// Whether an entry exists for `key` (without parsing it).
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.entry_path(key).is_file()
    }

    /// Looks up `key` with full validation: presence, JSON shape, recorded
    /// key, and the result digest. Distinguishes a clean miss from a
    /// corrupt entry so the caller can quarantine the latter.
    pub fn probe(&self, key: &CacheKey) -> CacheProbe {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return CacheProbe::Miss,
            Err(_) => return CacheProbe::Corrupt(CorruptKind::Unreadable),
        };
        let Ok(entry) = serde_json::from_str::<Value>(&text) else {
            return CacheProbe::Corrupt(CorruptKind::Malformed);
        };
        let (Some(recorded), Some(digest), Some(result)) = (
            entry.get("key").and_then(Value::as_str),
            entry.get("digest").and_then(Value::as_str),
            entry.get("result"),
        ) else {
            return CacheProbe::Corrupt(CorruptKind::MissingField);
        };
        if recorded != key.hex() {
            return CacheProbe::Corrupt(CorruptKind::KeyMismatch);
        }
        let Ok(result) = serde_json::from_value::<BenchmarkResults>(result) else {
            return CacheProbe::Corrupt(CorruptKind::Malformed);
        };
        // The digest covers the result's canonical JSON: any mutation that
        // survives parsing still changes these bytes and is caught here.
        if sha256::hex_digest(result_canonical_json(&result).as_bytes()) != digest {
            return CacheProbe::Corrupt(CorruptKind::DigestMismatch);
        }
        CacheProbe::Hit(result)
    }

    /// Loads the cached result for `key`, or `None` on a miss.
    ///
    /// Corrupt entries degrade to a miss here; use [`ResultCache::probe`]
    /// to tell them apart (and quarantine them).
    pub fn load(&self, key: &CacheKey) -> Option<BenchmarkResults> {
        match self.probe(key) {
            CacheProbe::Hit(result) => Some(result),
            CacheProbe::Miss | CacheProbe::Corrupt(_) => None,
        }
    }

    /// Moves the entry for `key` into `quarantine/`, preserving the bytes
    /// as evidence, and returns the quarantined path. The entry slot is
    /// then free for an honest recomputation.
    pub fn quarantine(&self, key: &CacheKey) -> io::Result<PathBuf> {
        let qdir = self.quarantine_dir();
        fs::create_dir_all(&qdir)?;
        let dest = qdir.join(format!("{}.json", key.hex()));
        fs::rename(self.entry_path(key), &dest)?;
        Ok(dest)
    }

    fn entry_json(&self, key: &CacheKey, cell: &CellSpec, result: &BenchmarkResults) -> String {
        let mut entry = serde_json::Map::new();
        entry.insert("key".to_string(), Value::String(key.hex().to_string()));
        entry.insert("cell".to_string(), cell.to_value());
        entry.insert(
            "digest".to_string(),
            Value::String(sha256::hex_digest(result_canonical_json(result).as_bytes())),
        );
        entry.insert("result".to_string(), result.to_value());
        serde_json::to_string_pretty(&Value::Object(entry)).expect("JSON writing is infallible")
    }

    /// Stores `result` under `key`, recording the cell spec alongside it so
    /// entries are self-describing for `campaign status` and humans, plus
    /// the result digest that [`ResultCache::probe`] verifies.
    pub fn store(
        &self,
        key: &CacheKey,
        cell: &CellSpec,
        result: &BenchmarkResults,
    ) -> io::Result<()> {
        let text = self.entry_json(key, cell, result);
        // Atomic publish: never expose a partially written entry. The temp
        // name includes the key, so concurrent writers of the *same* cell
        // race benignly (they write identical bytes).
        let tmp = self.dir.join(format!(".{}.tmp", key.hex()));
        fs::write(&tmp, text)?;
        fs::rename(&tmp, self.entry_path(key))
    }

    /// Publishes a deliberately torn entry — the first `keep` bytes only —
    /// at the final path, simulating a crash mid-flush. Test-only fault
    /// injection for the chaos suite; never part of a correct store path.
    #[doc(hidden)]
    pub fn store_torn(
        &self,
        key: &CacheKey,
        cell: &CellSpec,
        result: &BenchmarkResults,
        keep: usize,
    ) -> io::Result<()> {
        let text = self.entry_json(key, cell, result);
        let keep = keep.min(text.len());
        fs::write(self.entry_path(key), &text.as_bytes()[..keep])
    }

    /// Overwrites the published entry for `key` with arbitrary bytes —
    /// test-only corruption for the chaos suite.
    #[doc(hidden)]
    pub fn corrupt_with(&self, key: &CacheKey, bytes: &[u8]) -> io::Result<()> {
        fs::write(self.entry_path(key), bytes)
    }

    /// Reads the raw published bytes of an entry, if present (test support).
    #[doc(hidden)]
    pub fn raw_entry(&self, key: &CacheKey) -> Option<Vec<u8>> {
        fs::read(self.entry_path(key)).ok()
    }

    /// Every published entry key, sorted by filename so walks are
    /// deterministic. Non-entry files in the cache directory (the rollup,
    /// checkpoints, quarantine evidence) are skipped by construction:
    /// only `<64-hex>.json` names parse as keys.
    pub fn keys(&self) -> io::Result<Vec<CacheKey>> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if !path.is_file() {
                continue;
            }
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if let Some(key) = name.strip_suffix(".json").and_then(CacheKey::from_hex) {
                keys.push(key);
            }
        }
        keys.sort_by(|a, b| a.hex().cmp(b.hex()));
        Ok(keys)
    }

    /// Re-validates every published entry — presence, JSON shape, recorded
    /// key, result digest. With `quarantine` true (a scrub), corrupt
    /// entries are moved to `quarantine/` as evidence, freeing the slot
    /// for recomputation; false (a verify) reports without touching the
    /// bytes.
    pub fn scrub(&self, quarantine: bool) -> io::Result<ScrubReport> {
        let mut report = ScrubReport::default();
        for key in self.keys()? {
            report.checked += 1;
            let kind = match self.probe(&key) {
                CacheProbe::Hit(_) => continue,
                // The file vanished between listing and probing: an entry
                // that is not there cannot be corrupt.
                CacheProbe::Miss => continue,
                CacheProbe::Corrupt(kind) => kind,
            };
            let evidence = if quarantine {
                Some(self.quarantine(&key)?)
            } else {
                None
            };
            report.findings.push(ScrubFinding {
                key: key.hex().to_string(),
                kind,
                evidence,
            });
        }
        Ok(report)
    }

    /// Fast startup integrity sample: re-validates up to `limit` entries
    /// in deterministic (sorted-key) order, reporting (not repairing) any
    /// corruption found — the claim-time probe ladder quarantines and
    /// recomputes with full cell context when the campaign reaches the
    /// cell. Best-effort: an unreadable directory checks nothing.
    pub fn spot_check(&self, limit: usize) -> SpotCheck {
        let mut spot = SpotCheck::default();
        let keys = self.keys().unwrap_or_default();
        for key in keys.iter().take(limit) {
            spot.checked += 1;
            if matches!(self.probe(key), CacheProbe::Corrupt(_)) {
                spot.corrupt += 1;
            }
        }
        spot
    }
}

/// Minimal SHA-256 (FIPS 180-4). Self-contained because the build
/// environment has no access to crates.io.
mod sha256 {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];

    const H0: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    fn compress(state: &mut [u32; 8], block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
    }

    /// SHA-256 of `data` as 64 lowercase hex characters.
    pub fn hex_digest(data: &[u8]) -> String {
        let mut state = H0;
        let mut blocks = data.chunks_exact(64);
        for block in blocks.by_ref() {
            compress(&mut state, block);
        }

        // Padding: 0x80, zeros, then the bit length as a big-endian u64.
        let mut tail = [0u8; 128];
        let rem = blocks.remainder();
        tail[..rem.len()].copy_from_slice(rem);
        tail[rem.len()] = 0x80;
        let tail_len = if rem.len() < 56 { 64 } else { 128 };
        let bits = (data.len() as u64) * 8;
        tail[tail_len - 8..tail_len].copy_from_slice(&bits.to_be_bytes());
        for block in tail[..tail_len].chunks_exact(64) {
            compress(&mut state, block);
        }

        let mut hex = String::with_capacity(64);
        for word in state {
            use std::fmt::Write;
            write!(hex, "{word:08x}").expect("writing to a String cannot fail");
        }
        hex
    }

    #[cfg(test)]
    mod tests {
        use super::hex_digest;

        #[test]
        fn fips_180_4_vectors() {
            assert_eq!(
                hex_digest(b""),
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
            );
            assert_eq!(
                hex_digest(b"abc"),
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
            );
            assert_eq!(
                hex_digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
            );
            // 56-byte message: padding spills into a second block.
            assert_eq!(
                hex_digest(&[0x61u8; 56]),
                "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a"
            );
            // One full block exactly.
            assert_eq!(
                hex_digest(&[0u8; 64]),
                "f5a5fd42d16a20302798ef6ed309979b43003d2320d9f0e8ea9831a92759fb4b"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_time::DvfsModel;

    fn cell() -> CellSpec {
        CellSpec {
            benchmark: "gcc".to_string(),
            seed: 5,
            instructions: 1_000,
            model: DvfsModel::XScale,
            thetas: [0.01, 0.05],
            policies: Vec::new(),
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mcd-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn key_is_stable_and_parameter_sensitive() {
        let base = CacheKey::of(&cell());
        assert_eq!(base, CacheKey::of(&cell()), "same cell, same key");
        assert_eq!(base.hex().len(), 64);

        let mut other = cell();
        other.seed = 6;
        assert_ne!(base, CacheKey::of(&other), "seed must change the key");

        let mut other = cell();
        other.model = DvfsModel::Transmeta;
        assert_ne!(base, CacheKey::of(&other), "model must change the key");
    }

    #[test]
    fn policies_are_part_of_the_key() {
        let base = CacheKey::of(&cell());
        let mut governed = cell();
        governed.policies = vec!["attack-decay".to_string()];
        let governed_key = CacheKey::of(&governed);
        assert_ne!(base, governed_key, "a governed cell is a different cell");

        let mut tuned = governed.clone();
        tuned.policies = vec!["attack-decay:decay=0.01".to_string()];
        assert_ne!(
            governed_key,
            CacheKey::of(&tuned),
            "policy parameters must change the key"
        );

        let mut two = governed.clone();
        two.policies.push("queue-pi".to_string());
        assert_ne!(
            governed_key,
            CacheKey::of(&two),
            "adding a policy must change the key"
        );
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = scratch("roundtrip");
        let cache = ResultCache::open(&dir).expect("create cache dir");
        let cell = cell();
        let key = CacheKey::of(&cell);
        assert!(!cache.contains(&key));
        assert!(cache.load(&key).is_none());
        assert!(matches!(cache.probe(&key), CacheProbe::Miss));

        let result = cell.run();
        cache.store(&key, &cell, &result).expect("store entry");
        assert!(cache.contains(&key));
        let loaded = cache.load(&key).expect("entry is loadable");
        assert_eq!(
            serde_json::to_string(&loaded).unwrap(),
            serde_json::to_string(&result).unwrap(),
            "cached bytes reproduce the computed result exactly"
        );

        // Corrupt entries degrade to a miss through `load`...
        fs::write(dir.join(format!("{}.json", key.hex())), "{not json").unwrap();
        assert!(cache.load(&key).is_none());
        // ...and are named corrupt by `probe`.
        assert!(matches!(
            cache.probe(&key),
            CacheProbe::Corrupt(CorruptKind::Malformed)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn value_mutations_that_stay_valid_json_are_caught_by_the_digest() {
        let dir = scratch("digest");
        let cache = ResultCache::open(&dir).expect("create cache dir");
        let cell = cell();
        let key = CacheKey::of(&cell);
        cache.store(&key, &cell, &cell.run()).expect("store entry");

        // Flip one digit inside the result payload: still valid JSON, still
        // the right key — only the digest can catch it.
        let raw = String::from_utf8(cache.raw_entry(&key).unwrap()).unwrap();
        let result_at = raw.find("\"result\"").expect("entry has a result field");
        let digit_at = raw[result_at..]
            .find(|c: char| c.is_ascii_digit())
            .map(|i| result_at + i)
            .expect("result has a digit");
        let mut bytes = raw.into_bytes();
        bytes[digit_at] = if bytes[digit_at] == b'9' { b'8' } else { b'9' };
        cache.corrupt_with(&key, &bytes).unwrap();

        assert!(matches!(
            cache.probe(&key),
            CacheProbe::Corrupt(CorruptKind::DigestMismatch)
        ));
        assert!(
            cache.load(&key).is_none(),
            "a tampered result is never a hit"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_store_is_detected_and_quarantined() {
        let dir = scratch("torn");
        let cache = ResultCache::open(&dir).expect("create cache dir");
        let cell = cell();
        let key = CacheKey::of(&cell);
        cache
            .store_torn(&key, &cell, &cell.run(), 120)
            .expect("publish torn entry");
        assert!(cache.contains(&key), "the torn entry is on disk");
        assert!(matches!(
            cache.probe(&key),
            CacheProbe::Corrupt(CorruptKind::Malformed)
        ));

        let evidence = cache.quarantine(&key).expect("quarantine entry");
        assert!(evidence.starts_with(cache.quarantine_dir()));
        assert!(evidence.is_file(), "evidence preserved");
        assert!(!cache.contains(&key), "slot is free for recomputation");
        assert!(matches!(cache.probe(&key), CacheProbe::Miss));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_hex_round_trips_and_rejects_garbage() {
        let key = CacheKey::of(&cell());
        assert_eq!(CacheKey::from_hex(key.hex()), Some(key.clone()));
        assert_eq!(CacheKey::from_hex("campaign-rollup"), None);
        assert_eq!(CacheKey::from_hex(&"A".repeat(64)), None, "uppercase");
        assert_eq!(CacheKey::from_hex(&"a".repeat(63)), None, "short");
    }

    #[test]
    fn scrub_quarantines_exactly_the_corrupt_entries() {
        let dir = scratch("scrub");
        let cache = ResultCache::open(&dir).expect("create cache dir");
        let mut keys = Vec::new();
        for seed in 0..4 {
            let mut c = cell();
            c.seed = seed;
            let key = CacheKey::of(&c);
            cache.store(&key, &c, &c.run()).expect("store entry");
            keys.push(key);
        }
        // Non-entry files must be ignored by the walk.
        fs::write(dir.join("campaign-rollup.json"), "{not an entry").unwrap();
        assert_eq!(cache.keys().unwrap().len(), 4);

        cache.corrupt_with(&keys[1], b"{garbage").unwrap();
        cache.corrupt_with(&keys[3], b"").unwrap();

        // Read-only verify: reports, touches nothing.
        let verify = cache.scrub(false).expect("verify");
        assert_eq!(verify.checked, 4);
        assert_eq!(verify.findings.len(), 2);
        assert!(!verify.clean());
        assert!(verify.findings.iter().all(|f| f.evidence.is_none()));
        assert!(cache.contains(&keys[1]), "verify leaves the bytes");

        // Scrub: corrupt entries move to quarantine, good ones survive.
        let scrub = cache.scrub(true).expect("scrub");
        assert_eq!(scrub.findings.len(), 2);
        for f in &scrub.findings {
            let evidence = f.evidence.as_ref().expect("quarantined");
            assert!(evidence.starts_with(cache.quarantine_dir()));
            assert!(evidence.is_file());
        }
        assert!(!cache.contains(&keys[1]));
        assert!(!cache.contains(&keys[3]));
        assert!(cache.load(&keys[0]).is_some(), "good entries untouched");
        assert!(cache.load(&keys[2]).is_some());
        assert!(cache.scrub(true).expect("rescrub").clean(), "idempotent");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn spot_check_samples_in_deterministic_order() {
        let dir = scratch("spot");
        let cache = ResultCache::open(&dir).expect("create cache dir");
        let mut keys = Vec::new();
        for seed in 0..3 {
            let mut c = cell();
            c.seed = seed;
            let key = CacheKey::of(&c);
            cache.store(&key, &c, &c.run()).expect("store entry");
            keys.push(key.hex().to_string());
        }
        keys.sort();
        // Corrupt the first key in walk order; limit 2 must catch it.
        let first = CacheKey::from_hex(&keys[0]).unwrap();
        cache.corrupt_with(&first, b"{broken").unwrap();
        let spot = cache.spot_check(2);
        assert_eq!(
            spot,
            SpotCheck {
                checked: 2,
                corrupt: 1
            }
        );
        // Detection only: the bytes stay put for the claim-time probe to
        // quarantine with full cell context.
        assert!(
            matches!(cache.probe(&first), CacheProbe::Corrupt(_)),
            "spot check reports without repairing"
        );
        // A limit past the population checks everything.
        let spot = cache.spot_check(SPOT_CHECK_LIMIT);
        assert_eq!(
            spot,
            SpotCheck {
                checked: 3,
                corrupt: 1
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_tmp_files() {
        let dir = scratch("sweep");
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join(format!(".{}.tmp", "ab".repeat(32)));
        fs::write(&stale, "half-written").unwrap();
        // A published entry and a quarantine dir must survive the sweep.
        let keeper = dir.join("keeper.json");
        fs::write(&keeper, "{}").unwrap();
        let qdir = dir.join(QUARANTINE_DIR);
        fs::create_dir_all(&qdir).unwrap();
        // An orphaned temp file under quarantine/ is swept too; quarantined
        // evidence entries are not.
        let qstale = qdir.join(format!(".{}.tmp", "cd".repeat(32)));
        fs::write(&qstale, "orphan").unwrap();
        let evidence = qdir.join("evidence.json");
        fs::write(&evidence, "{torn").unwrap();

        let cache = ResultCache::open(&dir).expect("open sweeps");
        assert!(!stale.exists(), "stale tmp swept on open");
        assert!(!qstale.exists(), "quarantine orphan swept on open");
        assert!(keeper.exists(), "real entries untouched");
        assert!(evidence.exists(), "quarantined evidence untouched");
        assert!(cache.quarantine_dir().exists(), "quarantine dir untouched");
        assert_eq!(cache.sweep_stale_tmp().unwrap(), 0, "nothing left to sweep");
        let _ = fs::remove_dir_all(&dir);
    }
}
