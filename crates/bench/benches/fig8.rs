//! Figure 8 — frequency changes for `art` chosen by the off-line tool for
//! the dynamic-1 % configuration, under the Transmeta and XScale models.
//!
//! The paper plots per-domain frequency versus time over a 30 ms window;
//! we print the equivalent piecewise-constant series (cluster plans) for
//! the integer, load/store and floating-point domains over the simulated
//! window. Under XScale the tool makes more, and wider-ranging, frequency
//! changes than under Transmeta — the figure's point.

use mcd_offline::{derive_schedule, OfflineConfig};
use mcd_pipeline::DomainId;
use mcd_time::DvfsModel;
use mcd_workload::suites;

fn main() {
    let n = mcd_bench::instructions();
    let art = suites::by_name("art").expect("known benchmark");
    for model in [DvfsModel::Transmeta, DvfsModel::XScale] {
        let cfg = OfflineConfig::paper(0.01, model);
        let (analysis, _) = derive_schedule(mcd_bench::SEED, &art, n, &cfg);
        println!("art ({model:?}), dynamic-1%: frequency vs time");
        println!(
            "{:<16} {:>12} {:>12} {:>12}",
            "t (ms)", "Int (GHz)", "LS (GHz)", "FP (GHz)"
        );
        // Sample the cluster plans on a uniform grid for a plottable series.
        let end = analysis.trace_end;
        let steps = 40u64;
        for k in 0..=steps {
            let t = mcd_time::Femtos::from_femtos(end.as_femtos() * k / steps);
            let f_of = |d: DomainId| -> f64 {
                analysis.clusters[d.index()]
                    .iter()
                    .find(|c| c.start <= t && t < c.end)
                    .map(|c| c.frequency.as_ghz_f64())
                    .unwrap_or(1.0)
            };
            println!(
                "{:<16.4} {:>12.3} {:>12.3} {:>12.3}",
                t.as_millis_f64(),
                f_of(DomainId::Integer),
                f_of(DomainId::LoadStore),
                f_of(DomainId::FloatingPoint),
            );
        }
        let changes = analysis.schedule.len();
        let fp = &analysis.stats[DomainId::FloatingPoint.index()];
        println!(
            "total frequency changes: {changes}; FP range {} – {}\n",
            fp.min_frequency, fp.max_frequency
        );
    }
    println!("expected shape (paper): XScale makes more changes over a wider range;");
    println!("Transmeta's 10-20 us PLL re-lock suppresses short-term adaptation.");
}
