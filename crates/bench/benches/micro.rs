//! Criterion micro-benchmarks of the simulator's own hot paths: full
//! pipeline simulation throughput, cache accesses, branch prediction, and
//! the off-line shaker.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcd_offline::{analyze, OfflineConfig};
use mcd_pipeline::{simulate, MachineConfig};
use mcd_time::DvfsModel;
use mcd_uarch::{BranchPredictor, BranchPredictorConfig, Cache, CacheConfig};
use mcd_workload::suites;

fn bench_pipeline(c: &mut Criterion) {
    let profile = suites::by_name("gcc").expect("known benchmark");
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("simulate_gcc_10k", |b| {
        b.iter(|| {
            let machine = MachineConfig::baseline_mcd(1);
            black_box(simulate(&machine, &profile, 10_000).committed)
        })
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/access_hit", |b| {
        let mut cache = Cache::new(CacheConfig::l1d_paper());
        cache.access(0x1000, false);
        b.iter(|| black_box(cache.access(black_box(0x1000), false)))
    });
}

fn bench_bpred(c: &mut Criterion) {
    c.bench_function("bpred/predict_update", |b| {
        let mut bp = BranchPredictor::new(BranchPredictorConfig::paper());
        let mut pc = 0x4000u64;
        b.iter(|| {
            pc = pc.wrapping_add(4) & 0xffff;
            let p = bp.predict(pc);
            bp.update(pc, !p.taken, pc ^ 0x40);
            black_box(p.taken)
        })
    });
}

fn bench_shaker(c: &mut Criterion) {
    let mut machine = MachineConfig::baseline_mcd(1);
    machine.collect_trace = true;
    let profile = suites::by_name("art").expect("known benchmark");
    let run = simulate(&machine, &profile, 20_000);
    let trace = run.trace.expect("trace requested");
    let mut group = c.benchmark_group("offline");
    group.sample_size(10);
    group.bench_function("analyze_art_20k", |b| {
        let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
        b.iter(|| black_box(analyze(&trace, &machine.pipeline, &cfg).schedule.len()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_cache,
    bench_bpred,
    bench_shaker
);
criterion_main!(benches);
