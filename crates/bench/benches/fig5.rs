//! Figure 5 — performance degradation of baseline MCD, dynamic-1 %,
//! dynamic-5 % and global voltage scaling, relative to the singly-clocked
//! baseline, under the XScale model.

use mcd_core::report::{average, format_percent_table, PercentRow};
use mcd_time::DvfsModel;

fn main() {
    let results = mcd_bench::full_suite(mcd_bench::instructions(), DvfsModel::XScale);
    let mut rows: Vec<PercentRow> = results
        .iter()
        .map(|r| PercentRow {
            label: r.name.clone(),
            values: r.perf_degradation().map(|v| v * 100.0),
        })
        .collect();
    rows.push(average(&rows));
    print!(
        "{}",
        format_percent_table("Figure 5: Performance degradation results", &rows)
    );
    println!();
    println!("paper averages: baseline MCD < 4%, dynamic-5% ~ 10%, global matched to dynamic-5%");
}
