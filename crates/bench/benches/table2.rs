//! Table 2 — the benchmark suite, with the measured characteristics of each
//! synthetic profile (IPC, L1D miss rate, branch misprediction rate, FP
//! fraction) next to what the paper's text reports where available.

use mcd_pipeline::{simulate, MachineConfig};
use mcd_workload::suites;

fn main() {
    let n = (mcd_bench::instructions() / 4).max(40_000);
    println!("Table 2: Benchmarks (synthetic profiles; measured at {n} instructions)");
    println!(
        "{:<9} {:<14} {:<28} {:>6} {:>9} {:>8} {:>7}",
        "name", "suite", "paper window", "IPC", "L1D miss", "bp miss", "FP frac"
    );
    for profile in suites::all() {
        let run = simulate(&MachineConfig::baseline(mcd_bench::SEED), &profile, n);
        println!(
            "{:<9} {:<14} {:<28} {:>6.2} {:>8.1}% {:>7.1}% {:>6.1}%",
            profile.name,
            profile.suite.label(),
            profile.paper_window,
            run.ipc(),
            100.0 * run.l1d.miss_rate(),
            100.0 * run.mispredict_rate(),
            100.0 * profile.avg_fp_fraction(),
        );
    }
    println!();
    println!("notes: gcc calibrated to the paper's stated 12.5% L1D miss rate;");
    println!("g721 to IPC > 2 with a balanced mix; art alternates FP-busy/idle phases.");
}
