//! Headline claims — the paper's abstract and conclusion numbers, checked
//! against the regenerated suite:
//!
//! * baseline MCD: < 4 % average performance cost, ~1.5 % energy cost;
//! * dynamic-5 %: ~10 % degradation, ~27 % energy savings, ~20 % ED gain;
//! * dynamic-1 %: ~13 % ED gain;
//! * global voltage scaling: ~12 % energy, only ~3 % ED gain.

use mcd_time::DvfsModel;

fn main() {
    let results = mcd_bench::full_suite(mcd_bench::instructions(), DvfsModel::XScale);
    let n = results.len() as f64;
    let avg = |f: &dyn Fn(&mcd_core::BenchmarkResults) -> [f64; 4]| -> [f64; 4] {
        let mut sums = [0.0; 4];
        for r in &results {
            for (s, v) in sums.iter_mut().zip(f(r)) {
                *s += v;
            }
        }
        sums.map(|s| 100.0 * s / n)
    };
    let perf = avg(&|r| r.perf_degradation());
    let energy = avg(&|r| r.energy_savings());
    let ed = avg(&|r| r.energy_delay_improvement());

    println!("Headline comparison (averages over 16 benchmarks, XScale model)");
    println!("{:<34} {:>10} {:>10}", "claim", "this repo", "paper");
    let rows = [
        ("baseline MCD perf cost", perf[0], "< 4%"),
        ("baseline MCD energy cost", -energy[0], "~1.5%"),
        ("baseline MCD ED cost", -ed[0], "~5%"),
        ("dynamic-5% perf degradation", perf[2], "~10%"),
        ("dynamic-5% energy savings", energy[2], "~27%"),
        ("dynamic-5% ED improvement", ed[2], "~20%"),
        ("dynamic-1% ED improvement", ed[1], "~13%"),
        ("global energy savings", energy[3], "< 12%"),
        ("global ED improvement", ed[3], "~3%"),
    ];
    for (name, ours, paper) in rows {
        println!("{name:<34} {ours:>9.1}% {paper:>10}");
    }
    println!();
    let ok_shape = perf[0] < 8.0
        && ed[0] < 0.0
        && energy[2] > energy[3] * 0.8
        && ed[2] > ed[1]
        && ed[2] > ed[3]
        && ed[1] > 0.0;
    if ok_shape {
        println!("shape check PASSED: MCD overhead small, dynamic-5% > dynamic-1% > 0,");
        println!("and per-domain scaling beats global voltage scaling on energy-delay.");
    } else {
        println!("shape check FAILED — see EXPERIMENTS.md for discussion.");
    }
}
