//! Extension — on-line control (the paper's future work): the attack/decay
//! governor of the authors' follow-up work versus the off-line oracle, on a
//! representative subset of benchmarks. Reported relative to the static
//! baseline-MCD machine.

use mcd_offline::{derive_schedule, OfflineConfig};
use mcd_pipeline::{simulate, AttackDecay, MachineConfig, Pipeline};
use mcd_power::PowerModel;
use mcd_time::DvfsModel;
use mcd_workload::{suites, WorkloadGenerator};

fn main() {
    let n = mcd_bench::instructions();
    let power = PowerModel::paper_calibrated();
    println!("On-line attack/decay vs off-line oracle (θ=5%), {n} instructions");
    println!(
        "{:<9} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
        "", "off deg", "off en", "off ED", "on deg", "on en", "on ED"
    );
    let (mut sums_off, mut sums_on) = ([0.0f64; 3], [0.0f64; 3]);
    let names = [
        "adpcm", "gcc", "mcf", "em3d", "bzip2", "art", "swim", "g721",
    ];
    for name in names {
        let profile = suites::by_name(name).expect("known benchmark");
        let mcd = simulate(&MachineConfig::baseline_mcd(mcd_bench::SEED), &profile, n);
        let e_mcd = power.energy_of(&mcd).total();
        let metrics = |time: mcd_time::Femtos, energy: f64| -> [f64; 3] {
            let deg = time.as_femtos() as f64 / mcd.total_time.as_femtos() as f64 - 1.0;
            let savings = 1.0 - energy / e_mcd;
            let ed = 1.0 - (energy / e_mcd) * (1.0 + deg);
            [deg, savings, ed]
        };
        let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
        let (analysis, _) = derive_schedule(mcd_bench::SEED, &profile, n, &cfg);
        let off_machine =
            MachineConfig::dynamic(mcd_bench::SEED, DvfsModel::XScale, analysis.schedule);
        let off = simulate(&off_machine, &profile, n);
        let m_off = metrics(off.total_time, power.energy_of(&off).total());

        let on_machine =
            MachineConfig::dynamic(mcd_bench::SEED, DvfsModel::XScale, Default::default());
        let generator = WorkloadGenerator::new(profile.clone(), on_machine.seed);
        let on =
            Pipeline::new(on_machine, generator).run_with_governor(n, AttackDecay::paper_like());
        let m_on = metrics(on.total_time, power.energy_of(&on).total());

        for i in 0..3 {
            sums_off[i] += m_off[i];
            sums_on[i] += m_on[i];
        }
        println!(
            "{name:<9} | {:>8.2}% {:>8.2}% {:>8.2}% | {:>8.2}% {:>8.2}% {:>8.2}%",
            100.0 * m_off[0],
            100.0 * m_off[1],
            100.0 * m_off[2],
            100.0 * m_on[0],
            100.0 * m_on[1],
            100.0 * m_on[2]
        );
    }
    let k = names.len() as f64;
    println!(
        "{:<9} | {:>8.2}% {:>8.2}% {:>8.2}% | {:>8.2}% {:>8.2}% {:>8.2}%",
        "AVG",
        100.0 * sums_off[0] / k,
        100.0 * sums_off[1] / k,
        100.0 * sums_off[2] / k,
        100.0 * sums_on[0] / k,
        100.0 * sums_on[1] / k,
        100.0 * sums_on[2] / k
    );
    println!();
    println!("the on-line policy needs no oracle and should land within a few points of");
    println!("the off-line tool — the feasibility the paper's future-work section posits.");
}
