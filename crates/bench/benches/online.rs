//! Extension — on-line control (the paper's future work): every governor in
//! the policy registry versus the off-line oracle, on a representative
//! subset of benchmarks. Reported relative to the static baseline-MCD
//! machine.

use mcd_offline::{derive_schedule, OfflineConfig};
use mcd_pipeline::{simulate, MachineConfig, Pipeline, PolicySpec, POLICY_IDS};
use mcd_power::PowerModel;
use mcd_time::DvfsModel;
use mcd_workload::{suites, WorkloadGenerator};

fn main() {
    let n = mcd_bench::instructions();
    let power = PowerModel::paper_calibrated();
    println!("On-line registry policies vs off-line oracle (θ=5%), {n} instructions");
    print!(
        "{:<9} | {:>9} {:>9} {:>9}",
        "", "off deg", "off en", "off ED"
    );
    for id in POLICY_IDS {
        let short: String = id.chars().take(6).collect();
        print!(" | {:>9} {:>9} {:>9}", format!("{short} dg"), "en", "ED");
    }
    println!();
    let mut sums = vec![[0.0f64; 3]; 1 + POLICY_IDS.len()];
    let names = [
        "adpcm", "gcc", "mcf", "em3d", "bzip2", "art", "swim", "g721",
    ];
    for name in names {
        let profile = suites::by_name(name).expect("known benchmark");
        let mcd = simulate(&MachineConfig::baseline_mcd(mcd_bench::SEED), &profile, n);
        let e_mcd = power.energy_of(&mcd).total();
        let metrics = |time: mcd_time::Femtos, energy: f64| -> [f64; 3] {
            let deg = time.as_femtos() as f64 / mcd.total_time.as_femtos() as f64 - 1.0;
            let savings = 1.0 - energy / e_mcd;
            let ed = 1.0 - (energy / e_mcd) * (1.0 + deg);
            [deg, savings, ed]
        };
        let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
        let (analysis, _) = derive_schedule(mcd_bench::SEED, &profile, n, &cfg);
        let off_machine =
            MachineConfig::dynamic(mcd_bench::SEED, DvfsModel::XScale, analysis.schedule);
        let off = simulate(&off_machine, &profile, n);
        let mut rows = vec![metrics(off.total_time, power.energy_of(&off).total())];

        for id in POLICY_IDS {
            let governor = PolicySpec::parse(id)
                .expect("registry id parses")
                .build()
                .expect("registry id builds");
            let on_machine =
                MachineConfig::dynamic(mcd_bench::SEED, DvfsModel::XScale, Default::default());
            let generator = WorkloadGenerator::new(profile.clone(), on_machine.seed);
            let on = Pipeline::new(on_machine, generator).run_with_governor(n, governor);
            rows.push(metrics(on.total_time, power.energy_of(&on).total()));
        }

        print!("{name:<9}");
        for (group, m) in rows.iter().enumerate() {
            for i in 0..3 {
                sums[group][i] += m[i];
            }
            print!(
                " | {:>8.2}% {:>8.2}% {:>8.2}%",
                100.0 * m[0],
                100.0 * m[1],
                100.0 * m[2]
            );
        }
        println!();
    }
    let k = names.len() as f64;
    print!("{:<9}", "AVG");
    for group in &sums {
        print!(
            " | {:>8.2}% {:>8.2}% {:>8.2}%",
            100.0 * group[0] / k,
            100.0 * group[1] / k,
            100.0 * group[2] / k
        );
    }
    println!();
    println!();
    println!("no on-line policy needs the oracle; each should land within a few points of");
    println!("the off-line tool — the feasibility the paper's future-work section posits.");
}
