//! Criterion benchmarks of the §3.2 off-line analysis kernels — the paths
//! reworked by the CSR-arena / worklist-shaker / thread-fan-out overhaul.
//!
//! One real trace (gcc on the baseline MCD machine) is collected once, and
//! each kernel of the pipeline is measured in isolation over it:
//!
//! - `offline/dag_build`: trace → per-interval dependence DAGs in the CSR
//!   arena layout.
//! - `offline/shaker`: the worklist shaker over every interval (serial,
//!   with scratch reuse), the dominant analysis cost.
//! - `offline/prepare_slack`: both of the above end to end — the
//!   θ-independent half of the tool.
//! - `offline/cluster`: histogram clustering into per-domain schedules for
//!   θ = 5 %, the θ-dependent half.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcd_offline::{
    build_interval_dags, cluster_schedule, prepare_slack, run_shaker_with, AnalysisScratch,
    OfflineConfig,
};
use mcd_pipeline::{simulate, InstrTrace, MachineConfig, PipelineConfig};
use mcd_time::{DvfsModel, Femtos};
use mcd_workload::suites;

const N: u64 = 40_000;

/// One full-speed traced run, shared by every group (collected once).
fn traced_run() -> (Vec<InstrTrace>, PipelineConfig) {
    let mut machine = MachineConfig::baseline_mcd(mcd_bench::SEED);
    machine.collect_trace = true;
    let profile = suites::by_name("gcc").expect("known benchmark");
    let run = simulate(&machine, &profile, N);
    let trace = run.trace.expect("trace was requested");
    (trace, machine.pipeline)
}

fn bench_offline(c: &mut Criterion) {
    let (trace, pcfg) = traced_run();
    let cfg = OfflineConfig::paper(0.05, DvfsModel::XScale);
    let interval_len =
        Femtos::from_femtos(cfg.interval_cycles * cfg.base_frequency.period().as_femtos());

    let mut group = c.benchmark_group("offline");
    group.sample_size(10);

    group.bench_function("dag_build_gcc_40k", |b| {
        b.iter(|| {
            black_box(build_interval_dags(
                &trace,
                &pcfg,
                interval_len,
                cfg.power,
                cfg.scale_front_end,
            ))
        })
    });

    group.bench_function("shaker_gcc_40k", |b| {
        let dags = build_interval_dags(&trace, &pcfg, interval_len, cfg.power, cfg.scale_front_end);
        let mut scratch = AnalysisScratch::new();
        b.iter(|| {
            let mut dags = dags.clone();
            for dag in dags.iter_mut() {
                black_box(run_shaker_with(
                    dag,
                    &cfg.shaker,
                    cfg.base_frequency,
                    &mut scratch,
                ));
            }
        })
    });

    group.bench_function("prepare_slack_gcc_40k", |b| {
        b.iter(|| black_box(prepare_slack(&trace, &pcfg, &cfg)))
    });

    group.bench_function("cluster_gcc_40k", |b| {
        let slack = prepare_slack(&trace, &pcfg, &cfg);
        b.iter(|| black_box(cluster_schedule(&slack, &cfg)))
    });

    group.finish();
}

criterion_group!(benches, bench_offline);
criterion_main!(benches);
