//! Ablation A1 — sensitivity of the baseline-MCD overhead to the
//! synchronization window `T_s` (the paper assumes 30 % of the faster
//! clock's period; we sweep 0–50 %).

use mcd_pipeline::{simulate, MachineConfig};
use mcd_time::SyncParams;
use mcd_workload::suites;

fn main() {
    let n = (mcd_bench::instructions() / 4).max(40_000);
    let names = ["adpcm", "g721", "gcc", "art"];
    println!("Ablation: baseline-MCD performance cost vs sync window T_s ({n} instructions)");
    println!(
        "{:<9} {:>8} {:>8} {:>8} {:>8}",
        "bench", "Ts=0%", "Ts=15%", "Ts=30%", "Ts=50%"
    );
    for name in names {
        let profile = suites::by_name(name).expect("known benchmark");
        let base = simulate(&MachineConfig::baseline(mcd_bench::SEED), &profile, n);
        print!("{name:<9}");
        for frac in [0.0, 0.15, 0.30, 0.50] {
            let mut machine = MachineConfig::baseline_mcd(mcd_bench::SEED);
            machine.sync = SyncParams::new(frac);
            let run = simulate(&machine, &profile, n);
            print!(" {:>7.2}%", 100.0 * (run.slowdown_vs(&base) - 1.0));
        }
        println!();
    }
    println!();
    println!("expected: overhead grows monotonically with the window; even Ts=0 keeps a");
    println!("residual cost from edge misalignment between independent clocks.");
}
