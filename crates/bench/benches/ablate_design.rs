//! Ablation A2 — design-choice studies the paper calls out:
//!
//! 1. clock jitter on/off (does the 110 ps jitter matter?);
//! 2. scaling the front end too (the paper's future work);
//! 3. dropping the load/store → integer histogram coupling (§3.2 footnote).

use mcd_offline::{derive_schedule, OfflineConfig};
use mcd_pipeline::{simulate, DomainId, MachineConfig};
use mcd_power::PowerModel;
use mcd_time::{DvfsModel, JitterModel};
use mcd_workload::suites;

fn main() {
    let n = (mcd_bench::instructions() / 4).max(40_000);
    let power = PowerModel::paper_calibrated();

    // 1. Jitter sensitivity on the baseline MCD overhead.
    println!("A2.1: baseline-MCD overhead with and without clock jitter ({n} instructions)");
    println!("{:<9} {:>12} {:>12}", "bench", "jitter on", "jitter off");
    for name in ["adpcm", "gcc"] {
        let profile = suites::by_name(name).expect("known benchmark");
        let base = simulate(&MachineConfig::baseline(mcd_bench::SEED), &profile, n);
        let on = simulate(&MachineConfig::baseline_mcd(mcd_bench::SEED), &profile, n);
        let mut quiet = MachineConfig::baseline_mcd(mcd_bench::SEED);
        quiet.jitter = JitterModel::disabled();
        let off = simulate(&quiet, &profile, n);
        println!(
            "{name:<9} {:>11.2}% {:>11.2}%",
            100.0 * (on.slowdown_vs(&base) - 1.0),
            100.0 * (off.slowdown_vs(&base) - 1.0)
        );
    }
    println!();

    // 2 & 3. Off-line tool variants on gcc, dynamic-5%.
    println!("A2.2/3: off-line tool variants (gcc, dynamic-5%)");
    println!(
        "{:<28} {:>10} {:>10} {:>8}",
        "variant", "perf deg", "energy", "reconf"
    );
    let profile = suites::by_name("gcc").expect("known benchmark");
    let base = simulate(&MachineConfig::baseline(mcd_bench::SEED), &profile, n);
    let e_base = power.energy_of(&base).total();
    let mut variants: Vec<(&str, OfflineConfig)> = Vec::new();
    variants.push((
        "paper configuration",
        OfflineConfig::paper(0.05, DvfsModel::XScale),
    ));
    let mut fe = OfflineConfig::paper(0.05, DvfsModel::XScale);
    fe.scale_front_end = true;
    // The analytic dilation model is least reliable for the front end (its
    // speed gates every later event); without a strong de-rating the tool
    // would slow fetch catastrophically — one of the reasons the paper pins
    // the front end at full speed.
    fe.budget_safety[0] = 0.05;
    variants.push(("+ front-end scaling", fe));
    let mut uncoupled = OfflineConfig::paper(0.05, DvfsModel::XScale);
    uncoupled.couple_ls_into_int = false;
    variants.push(("- LS->Int histogram coupling", uncoupled));
    for (label, cfg) in variants {
        let (analysis, _) = derive_schedule(mcd_bench::SEED, &profile, n, &cfg);
        let machine = MachineConfig::dynamic(
            mcd_bench::SEED,
            DvfsModel::XScale,
            analysis.schedule.clone(),
        );
        let run = simulate(&machine, &profile, n);
        let e = power.energy_of(&run).total();
        println!(
            "{label:<28} {:>9.2}% {:>9.2}% {:>8}",
            100.0 * (run.slowdown_vs(&base) - 1.0),
            100.0 * (1.0 - e / e_base),
            analysis.schedule.len()
        );
    }
    let _ = DomainId::ALL; // silences unused import on some cfgs
    println!();
    println!("notes: jitter-off results depend on fixed phase luck — sub-cycle phase");
    println!("offsets can pipeline cross-domain hops ('time borrowing'), which jitter");
    println!("destroys; front-end scaling buys extra energy (the paper's future work)");
    println!("at disproportionate degradation, showing why the paper pins the front");
    println!("end; dropping the LS->Int coupling lets effective-address computation");
    println!("lag when memory activity is high.");
}
