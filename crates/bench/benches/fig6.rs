//! Figure 6 — energy savings of each configuration relative to the
//! singly-clocked baseline, under the XScale model.

use mcd_core::report::{average, format_percent_table, PercentRow};
use mcd_time::DvfsModel;

fn main() {
    let results = mcd_bench::full_suite(mcd_bench::instructions(), DvfsModel::XScale);
    let mut rows: Vec<PercentRow> = results
        .iter()
        .map(|r| PercentRow {
            label: r.name.clone(),
            values: r.energy_savings().map(|v| v * 100.0),
        })
        .collect();
    rows.push(average(&rows));
    print!(
        "{}",
        format_percent_table("Figure 6: Energy savings results", &rows)
    );
    println!();
    println!("paper averages: baseline MCD ~ -1.5%, dynamic-5% ~ 27%, global < 12%");
}
