//! Table 1 — architectural parameters of the simulated processor.
//!
//! Prints the simulator's configuration side by side with the values the
//! paper lists, asserting that every row matches.

use mcd_pipeline::PipelineConfig;

fn main() {
    let c = PipelineConfig::alpha21264();
    println!("Table 1: Architectural parameters for simulated processor");
    println!("{:<44} {:>12} {:>8}", "parameter", "this repo", "paper");
    let rows: Vec<(&str, String, &str)> = vec![
        (
            "Branch mispredict penalty",
            c.mispredict_penalty.to_string(),
            "7",
        ),
        ("Decode width", c.decode_width.to_string(), "4"),
        (
            "Issue width",
            (c.issue_width_int + c.issue_width_fp).to_string(),
            "6",
        ),
        ("Retire width", c.retire_width.to_string(), "11"),
        (
            "L1 data cache (KB)",
            (c.l1d.size_bytes >> 10).to_string(),
            "64",
        ),
        ("L1 data cache ways", c.l1d.ways.to_string(), "2"),
        (
            "L1 instruction cache (KB)",
            (c.l1i.size_bytes >> 10).to_string(),
            "64",
        ),
        ("L1 instruction cache ways", c.l1i.ways.to_string(), "2"),
        (
            "L2 unified cache (MB)",
            (c.l2.size_bytes >> 20).to_string(),
            "1",
        ),
        ("L2 ways (direct mapped)", c.l2.ways.to_string(), "1"),
        ("L1 cache latency (cycles)", c.l1_latency.to_string(), "2"),
        ("L2 cache latency (cycles)", c.l2_latency.to_string(), "12"),
        ("Integer ALUs", c.fus.int_alu.to_string(), "4"),
        ("Integer mult/div units", c.fus.int_muldiv.to_string(), "1"),
        ("FP ALUs", c.fus.fp_alu.to_string(), "2"),
        ("FP mult/div/sqrt units", c.fus.fp_muldiv.to_string(), "1"),
        ("Integer issue queue size", c.iq_int.to_string(), "20"),
        ("FP issue queue size", c.iq_fp.to_string(), "15"),
        ("Load/store queue size", c.lsq_size.to_string(), "64"),
        ("Physical registers (int)", c.phys_int.to_string(), "72"),
        ("Physical registers (fp)", c.phys_fp.to_string(), "72"),
        ("Reorder buffer size", c.rob_size.to_string(), "80"),
        (
            "Bimodal predictor size",
            c.bpred.bimodal_entries.to_string(),
            "1024",
        ),
        (
            "PAg level-1 entries",
            c.bpred.l1_entries.to_string(),
            "1024",
        ),
        ("PAg history bits", c.bpred.history_bits.to_string(), "10"),
        (
            "PAg level-2 entries",
            c.bpred.l2_entries.to_string(),
            "1024",
        ),
        (
            "Combining predictor size",
            c.bpred.chooser_entries.to_string(),
            "4096",
        ),
        ("BTB sets", c.bpred.btb_sets.to_string(), "4096"),
        ("BTB ways", c.bpred.btb_ways.to_string(), "2"),
    ];
    let mut mismatches = 0;
    for (name, ours, paper) in rows {
        let mark = if ours == paper { "" } else { "  <-- MISMATCH" };
        if ours != paper {
            mismatches += 1;
        }
        println!("{name:<44} {ours:>12} {paper:>8}{mark}");
    }
    println!();
    if mismatches == 0 {
        println!("all parameters match Table 1");
    } else {
        println!("{mismatches} parameter(s) deviate from Table 1");
        std::process::exit(1);
    }
}
