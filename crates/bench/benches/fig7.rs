//! Figure 7 — energy-delay improvement of each configuration relative to
//! the singly-clocked baseline, under the XScale model. This is the paper's
//! headline figure: per-domain dynamic scaling beats global voltage scaling.

use mcd_core::report::{average, format_percent_table, PercentRow};
use mcd_time::DvfsModel;

fn main() {
    let results = mcd_bench::full_suite(mcd_bench::instructions(), DvfsModel::XScale);
    let mut rows: Vec<PercentRow> = results
        .iter()
        .map(|r| PercentRow {
            label: r.name.clone(),
            values: r.energy_delay_improvement().map(|v| v * 100.0),
        })
        .collect();
    let avg = average(&rows);
    let (dyn5, global) = (avg.values[2], avg.values[3]);
    rows.push(avg);
    print!(
        "{}",
        format_percent_table("Figure 7: Energy-delay improvement results", &rows)
    );
    println!();
    println!("paper averages: dynamic-5% ~ 20%, dynamic-1% ~ 13%, global ~ 3%");
    if dyn5 > global {
        println!("headline ordering holds: dynamic-5% ({dyn5:.1}%) > global ({global:.1}%)");
    } else {
        println!(
            "WARNING: headline ordering violated: dynamic-5% ({dyn5:.1}%) <= global ({global:.1}%)"
        );
    }
}
