//! Criterion benchmarks of the simulation kernel's hot loop — the paths
//! reworked by the edge-scheduler / fast-forward / sync-cache overhaul.
//!
//! `kernel/run_mcd` vs `kernel/run_reference` is the headline pair: the same
//! machine through the production loop (indexed earliest-edge scheduler +
//! idle-cycle fast-forward) and through the naive edge-by-edge reference
//! loop. The remaining groups isolate individual ingredients: raw jittered
//! clock-edge generation, the precomputed sync-window matrix against the
//! per-crossing computation, and issue-queue churn.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mcd_pipeline::{DomainId, FrequencySchedule, MachineConfig, Pipeline, ScheduleEntry};
use mcd_time::{
    sync_visible_at, DomainClock, DvfsModel, Femtos, Frequency, JitterModel, SyncParams,
    SyncWindowCache,
};
use mcd_uarch::AgeQueue;
use mcd_workload::{suites, WorkloadGenerator};

const N: u64 = 20_000;

/// A dynamic machine whose FP domain is parked at the floor — on an
/// integer-heavy benchmark this leaves the FP issue queue empty for long
/// stretches, the exact shape the idle-cycle fast-forward targets.
fn fp_parked_machine(seed: u64) -> MachineConfig {
    let schedule = FrequencySchedule::from_entries(vec![ScheduleEntry {
        at: Femtos::from_micros(1),
        domain: DomainId::FloatingPoint,
        frequency: Frequency::MIN_SCALED,
    }]);
    MachineConfig::dynamic(seed, DvfsModel::XScale, schedule)
}

fn run(machine: &MachineConfig, bench: &str, reference: bool) -> u64 {
    let profile = suites::by_name(bench).expect("known benchmark");
    Pipeline::new(
        machine.clone(),
        WorkloadGenerator::new(profile, machine.seed),
    )
    .reference_mode(reference)
    .run(N)
    .committed
}

fn bench_run_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel");
    group.sample_size(10);
    let machine = fp_parked_machine(mcd_bench::SEED);
    group.bench_function("run_mcd_gcc_20k", |b| {
        b.iter(|| black_box(run(&machine, "gcc", false)))
    });
    group.bench_function("run_reference_gcc_20k", |b| {
        b.iter(|| black_box(run(&machine, "gcc", true)))
    });
    group.finish();
}

fn bench_clock_edges(c: &mut Criterion) {
    c.bench_function("kernel/clock_edges", |b| {
        let mut clk = DomainClock::new(Frequency::GHZ, JitterModel::paper(), 11);
        b.iter(|| black_box(clk.next_edge()))
    });
}

fn bench_sync_window(c: &mut Criterion) {
    let params = SyncParams::paper();
    let periods = [
        Frequency::GHZ.period(),
        Frequency::from_mhz(600).period(),
        Frequency::MIN_SCALED.period(),
        Frequency::from_mhz(800).period(),
    ];
    let t = Femtos::from_nanos(42);
    c.bench_function("kernel/sync_window_computed", |b| {
        b.iter(|| {
            let mut acc = Femtos::ZERO;
            for src in 0..4 {
                for dst in 0..4 {
                    if src != dst {
                        acc += sync_visible_at(&params, t, periods[src], periods[dst]);
                    }
                }
            }
            black_box(acc)
        })
    });
    c.bench_function("kernel/sync_window_cached", |b| {
        let cache = SyncWindowCache::<4>::new(params, &periods);
        b.iter(|| {
            let mut acc = Femtos::ZERO;
            for src in 0..4 {
                for dst in 0..4 {
                    acc += cache.visible_at(t, src, dst);
                }
            }
            black_box(acc)
        })
    });
}

fn bench_age_queue(c: &mut Criterion) {
    c.bench_function("kernel/age_queue_churn", |b| {
        let mut iq = AgeQueue::new(20);
        let mut seq = 0u64;
        b.iter(|| {
            // Half-fill, walk oldest-first, then drain from the middle out —
            // the per-cycle pattern of tick_exec/try_issue.
            for _ in 0..10 {
                seq += 1;
                iq.push(seq).expect("space");
            }
            let sum: u64 = iq.as_slice().iter().sum();
            for s in (seq - 9)..=seq {
                iq.remove(s);
            }
            black_box(sum)
        })
    });
}

criterion_group!(
    benches,
    bench_run_loop,
    bench_clock_edges,
    bench_sync_window,
    bench_age_queue
);
criterion_main!(benches);
