//! Figure 9 — summary statistics for the intervals chosen by the off-line
//! tool for the dynamic-5 % configuration, under both the Transmeta and
//! XScale models: reconfigurations per million instructions, plus the mean
//! and range of the frequencies chosen for the integer, load/store and
//! floating-point domains.

use mcd_offline::{derive_schedule, OfflineConfig};
use mcd_pipeline::DomainId;
use mcd_time::DvfsModel;
use mcd_workload::suites;

fn main() {
    let n = mcd_bench::instructions();
    for model in [DvfsModel::Transmeta, DvfsModel::XScale] {
        println!("{model:?} reconfiguration data (dynamic-5%)");
        println!(
            "{:<9} {:>12} | {:>9} {:>9} {:>9} | {:>17} {:>17} {:>17}",
            "bench",
            "reconf/1M",
            "Int MHz",
            "LS MHz",
            "FP MHz",
            "Int range",
            "LS range",
            "FP range"
        );
        let mut total_reconf = 0.0;
        for profile in suites::all() {
            let cfg = OfflineConfig::paper(0.05, model);
            let (analysis, _) = derive_schedule(mcd_bench::SEED, &profile, n, &cfg);
            let per_mi = analysis.schedule.len() as f64 * 1e6 / n as f64;
            total_reconf += per_mi;
            let s = |d: DomainId| &analysis.stats[d.index()];
            let range = |d: DomainId| {
                format!(
                    "{:>4.0}-{:<4.0}",
                    s(d).min_frequency.as_mhz_f64(),
                    s(d).max_frequency.as_mhz_f64()
                )
            };
            println!(
                "{:<9} {:>12.1} | {:>9.0} {:>9.0} {:>9.0} | {:>17} {:>17} {:>17}",
                profile.name,
                per_mi,
                s(DomainId::Integer).mean_frequency_hz / 1e6,
                s(DomainId::LoadStore).mean_frequency_hz / 1e6,
                s(DomainId::FloatingPoint).mean_frequency_hz / 1e6,
                range(DomainId::Integer),
                range(DomainId::LoadStore),
                range(DomainId::FloatingPoint),
            );
        }
        println!(
            "average reconfigurations per 1M instructions: {:.1}\n",
            total_reconf / suites::names().len() as f64
        );
    }
    println!("expected shape (paper): far fewer reconfigurations and narrower ranges");
    println!("under Transmeta. Note the scale effect: our windows span hundreds of");
    println!("microseconds (vs the paper's tens of milliseconds), so Transmeta's");
    println!("20 us/step ramps and 10-20 us re-locks often cannot pay for themselves");
    println!("at all within the dilation budget.");
}
