//! Shared infrastructure for the figure/table regeneration benches.
//!
//! Figures 5, 6, 7 and the headline summary all consume the same
//! five-configuration experiment over the sixteen benchmarks, which takes
//! minutes at full scale; the suite therefore runs as an `mcd-harness`
//! campaign — cells execute in parallel across cores and land in the
//! content-addressed cache under `target/mcd-campaign-cache`, so running
//! `cargo bench` regenerates every artifact while executing each
//! (benchmark, seed, model, window) cell at most once, ever.

use std::path::PathBuf;

use mcd_core::BenchmarkResults;
use mcd_harness::{Campaign, CampaignSpec, ResultCache, Telemetry};
use mcd_time::DvfsModel;

/// Default committed-instruction count per simulation run.
pub const DEFAULT_INSTRUCTIONS: u64 = 240_000;
/// Experiment seed used by all published artifacts.
pub const SEED: u64 = 5;

/// Instruction count for the current invocation, overridable with the
/// `MCD_INSTRUCTIONS` environment variable (useful for quick smoke runs).
pub fn instructions() -> u64 {
    std::env::var("MCD_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_INSTRUCTIONS)
}

/// The campaign cache shared by every bench and by `mcd-cli campaign`.
pub fn suite_cache_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/mcd-campaign-cache")
}

/// Runs (or loads from cache) the full five-configuration experiment for all
/// sixteen benchmarks under `model`.
pub fn full_suite(n: u64, model: DvfsModel) -> Vec<BenchmarkResults> {
    let spec = CampaignSpec::paper(SEED, n, model);
    let cache = ResultCache::open(suite_cache_dir()).expect("create suite cache dir");
    eprintln!(
        "[mcd-bench] campaign: 16 benchmarks × {n} instructions, {model:?} model \
         (cache: {})",
        cache.dir().display()
    );
    let report = Campaign::new(spec)
        .run(&cache, &Telemetry::disabled())
        .expect("paper campaign spec is valid");
    eprintln!(
        "[mcd-bench] campaign done: {} computed, {} cached, {:.1}s",
        report.computed(),
        report.cached(),
        report.wall.as_secs_f64()
    );
    report
        .results()
        .expect("all cells succeeded")
        .into_iter()
        .cloned()
        .collect()
}

/// Formats a hertz value the way the paper's figures label frequencies.
pub fn fmt_mhz(hz: f64) -> String {
    format!("{:.0} MHz", hz / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_cache_dir_is_under_target() {
        assert!(suite_cache_dir().to_string_lossy().contains("target"));
    }
}
