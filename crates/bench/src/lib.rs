//! Shared infrastructure for the figure/table regeneration benches.
//!
//! Figures 5, 6, 7 and the headline summary all consume the same
//! five-configuration experiment over the sixteen benchmarks, which takes
//! minutes at full scale; results are therefore cached as JSON under
//! `target/` keyed by instruction count, seed and DVFS model, so running
//! `cargo bench` regenerates every artifact while executing the expensive
//! suite only once.

use std::fs;
use std::path::PathBuf;

use mcd_core::{run_benchmark, BenchmarkResults, ExperimentConfig};
use mcd_time::DvfsModel;
use mcd_workload::suites;

/// Default committed-instruction count per simulation run.
pub const DEFAULT_INSTRUCTIONS: u64 = 240_000;
/// Experiment seed used by all published artifacts.
pub const SEED: u64 = 5;

/// Instruction count for the current invocation, overridable with the
/// `MCD_INSTRUCTIONS` environment variable (useful for quick smoke runs).
pub fn instructions() -> u64 {
    std::env::var("MCD_INSTRUCTIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_INSTRUCTIONS)
}

fn cache_path(n: u64, model: DvfsModel) -> PathBuf {
    let tag = match model {
        DvfsModel::XScale => "xscale",
        DvfsModel::Transmeta => "transmeta",
    };
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target")
        .join(format!("mcd-suite-{tag}-s{SEED}-n{n}.json"))
}

/// Runs (or loads from cache) the full five-configuration experiment for all
/// sixteen benchmarks under `model`.
pub fn full_suite(n: u64, model: DvfsModel) -> Vec<BenchmarkResults> {
    let path = cache_path(n, model);
    if let Ok(text) = fs::read_to_string(&path) {
        if let Ok(results) = serde_json::from_str::<Vec<BenchmarkResults>>(&text) {
            if results.len() == suites::names().len() {
                eprintln!("[mcd-bench] loaded cached suite from {}", path.display());
                return results;
            }
        }
    }
    eprintln!(
        "[mcd-bench] running full suite ({n} instructions/run, {model:?}); this takes a few minutes…"
    );
    let cfg = ExperimentConfig::paper(SEED, n, model);
    let results: Vec<BenchmarkResults> = suites::all()
        .iter()
        .map(|p| {
            eprintln!("[mcd-bench]   {}", p.name);
            run_benchmark(p, &cfg)
        })
        .collect();
    if let Ok(json) = serde_json::to_string(&results) {
        let _ = fs::create_dir_all(path.parent().expect("has parent"));
        let _ = fs::write(&path, json);
    }
    results
}

/// Formats a hertz value the way the paper's figures label frequencies.
pub fn fmt_mhz(hz: f64) -> String {
    format!("{:.0} MHz", hz / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_paths_distinguish_models() {
        assert_ne!(cache_path(1000, DvfsModel::XScale), cache_path(1000, DvfsModel::Transmeta));
        assert_ne!(cache_path(1000, DvfsModel::XScale), cache_path(2000, DvfsModel::XScale));
    }
}
