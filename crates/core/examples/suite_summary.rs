//! Prints the Figure 5/6/7 summary (performance degradation, energy
//! savings, energy-delay improvement for all five machine configurations)
//! over the full sixteen-benchmark suite, in one table.
//!
//! ```sh
//! cargo run --release -p mcd-core --example suite_summary [instructions]
//! ```
//!
//! This duplicates what `cargo bench -p mcd-bench --bench fig5/6/7` report,
//! without the result cache — useful when iterating on calibration.

use mcd_core::{run_benchmark, ExperimentConfig};
use mcd_time::DvfsModel;
use mcd_workload::suites;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let mut sums = [[0.0f64; 4]; 3];
    let names = suites::names();
    println!(
        "{:8} | {:^28} | {:^28} | {:^28}",
        "", "perf degradation %", "energy savings %", "ED improvement %"
    );
    println!(
        "{:8} | {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>6} {:>6}",
        "bench", "mcd", "d1", "d5", "glob", "mcd", "d1", "d5", "glob", "mcd", "d1", "d5", "glob"
    );
    for name in &names {
        let cfg = ExperimentConfig::paper(5, n, DvfsModel::XScale);
        let p = suites::by_name(name).unwrap();
        let r = run_benchmark(&p, &cfg);
        let rows = [
            r.perf_degradation(),
            r.energy_savings(),
            r.energy_delay_improvement(),
        ];
        print!("{name:8} |");
        for (k, row) in rows.iter().enumerate() {
            for (j, v) in row.iter().enumerate() {
                print!(" {:>6.1}", v * 100.0);
                sums[k][j] += v * 100.0;
            }
            print!(" |");
        }
        println!();
    }
    print!("{:8} |", "AVG");
    for group in &sums {
        for total in group {
            print!(" {:>6.1}", total / names.len() as f64);
        }
        print!(" |");
    }
    println!();
}
