//! The paper's five machine configurations and the experiment driver.
//!
//! §4: *baseline* (single 1 GHz clock, no scaling), *baseline MCD* (four
//! domains statically at 1 GHz — pure synchronization cost), *dynamic-1 %*
//! and *dynamic-5 %* (baseline MCD plus per-domain schedules from the
//! off-line tool at θ = 1 % / 5 %), and *global* (the baseline's single
//! clock and voltage scaled so its performance degradation matches
//! dynamic-5 % — conventional whole-chip DVFS at equal slowdown).

use serde::{DeError, Deserialize, Map, Serialize, Value};

use mcd_offline::OfflineConfig;
use mcd_pipeline::{DomainId, PolicySpec};
use mcd_power::PowerModel;
use mcd_time::{DvfsModel, Frequency};
use mcd_workload::BenchmarkProfile;

use crate::cell::{BenchmarkSession, RunOptions, ScenarioSpec};
use crate::metrics::Metrics;

/// Experiment parameters shared by all benchmarks.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Experiment seed (workload, jitter, PLL lock times).
    pub seed: u64,
    /// Committed instructions per run.
    pub instructions: u64,
    /// DVFS transition model for the dynamic configurations.
    pub model: DvfsModel,
    /// Power model.
    pub power: PowerModel,
    /// Off-line tool configuration template (dilation target is overridden
    /// per dynamic configuration).
    pub offline: OfflineConfig,
}

impl ExperimentConfig {
    /// The paper's setup under a given DVFS model.
    pub fn paper(seed: u64, instructions: u64, model: DvfsModel) -> Self {
        ExperimentConfig {
            seed,
            instructions,
            model,
            power: PowerModel::paper_calibrated(),
            offline: OfflineConfig::paper(0.05, model),
        }
    }
}

/// Per-domain summary used by Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainSummary {
    /// Reconfigurations per million committed instructions.
    pub reconfigs_per_mi: f64,
    /// Time-weighted mean frequency (Hz) over the planned schedule.
    pub mean_frequency_hz: f64,
    /// Lowest planned frequency (Hz).
    pub min_frequency_hz: u64,
    /// Highest planned frequency (Hz).
    pub max_frequency_hz: u64,
}

/// One governed (online-policy) row of a benchmark's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineRow {
    /// Canonical policy spec (e.g. `attack-decay` or `queue-pi:setpoint=0.6`).
    pub policy: String,
    /// Measured metrics under the governor.
    pub metrics: Metrics,
    /// Frequency changes the hardware actually applied.
    pub reconfigurations: usize,
}

/// Everything measured for one benchmark.
///
/// Serialization is hand-written rather than derived so the `online` rows
/// are omitted when empty: documents produced by the five-cell paper
/// experiment stay byte-identical to the pre-policy format, and older
/// documents (no `online` key) deserialize to an empty row set.
#[derive(Debug, Clone)]
pub struct BenchmarkResults {
    /// Benchmark name.
    pub name: String,
    /// Single-clock 1 GHz baseline.
    pub baseline: Metrics,
    /// Four domains at a static 1 GHz.
    pub baseline_mcd: Metrics,
    /// MCD with the θ = 1 % schedule.
    pub dynamic1: Metrics,
    /// MCD with the θ = 5 % schedule.
    pub dynamic5: Metrics,
    /// Globally scaled single clock matched to dynamic-5 % degradation.
    pub global: Metrics,
    /// The frequency the global search settled on.
    pub global_frequency: Frequency,
    /// Figure-9 summaries for the θ = 5 % schedule (indexed by
    /// [`DomainId::index`]; the front end never scales).
    pub domain_summary5: [DomainSummary; DomainId::COUNT],
    /// Reconfigurations scheduled at θ = 5 %.
    pub reconfigurations5: usize,
    /// Baseline IPC, for reporting.
    pub baseline_ipc: f64,
    /// Governed rows, one per online policy requested (empty for the plain
    /// five-configuration experiment).
    pub online: Vec<OnlineRow>,
}

impl Serialize for BenchmarkResults {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert("name".into(), self.name.to_value());
        m.insert("baseline".into(), self.baseline.to_value());
        m.insert("baseline_mcd".into(), self.baseline_mcd.to_value());
        m.insert("dynamic1".into(), self.dynamic1.to_value());
        m.insert("dynamic5".into(), self.dynamic5.to_value());
        m.insert("global".into(), self.global.to_value());
        m.insert("global_frequency".into(), self.global_frequency.to_value());
        m.insert("domain_summary5".into(), self.domain_summary5.to_value());
        m.insert(
            "reconfigurations5".into(),
            self.reconfigurations5.to_value(),
        );
        m.insert("baseline_ipc".into(), self.baseline_ipc.to_value());
        if !self.online.is_empty() {
            m.insert("online".into(), self.online.to_value());
        }
        Value::Object(m)
    }
}

impl Deserialize for BenchmarkResults {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        Ok(BenchmarkResults {
            name: serde::__private::field(m, "name")?,
            baseline: serde::__private::field(m, "baseline")?,
            baseline_mcd: serde::__private::field(m, "baseline_mcd")?,
            dynamic1: serde::__private::field(m, "dynamic1")?,
            dynamic5: serde::__private::field(m, "dynamic5")?,
            global: serde::__private::field(m, "global")?,
            global_frequency: serde::__private::field(m, "global_frequency")?,
            domain_summary5: serde::__private::field(m, "domain_summary5")?,
            reconfigurations5: serde::__private::field(m, "reconfigurations5")?,
            baseline_ipc: serde::__private::field(m, "baseline_ipc")?,
            online: match m.get("online") {
                Some(v) => <Vec<OnlineRow>>::from_value(v)
                    .map_err(|e| DeError::new(format!("field `online`: {e}")))?,
                None => Vec::new(),
            },
        })
    }
}

impl BenchmarkResults {
    /// Performance degradation of each configuration versus baseline, in the
    /// figure order `[baseline MCD, dynamic-1 %, dynamic-5 %, global]`.
    pub fn perf_degradation(&self) -> [f64; 4] {
        [
            self.baseline_mcd.perf_degradation_vs(&self.baseline),
            self.dynamic1.perf_degradation_vs(&self.baseline),
            self.dynamic5.perf_degradation_vs(&self.baseline),
            self.global.perf_degradation_vs(&self.baseline),
        ]
    }

    /// Energy savings versus baseline, same order.
    pub fn energy_savings(&self) -> [f64; 4] {
        [
            self.baseline_mcd.energy_savings_vs(&self.baseline),
            self.dynamic1.energy_savings_vs(&self.baseline),
            self.dynamic5.energy_savings_vs(&self.baseline),
            self.global.energy_savings_vs(&self.baseline),
        ]
    }

    /// Energy-delay improvement versus baseline, same order. A degenerate
    /// (zero-EDP) baseline reports neutral zeros; use
    /// [`BenchmarkResults::try_energy_delay_improvement`] to detect it.
    pub fn energy_delay_improvement(&self) -> [f64; 4] {
        [
            self.baseline_mcd
                .energy_delay_improvement_vs(&self.baseline),
            self.dynamic1.energy_delay_improvement_vs(&self.baseline),
            self.dynamic5.energy_delay_improvement_vs(&self.baseline),
            self.global.energy_delay_improvement_vs(&self.baseline),
        ]
    }

    /// Energy-delay improvement versus baseline, surfacing a structured
    /// error instead of NaN when the baseline's energy-delay product is
    /// zero.
    pub fn try_energy_delay_improvement(&self) -> Result<[f64; 4], crate::DegenerateBaseline> {
        Ok([
            self.baseline_mcd
                .try_energy_delay_improvement_vs(&self.baseline)?,
            self.dynamic1
                .try_energy_delay_improvement_vs(&self.baseline)?,
            self.dynamic5
                .try_energy_delay_improvement_vs(&self.baseline)?,
            self.global
                .try_energy_delay_improvement_vs(&self.baseline)?,
        ])
    }
}

/// Runs the full experiment (all five configurations) for one benchmark.
///
/// # Example
///
/// ```no_run
/// use mcd_core::{run_benchmark, ExperimentConfig};
/// use mcd_time::DvfsModel;
/// use mcd_workload::suites;
///
/// let cfg = ExperimentConfig::paper(1, 100_000, DvfsModel::XScale);
/// let art = suites::by_name("art").expect("known benchmark");
/// let results = run_benchmark(&art, &cfg);
/// println!("dynamic-5% ED improvement: {:.1}%",
///          100.0 * results.energy_delay_improvement()[2]);
/// ```
pub fn run_benchmark(profile: &BenchmarkProfile, cfg: &ExperimentConfig) -> BenchmarkResults {
    run_benchmark_observed(profile, cfg, [0.01, 0.05], &mut |_, _| {})
}

/// [`run_benchmark`] with an explicit pair of dilation targets and a stage
/// observer.
///
/// `observe` is called once per configuration cell with its label and wall
/// time (a cell's span includes any shared intermediates it was the first
/// to need — e.g. the first dynamic cell pays for the traced run and the
/// shaker pass). The campaign harness uses this for per-cell stage spans;
/// the plain driver passes a no-op.
pub fn run_benchmark_observed(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    thetas: [f64; 2],
    observe: &mut dyn FnMut(&str, std::time::Duration),
) -> BenchmarkResults {
    run_benchmark_with(profile, cfg, RunOptions::default(), thetas, observe)
}

/// [`run_benchmark_observed`] with explicit [`RunOptions`] (analysis
/// fan-out, slack-profile store). Options are results-neutral: the returned
/// [`BenchmarkResults`] are byte-identical for any options value.
///
/// Besides the five per-cell spans, `observe` also receives a wall-time
/// breakdown by pipeline phase under the reserved `phase:` label prefix
/// (`phase:trace-run`, `phase:slack`, `phase:cluster`, `phase:simulate`),
/// emitted once after the last cell.
pub fn run_benchmark_with(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    options: RunOptions,
    thetas: [f64; 2],
    observe: &mut dyn FnMut(&str, std::time::Duration),
) -> BenchmarkResults {
    run_benchmark_scenarios(profile, cfg, options, thetas, &[], observe)
}

/// [`run_benchmark_with`] plus one governed row per online policy.
///
/// The five paper configurations always run; each policy in `policies` adds
/// an `online-<policy>` cell (MCD topology under the given governor) whose
/// label is reported through `observe` like any other cell. With an empty
/// policy list this is exactly `run_benchmark_with`: the returned results
/// serialize byte-identically to the pre-policy format.
pub fn run_benchmark_scenarios(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    options: RunOptions,
    thetas: [f64; 2],
    policies: &[PolicySpec],
    observe: &mut dyn FnMut(&str, std::time::Duration),
) -> BenchmarkResults {
    let mut session = BenchmarkSession::with_options(profile, cfg, options);
    let mut timed = |session: &mut BenchmarkSession, scenario: &ScenarioSpec| {
        let start = std::time::Instant::now();
        let result = session.cell(scenario);
        observe(&result.label, start.elapsed());
        result
    };

    // The five configurations share intermediates through the session: the
    // traced baseline-MCD run feeds the off-line analysis (whose expensive
    // shaker pass runs once for both dilation targets), and the dynamic-5 %
    // execution time anchors the global-scaling search.
    let baseline = timed(&mut session, &ScenarioSpec::baseline()).metrics;
    let baseline_mcd = timed(&mut session, &ScenarioSpec::baseline_mcd()).metrics;
    let dynamic1 = timed(&mut session, &ScenarioSpec::dynamic(thetas[0])).metrics;
    let dyn5 = timed(&mut session, &ScenarioSpec::dynamic(thetas[1]));
    let global_cell = timed(&mut session, &ScenarioSpec::global_matched());

    let online: Vec<OnlineRow> = policies
        .iter()
        .map(|policy| {
            let cell = timed(&mut session, &ScenarioSpec::online(policy.clone()));
            OnlineRow {
                policy: policy.canonical(),
                metrics: cell.metrics,
                reconfigurations: cell
                    .reconfigurations
                    .expect("online cell reports reconfigurations"),
            }
        })
        .collect();

    let phases = session.phases();
    observe("phase:trace-run", phases.trace_run);
    observe("phase:slack", phases.slack);
    observe("phase:cluster", phases.cluster);
    observe("phase:simulate", phases.simulate);

    let baseline_ipc = session.baseline_run().ipc();
    let analysis5 = session.analysis(thetas[1]);
    let domain_summary5 = DomainId::ALL.map(|d| {
        let s = &analysis5.stats[d.index()];
        DomainSummary {
            reconfigs_per_mi: s.reconfigurations as f64 * 1e6 / cfg.instructions as f64,
            mean_frequency_hz: s.mean_frequency_hz,
            min_frequency_hz: s.min_frequency.as_hz(),
            max_frequency_hz: s.max_frequency.as_hz(),
        }
    });

    BenchmarkResults {
        name: profile.name.clone(),
        baseline,
        baseline_mcd,
        dynamic1,
        dynamic5: dyn5.metrics,
        global: global_cell.metrics,
        global_frequency: global_cell
            .frequency
            .expect("global cell reports its frequency"),
        domain_summary5,
        reconfigurations5: dyn5
            .reconfigurations
            .expect("dynamic cell reports reconfigurations"),
        baseline_ipc,
        online,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_workload::suites;

    #[test]
    fn full_experiment_has_paper_shape_for_integer_code() {
        let cfg = ExperimentConfig::paper(5, 60_000, DvfsModel::XScale);
        let profile = suites::by_name("bzip2").expect("known benchmark");
        let r = run_benchmark(&profile, &cfg);
        let perf = r.perf_degradation();
        let energy = r.energy_savings();
        let ed = r.energy_delay_improvement();
        // Baseline MCD: slower and no cheaper.
        assert!(perf[0] > 0.0, "MCD overhead {:.3}", perf[0]);
        assert!(perf[0] < 0.15, "MCD overhead too large {:.3}", perf[0]);
        // Dynamic-5 % saves real energy.
        assert!(
            energy[2] > 0.06,
            "dynamic-5% energy savings {:.3}",
            energy[2]
        );
        // Dynamic-5 % saves at least as much energy as dynamic-1 %.
        assert!(
            energy[2] >= energy[1] - 0.02,
            "5% {:.3} vs 1% {:.3}",
            energy[2],
            energy[1]
        );
        // Dynamic ED must recover well above the baseline-MCD ED cost.
        assert!(
            ed[2] > ed[0] + 0.03,
            "dynamic-5% ED ({:.3}) should recover from the MCD cost ({:.3})",
            ed[2],
            ed[0]
        );
    }

    #[test]
    fn online_policies_add_rows_without_disturbing_the_paper_cells() {
        let cfg = ExperimentConfig::paper(5, 20_000, DvfsModel::XScale);
        let profile = suites::by_name("adpcm").expect("known benchmark");
        let plain = run_benchmark(&profile, &cfg);
        let policies = [
            PolicySpec::parse("attack-decay").expect("valid policy"),
            PolicySpec::parse("queue-pi").expect("valid policy"),
        ];
        let mut labels = Vec::new();
        let governed = run_benchmark_scenarios(
            &profile,
            &cfg,
            RunOptions::default(),
            [0.01, 0.05],
            &policies,
            &mut |label, _| labels.push(label.to_string()),
        );
        assert_eq!(governed.online.len(), 2);
        assert_eq!(governed.online[0].policy, "attack-decay");
        assert_eq!(governed.online[1].policy, "queue-pi");
        assert!(labels.contains(&"online-attack-decay".to_string()));
        assert!(labels.contains(&"online-queue-pi".to_string()));
        // The five paper cells are untouched by the extra rows.
        assert_eq!(governed.baseline, plain.baseline);
        assert_eq!(governed.dynamic5, plain.dynamic5);
        assert_eq!(governed.global_frequency, plain.global_frequency);
        // The governor actually exercised the clocks.
        assert!(governed.online[0].reconfigurations > 0);
    }

    #[test]
    fn results_serde_is_backward_and_forward_compatible() {
        let cfg = ExperimentConfig::paper(3, 8_000, DvfsModel::XScale);
        let profile = suites::by_name("adpcm").expect("known benchmark");
        let plain = run_benchmark(&profile, &cfg);
        let json = serde_json::to_string(&plain).expect("serializable");
        // No governed rows → no `online` key: pre-policy format exactly.
        assert!(!json.contains("\"online\""));
        let back: BenchmarkResults = serde_json::from_str(&json).expect("parses");
        assert!(back.online.is_empty());
        assert_eq!(serde_json::to_string(&back).expect("serializable"), json);

        let governed = run_benchmark_scenarios(
            &profile,
            &cfg,
            RunOptions::default(),
            [0.01, 0.05],
            &[PolicySpec::parse("attack-decay").expect("valid policy")],
            &mut |_, _| {},
        );
        let json = serde_json::to_string(&governed).expect("serializable");
        assert!(json.contains("\"online\""));
        let back: BenchmarkResults = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.online, governed.online);
        assert_eq!(serde_json::to_string(&back).expect("serializable"), json);
    }

    #[test]
    fn global_matches_dynamic5_slowdown() {
        let cfg = ExperimentConfig::paper(5, 40_000, DvfsModel::XScale);
        let profile = suites::by_name("gcc").expect("known benchmark");
        let r = run_benchmark(&profile, &cfg);
        let perf = r.perf_degradation();
        // The global configuration's degradation should be near dynamic-5 %'s
        // (quantized to the 32-point grid).
        assert!(
            (perf[3] - perf[2]).abs() < 0.08,
            "global {:.3} vs dynamic-5% {:.3}",
            perf[3],
            perf[2]
        );
    }
}
