//! The paper's five machine configurations and the experiment driver.
//!
//! §4: *baseline* (single 1 GHz clock, no scaling), *baseline MCD* (four
//! domains statically at 1 GHz — pure synchronization cost), *dynamic-1 %*
//! and *dynamic-5 %* (baseline MCD plus per-domain schedules from the
//! off-line tool at θ = 1 % / 5 %), and *global* (the baseline's single
//! clock and voltage scaled so its performance degradation matches
//! dynamic-5 % — conventional whole-chip DVFS at equal slowdown).

use serde::{Deserialize, Serialize};

use mcd_offline::{analyze, AnalysisOutput, OfflineConfig};
use mcd_pipeline::{simulate, DomainId, MachineConfig, RunResult};
use mcd_power::PowerModel;
use mcd_time::{DvfsModel, Frequency, FrequencyGrid, VfTable};
use mcd_workload::BenchmarkProfile;

use crate::metrics::Metrics;

/// Experiment parameters shared by all benchmarks.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Experiment seed (workload, jitter, PLL lock times).
    pub seed: u64,
    /// Committed instructions per run.
    pub instructions: u64,
    /// DVFS transition model for the dynamic configurations.
    pub model: DvfsModel,
    /// Power model.
    pub power: PowerModel,
    /// Off-line tool configuration template (dilation target is overridden
    /// per dynamic configuration).
    pub offline: OfflineConfig,
}

impl ExperimentConfig {
    /// The paper's setup under a given DVFS model.
    pub fn paper(seed: u64, instructions: u64, model: DvfsModel) -> Self {
        ExperimentConfig {
            seed,
            instructions,
            model,
            power: PowerModel::paper_calibrated(),
            offline: OfflineConfig::paper(0.05, model),
        }
    }
}

/// Per-domain summary used by Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainSummary {
    /// Reconfigurations per million committed instructions.
    pub reconfigs_per_mi: f64,
    /// Time-weighted mean frequency (Hz) over the planned schedule.
    pub mean_frequency_hz: f64,
    /// Lowest planned frequency (Hz).
    pub min_frequency_hz: u64,
    /// Highest planned frequency (Hz).
    pub max_frequency_hz: u64,
}

/// Everything measured for one benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchmarkResults {
    /// Benchmark name.
    pub name: String,
    /// Single-clock 1 GHz baseline.
    pub baseline: Metrics,
    /// Four domains at a static 1 GHz.
    pub baseline_mcd: Metrics,
    /// MCD with the θ = 1 % schedule.
    pub dynamic1: Metrics,
    /// MCD with the θ = 5 % schedule.
    pub dynamic5: Metrics,
    /// Globally scaled single clock matched to dynamic-5 % degradation.
    pub global: Metrics,
    /// The frequency the global search settled on.
    pub global_frequency: Frequency,
    /// Figure-9 summaries for the θ = 5 % schedule (indexed by
    /// [`DomainId::index`]; the front end never scales).
    pub domain_summary5: [DomainSummary; DomainId::COUNT],
    /// Reconfigurations scheduled at θ = 5 %.
    pub reconfigurations5: usize,
    /// Baseline IPC, for reporting.
    pub baseline_ipc: f64,
}

impl BenchmarkResults {
    /// Performance degradation of each configuration versus baseline, in the
    /// figure order `[baseline MCD, dynamic-1 %, dynamic-5 %, global]`.
    pub fn perf_degradation(&self) -> [f64; 4] {
        [
            self.baseline_mcd.perf_degradation_vs(&self.baseline),
            self.dynamic1.perf_degradation_vs(&self.baseline),
            self.dynamic5.perf_degradation_vs(&self.baseline),
            self.global.perf_degradation_vs(&self.baseline),
        ]
    }

    /// Energy savings versus baseline, same order.
    pub fn energy_savings(&self) -> [f64; 4] {
        [
            self.baseline_mcd.energy_savings_vs(&self.baseline),
            self.dynamic1.energy_savings_vs(&self.baseline),
            self.dynamic5.energy_savings_vs(&self.baseline),
            self.global.energy_savings_vs(&self.baseline),
        ]
    }

    /// Energy-delay improvement versus baseline, same order.
    pub fn energy_delay_improvement(&self) -> [f64; 4] {
        [
            self.baseline_mcd.energy_delay_improvement_vs(&self.baseline),
            self.dynamic1.energy_delay_improvement_vs(&self.baseline),
            self.dynamic5.energy_delay_improvement_vs(&self.baseline),
            self.global.energy_delay_improvement_vs(&self.baseline),
        ]
    }
}

fn metrics_of(power: &PowerModel, run: &RunResult) -> Metrics {
    Metrics::new(run.total_time, power.energy_of(run).total())
}

/// Runs the full experiment (all five configurations) for one benchmark.
///
/// # Example
///
/// ```no_run
/// use mcd_core::{run_benchmark, ExperimentConfig};
/// use mcd_time::DvfsModel;
/// use mcd_workload::suites;
///
/// let cfg = ExperimentConfig::paper(1, 100_000, DvfsModel::XScale);
/// let art = suites::by_name("art").expect("known benchmark");
/// let results = run_benchmark(&art, &cfg);
/// println!("dynamic-5% ED improvement: {:.1}%",
///          100.0 * results.energy_delay_improvement()[2]);
/// ```
pub fn run_benchmark(profile: &BenchmarkProfile, cfg: &ExperimentConfig) -> BenchmarkResults {
    // 1. Single-clock baseline.
    let base_machine = MachineConfig::baseline(cfg.seed);
    let base_run = simulate(&base_machine, profile, cfg.instructions);
    let baseline = metrics_of(&cfg.power, &base_run);

    // 2. Baseline MCD, traced for the off-line tool.
    let mut mcd_machine = MachineConfig::baseline_mcd(cfg.seed);
    mcd_machine.collect_trace = true;
    let mcd_run = simulate(&mcd_machine, profile, cfg.instructions);
    let baseline_mcd = metrics_of(&cfg.power, &mcd_run);
    let trace = mcd_run.trace.as_ref().expect("trace requested");

    // 3 & 4. Off-line analysis at both dilation targets, each refined in a
    // closed loop: the analytic dilation model cannot see every structural
    // effect of slowing a domain, so the tool replays its own schedule and
    // tightens (or relaxes) the per-domain budgets until the measured
    // degradation lands near θ — the paper's figures show exactly this
    // property ("performance degradation … roughly in keeping with θ").
    let (_analysis1, dyn1_run) =
        refined_dynamic(profile, cfg, trace, &mcd_machine.pipeline, 0.01, mcd_run.total_time);
    let dynamic1 = metrics_of(&cfg.power, &dyn1_run);
    let (analysis5, dyn5_run) =
        refined_dynamic(profile, cfg, trace, &mcd_machine.pipeline, 0.05, mcd_run.total_time);
    let dynamic5 = metrics_of(&cfg.power, &dyn5_run);

    // 5. Global scaling matched to the dynamic-5 % degradation.
    let (global_frequency, global_run) =
        search_global(profile, cfg, dyn5_run.total_time, base_run.total_time);
    let global = metrics_of(&cfg.power, &global_run);

    let domain_summary5 = DomainId::ALL.map(|d| {
        let s = &analysis5.stats[d.index()];
        DomainSummary {
            reconfigs_per_mi: s.reconfigurations as f64 * 1e6 / cfg.instructions as f64,
            mean_frequency_hz: s.mean_frequency_hz,
            min_frequency_hz: s.min_frequency.as_hz(),
            max_frequency_hz: s.max_frequency.as_hz(),
        }
    });

    BenchmarkResults {
        name: profile.name.clone(),
        baseline,
        baseline_mcd,
        dynamic1,
        dynamic5,
        global,
        global_frequency,
        domain_summary5,
        reconfigurations5: analysis5.schedule.len(),
        baseline_ipc: base_run.ipc(),
    }
}

/// Derives a schedule for dilation target θ and refines the per-domain
/// budgets until the dynamic run's measured degradation (over the baseline
/// MCD run) is close to θ.
fn refined_dynamic(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    trace: &[mcd_pipeline::InstrTrace],
    pcfg: &mcd_pipeline::PipelineConfig,
    theta: f64,
    mcd_time: mcd_time::Femtos,
) -> (AnalysisOutput, RunResult) {
    let mut off = cfg.offline.clone();
    off.dilation_target = theta;
    off.model = cfg.model;
    let base_safety = off.budget_safety;
    // Share of the degradation budget granted to each domain. Scaling each
    // domain's budget against its *measured* cost redistributes slack toward
    // domains that are cheap to slow on this particular benchmark.
    let weights = [0.0, 0.40, 0.25, 0.35];
    let mut scale = [1.0f64; DomainId::COUNT];
    let mut best: Option<(AnalysisOutput, RunResult)> = None;
    for iter in 0..3 {
        for (i, s) in off.budget_safety.iter_mut().enumerate() {
            *s = (base_safety[i] * scale[i]).clamp(0.02, 5.0);
        }
        let analysis = analyze(trace, pcfg, &off);
        let machine = MachineConfig::dynamic(cfg.seed, cfg.model, analysis.schedule.clone());
        let run = simulate(&machine, profile, cfg.instructions);
        best = Some((analysis, run));
        if iter == 2 {
            break;
        }
        // Measure each domain's isolated degradation and rescale its budget
        // toward its share of θ.
        let analysis_ref = &best.as_ref().expect("just set").0;
        let mut adjusted = false;
        for d in &DomainId::ALL[1..] {
            let entries: Vec<_> = analysis_ref
                .schedule
                .entries()
                .iter()
                .filter(|e| e.domain == *d)
                .copied()
                .collect();
            if entries.is_empty() {
                continue;
            }
            let machine = MachineConfig::dynamic(
                cfg.seed,
                cfg.model,
                mcd_pipeline::FrequencySchedule::from_entries(entries),
            );
            let run_d = simulate(&machine, profile, cfg.instructions);
            let deg_d =
                run_d.total_time.as_femtos() as f64 / mcd_time.as_femtos() as f64 - 1.0;
            let target_d = theta * weights[d.index()];
            if deg_d > target_d * 1.35 + 0.003 || deg_d < target_d * 0.5 {
                let ratio = (target_d / deg_d.max(1e-4)).clamp(0.3, 2.5);
                scale[d.index()] = (scale[d.index()] * ratio).clamp(0.02, 8.0);
                adjusted = true;
            }
        }
        if !adjusted {
            break;
        }
    }
    best.expect("at least one iteration ran")
}

/// Finds the 32-point-grid frequency whose single-clock run time is closest
/// to `target_time` (the dynamic-5 % execution time), by bisection.
fn search_global(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    target_time: mcd_time::Femtos,
    baseline_time: mcd_time::Femtos,
) -> (Frequency, RunResult) {
    let grid = FrequencyGrid::new(VfTable::paper(), 32);
    if target_time <= baseline_time {
        // Dynamic-5 % was not slower: global cannot scale at all.
        let f = grid.points().last().expect("non-empty grid").frequency;
        let run = simulate(&MachineConfig::global(cfg.seed, f), profile, cfg.instructions);
        return (f, run);
    }
    // Run time decreases monotonically with frequency: bisect the grid.
    let mut lo = 0usize;
    let mut hi = grid.len() - 1;
    let mut best: Option<(u64, Frequency, RunResult)> = None;
    let consider = |i: usize, best: &mut Option<(u64, Frequency, RunResult)>| -> bool {
        let f = grid.point(i).frequency;
        let run = simulate(&MachineConfig::global(cfg.seed, f), profile, cfg.instructions);
        let err = run.total_time.as_femtos().abs_diff(target_time.as_femtos());
        let slower = run.total_time > target_time;
        if best.as_ref().map(|(e, _, _)| err < *e).unwrap_or(true) {
            *best = Some((err, f, run));
        }
        slower
    };
    while lo < hi {
        let mid = (lo + hi) / 2;
        if consider(mid, &mut best) {
            // Too slow: need a higher frequency.
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    consider(lo, &mut best);
    let (_, f, run) = best.expect("at least one probe ran");
    (f, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_workload::suites;

    #[test]
    fn full_experiment_has_paper_shape_for_integer_code() {
        let cfg = ExperimentConfig::paper(5, 60_000, DvfsModel::XScale);
        let profile = suites::by_name("bzip2").expect("known benchmark");
        let r = run_benchmark(&profile, &cfg);
        let perf = r.perf_degradation();
        let energy = r.energy_savings();
        let ed = r.energy_delay_improvement();
        // Baseline MCD: slower and no cheaper.
        assert!(perf[0] > 0.0, "MCD overhead {:.3}", perf[0]);
        assert!(perf[0] < 0.15, "MCD overhead too large {:.3}", perf[0]);
        // Dynamic-5 % saves real energy.
        assert!(energy[2] > 0.06, "dynamic-5% energy savings {:.3}", energy[2]);
        // Dynamic-5 % saves at least as much energy as dynamic-1 %.
        assert!(energy[2] >= energy[1] - 0.02, "5% {:.3} vs 1% {:.3}", energy[2], energy[1]);
        // Dynamic ED must recover well above the baseline-MCD ED cost.
        assert!(
            ed[2] > ed[0] + 0.03,
            "dynamic-5% ED ({:.3}) should recover from the MCD cost ({:.3})",
            ed[2],
            ed[0]
        );
    }

    #[test]
    fn global_matches_dynamic5_slowdown() {
        let cfg = ExperimentConfig::paper(5, 40_000, DvfsModel::XScale);
        let profile = suites::by_name("gcc").expect("known benchmark");
        let r = run_benchmark(&profile, &cfg);
        let perf = r.perf_degradation();
        // The global configuration's degradation should be near dynamic-5 %'s
        // (quantized to the 32-point grid).
        assert!(
            (perf[3] - perf[2]).abs() < 0.08,
            "global {:.3} vs dynamic-5% {:.3}",
            perf[3],
            perf[2]
        );
    }
}
