//! Cell-level experiment API: one (benchmark × machine configuration) run.
//!
//! The paper's five configurations are not independent — `dynamic-θ` needs
//! the traced baseline-MCD run, and `global` needs the dynamic-5 % execution
//! time to match its slowdown against. [`BenchmarkSession`] owns those
//! shared intermediates and memoizes them, so any subset of cells can be
//! computed in any order while every expensive product (the traced run, the
//! shaker's slack profile, each refined schedule) is built exactly once.
//! Both the serial driver ([`crate::run_benchmark`]) and the parallel
//! campaign harness go through this one code path.

use std::collections::HashMap;

use mcd_offline::{cluster_schedule, prepare_slack, AnalysisOutput, SlackProfile};
use mcd_pipeline::{simulate, DomainId, MachineConfig, PipelineConfig, RunResult, ScheduleEntry};
use mcd_time::{Femtos, Frequency, FrequencyGrid, VfTable};
use mcd_workload::BenchmarkProfile;

use crate::experiment::ExperimentConfig;
use crate::metrics::Metrics;

/// One of the paper's machine configurations, as an independent cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CellConfig {
    /// Single 1 GHz clock, no scaling.
    Baseline,
    /// Four domains statically at 1 GHz (pure synchronization cost).
    BaselineMcd,
    /// MCD with the off-line schedule at dilation target θ.
    Dynamic { theta: f64 },
    /// Single clock scaled so its slowdown matches dynamic-5 %.
    GlobalMatched,
}

impl CellConfig {
    /// The paper's five configurations in figure order.
    pub const PAPER: [CellConfig; 5] = [
        CellConfig::Baseline,
        CellConfig::BaselineMcd,
        CellConfig::Dynamic { theta: 0.01 },
        CellConfig::Dynamic { theta: 0.05 },
        CellConfig::GlobalMatched,
    ];

    /// Human-readable configuration name.
    pub fn label(&self) -> String {
        match self {
            CellConfig::Baseline => "baseline".into(),
            CellConfig::BaselineMcd => "baseline-mcd".into(),
            CellConfig::Dynamic { theta } => format!("dynamic-{:.0}%", theta * 100.0),
            CellConfig::GlobalMatched => "global".into(),
        }
    }
}

/// What one cell produced.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Configuration name (see [`CellConfig::label`]).
    pub label: String,
    /// Time/energy metrics of the run.
    pub metrics: Metrics,
    /// Committed instructions.
    pub committed: u64,
    /// Instructions per cycle (per base-frequency cycle).
    pub ipc: f64,
    /// The frequency the global search settled on (global cells only).
    pub frequency: Option<Frequency>,
    /// Scheduled reconfigurations (dynamic cells only).
    pub reconfigurations: Option<usize>,
}

pub(crate) fn metrics_of(cfg: &ExperimentConfig, run: &RunResult) -> Metrics {
    Metrics::new(run.total_time, cfg.power.energy_of(run).total())
}

/// Memoizing executor for one benchmark under one experiment configuration.
pub struct BenchmarkSession<'a> {
    profile: &'a BenchmarkProfile,
    cfg: &'a ExperimentConfig,
    baseline: Option<RunResult>,
    mcd: Option<(PipelineConfig, RunResult)>,
    slack: Option<SlackProfile>,
    /// Refined dynamic runs, keyed by θ's bit pattern.
    dynamic: Vec<(u64, AnalysisOutput, RunResult)>,
    global: Option<(Frequency, RunResult)>,
}

impl<'a> BenchmarkSession<'a> {
    /// Creates a lazy session; nothing is simulated until a cell is asked
    /// for.
    pub fn new(profile: &'a BenchmarkProfile, cfg: &'a ExperimentConfig) -> Self {
        BenchmarkSession {
            profile,
            cfg,
            baseline: None,
            mcd: None,
            slack: None,
            dynamic: Vec::new(),
            global: None,
        }
    }

    /// The benchmark this session runs.
    pub fn profile(&self) -> &BenchmarkProfile {
        self.profile
    }

    /// Computes (or returns the memoized) result for one cell.
    pub fn cell(&mut self, cell: CellConfig) -> CellResult {
        let label = cell.label();
        let cfg = self.cfg;
        match cell {
            CellConfig::Baseline => {
                let run = self.baseline_run();
                CellResult {
                    label,
                    metrics: metrics_of(cfg, run),
                    committed: run.committed,
                    ipc: run.ipc(),
                    frequency: None,
                    reconfigurations: None,
                }
            }
            CellConfig::BaselineMcd => {
                let run = self.mcd_run();
                CellResult {
                    label,
                    metrics: metrics_of(cfg, run),
                    committed: run.committed,
                    ipc: run.ipc(),
                    frequency: None,
                    reconfigurations: None,
                }
            }
            CellConfig::Dynamic { theta } => {
                let i = self.ensure_dynamic(theta);
                let (_, analysis, run) = &self.dynamic[i];
                CellResult {
                    label,
                    metrics: metrics_of(cfg, run),
                    committed: run.committed,
                    ipc: run.ipc(),
                    frequency: None,
                    reconfigurations: Some(analysis.schedule.len()),
                }
            }
            CellConfig::GlobalMatched => {
                let (frequency, run) = self.global_run();
                let (frequency, metrics, committed, ipc) =
                    (*frequency, metrics_of(cfg, run), run.committed, run.ipc());
                CellResult {
                    label,
                    metrics,
                    committed,
                    ipc,
                    frequency: Some(frequency),
                    reconfigurations: None,
                }
            }
        }
    }

    /// The single-clock 1 GHz baseline run.
    pub fn baseline_run(&mut self) -> &RunResult {
        if self.baseline.is_none() {
            let machine = MachineConfig::baseline(self.cfg.seed);
            self.baseline = Some(simulate(&machine, self.profile, self.cfg.instructions));
        }
        self.baseline.as_ref().expect("just computed")
    }

    /// The traced baseline-MCD run.
    pub fn mcd_run(&mut self) -> &RunResult {
        self.ensure_mcd();
        &self.mcd.as_ref().expect("just computed").1
    }

    /// The analysis behind the dynamic-θ schedule (Figure-9 statistics).
    pub fn analysis(&mut self, theta: f64) -> &AnalysisOutput {
        let i = self.ensure_dynamic(theta);
        &self.dynamic[i].1
    }

    /// The frequency the global search settled on, with its run.
    pub fn global_run(&mut self) -> &(Frequency, RunResult) {
        if self.global.is_none() {
            let i = self.ensure_dynamic(0.05);
            let target_time = self.dynamic[i].2.total_time;
            let baseline_time = self.baseline_run().total_time;
            self.global = Some(search_global(
                self.profile,
                self.cfg,
                target_time,
                baseline_time,
            ));
        }
        self.global.as_ref().expect("just computed")
    }

    fn ensure_mcd(&mut self) {
        if self.mcd.is_none() {
            let mut machine = MachineConfig::baseline_mcd(self.cfg.seed);
            machine.collect_trace = true;
            let run = simulate(&machine, self.profile, self.cfg.instructions);
            self.mcd = Some((machine.pipeline, run));
        }
    }

    fn ensure_slack(&mut self) {
        self.ensure_mcd();
        if self.slack.is_none() {
            let (pipeline, run) = self.mcd.as_ref().expect("just ensured");
            let trace = run.trace.as_ref().expect("trace requested");
            let slack = prepare_slack(trace, pipeline, &self.cfg.offline);
            self.slack = Some(slack);
        }
    }

    fn ensure_dynamic(&mut self, theta: f64) -> usize {
        let key = theta.to_bits();
        if let Some(i) = self.dynamic.iter().position(|(k, ..)| *k == key) {
            return i;
        }
        self.ensure_slack();
        let mcd_time = self.mcd.as_ref().expect("ensured").1.total_time;
        let slack = self.slack.as_ref().expect("ensured");
        let (analysis, run) = refine_dynamic(self.profile, self.cfg, slack, theta, mcd_time);
        self.dynamic.push((key, analysis, run));
        self.dynamic.len() - 1
    }
}

/// Runs a single cell standalone (a fresh session computes exactly the
/// dependencies this cell needs and nothing else).
///
/// # Example
///
/// ```no_run
/// use mcd_core::{run_cell, CellConfig, ExperimentConfig};
/// use mcd_time::DvfsModel;
/// use mcd_workload::suites;
///
/// let cfg = ExperimentConfig::paper(1, 100_000, DvfsModel::XScale);
/// let art = suites::by_name("art").expect("known benchmark");
/// let cell = run_cell(&art, &cfg, CellConfig::Dynamic { theta: 0.05 });
/// println!("{}: {} reconfigurations", cell.label, cell.reconfigurations.unwrap());
/// ```
pub fn run_cell(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    cell: CellConfig,
) -> CellResult {
    BenchmarkSession::new(profile, cfg).cell(cell)
}

/// Derives a schedule for dilation target θ and refines the per-domain
/// budgets until the dynamic run's measured degradation (over the baseline
/// MCD run) is close to θ.
///
/// Only the cheap clustering pass re-runs per refinement iteration; the
/// shaker's slack profile is shared across iterations *and* across θ
/// targets.
fn refine_dynamic(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    slack: &SlackProfile,
    theta: f64,
    mcd_time: Femtos,
) -> (AnalysisOutput, RunResult) {
    let mut off = cfg.offline.clone();
    off.dilation_target = theta;
    off.model = cfg.model;
    let base_safety = off.budget_safety;
    // Share of the degradation budget granted to each domain. Scaling each
    // domain's budget against its *measured* cost redistributes slack toward
    // domains that are cheap to slow on this particular benchmark.
    let weights = [0.0, 0.40, 0.25, 0.35];
    let mut scale = [1.0f64; DomainId::COUNT];
    let mut best: Option<(AnalysisOutput, RunResult)> = None;
    // Budget clamps saturate, so successive iterations regularly regenerate
    // a schedule (full or per-domain probe) already simulated this call.
    // A run is a pure function of its schedule here — seed, model, workload
    // and length are fixed — so identical schedules are simulated once.
    let mut run_memo: HashMap<Vec<ScheduleEntry>, RunResult> = HashMap::new();
    let mut probe_memo: HashMap<Vec<ScheduleEntry>, Femtos> = HashMap::new();
    for iter in 0..3 {
        for (i, s) in off.budget_safety.iter_mut().enumerate() {
            *s = (base_safety[i] * scale[i]).clamp(0.02, 5.0);
        }
        let analysis = cluster_schedule(slack, &off);
        let key = analysis.schedule.entries().to_vec();
        let run = match run_memo.get(&key) {
            Some(run) => run.clone(),
            None => {
                let machine =
                    MachineConfig::dynamic(cfg.seed, cfg.model, analysis.schedule.clone());
                let run = simulate(&machine, profile, cfg.instructions);
                run_memo.insert(key, run.clone());
                run
            }
        };
        best = Some((analysis, run));
        if iter == 2 {
            break;
        }
        // Measure each domain's isolated degradation and rescale its budget
        // toward its share of θ.
        let analysis_ref = &best.as_ref().expect("just set").0;
        let mut adjusted = false;
        for d in &DomainId::ALL[1..] {
            let entries: Vec<_> = analysis_ref
                .schedule
                .entries()
                .iter()
                .filter(|e| e.domain == *d)
                .copied()
                .collect();
            if entries.is_empty() {
                continue;
            }
            let probe_time = match probe_memo.get(&entries) {
                Some(t) => *t,
                None => {
                    let machine = MachineConfig::dynamic(
                        cfg.seed,
                        cfg.model,
                        mcd_pipeline::FrequencySchedule::from_entries(entries.clone()),
                    );
                    let run_d = simulate(&machine, profile, cfg.instructions);
                    probe_memo.insert(entries, run_d.total_time);
                    run_d.total_time
                }
            };
            let deg_d = probe_time.as_femtos() as f64 / mcd_time.as_femtos() as f64 - 1.0;
            let target_d = theta * weights[d.index()];
            if deg_d > target_d * 1.35 + 0.003 || deg_d < target_d * 0.5 {
                let ratio = (target_d / deg_d.max(1e-4)).clamp(0.3, 2.5);
                scale[d.index()] = (scale[d.index()] * ratio).clamp(0.02, 8.0);
                adjusted = true;
            }
        }
        if !adjusted {
            break;
        }
    }
    best.expect("at least one iteration ran")
}

/// Finds the 32-point-grid frequency whose single-clock run time is closest
/// to `target_time` (the dynamic-5 % execution time), by bisection.
fn search_global(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    target_time: Femtos,
    baseline_time: Femtos,
) -> (Frequency, RunResult) {
    let grid = FrequencyGrid::new(VfTable::paper(), 32);
    if target_time <= baseline_time {
        // Dynamic-5 % was not slower: global cannot scale at all.
        let f = grid.points().last().expect("non-empty grid").frequency;
        let run = simulate(
            &MachineConfig::global(cfg.seed, f),
            profile,
            cfg.instructions,
        );
        return (f, run);
    }
    // Run time decreases monotonically with frequency: bisect the grid.
    let mut lo = 0usize;
    let mut hi = grid.len() - 1;
    let mut probed = Vec::new();
    let mut best: Option<(u64, Frequency, RunResult)> = None;
    let consider = |i: usize, best: &mut Option<(u64, Frequency, RunResult)>| -> bool {
        let f = grid.point(i).frequency;
        let run = simulate(
            &MachineConfig::global(cfg.seed, f),
            profile,
            cfg.instructions,
        );
        let err = run.total_time.as_femtos().abs_diff(target_time.as_femtos());
        let slower = run.total_time > target_time;
        if best.as_ref().map(|(e, _, _)| err < *e).unwrap_or(true) {
            *best = Some((err, f, run));
        }
        slower
    };
    while lo < hi {
        let mid = (lo + hi) / 2;
        probed.push(mid);
        if consider(mid, &mut best) {
            // Too slow: need a higher frequency.
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    // Bisection often converges onto an index it already probed (`hi = mid`
    // on the last step); a repeat probe is an identical run whose error
    // cannot beat its own strict minimum, so skip it.
    if !probed.contains(&lo) {
        consider(lo, &mut best);
    }
    let (_, f, run) = best.expect("at least one probe ran");
    (f, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_time::DvfsModel;
    use mcd_workload::suites;

    #[test]
    fn standalone_cell_matches_session_cell() {
        let cfg = ExperimentConfig::paper(7, 20_000, DvfsModel::XScale);
        let profile = suites::by_name("gcc").expect("known benchmark");
        let standalone = run_cell(&profile, &cfg, CellConfig::Baseline);
        let mut session = BenchmarkSession::new(&profile, &cfg);
        let from_session = session.cell(CellConfig::Baseline);
        assert_eq!(standalone.metrics, from_session.metrics);
        assert_eq!(standalone.committed, from_session.committed);
    }

    #[test]
    fn cells_are_memoized() {
        let cfg = ExperimentConfig::paper(7, 15_000, DvfsModel::XScale);
        let profile = suites::by_name("swim").expect("known benchmark");
        let mut session = BenchmarkSession::new(&profile, &cfg);
        let a = session.cell(CellConfig::BaselineMcd);
        let b = session.cell(CellConfig::BaselineMcd);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(CellConfig::Baseline.label(), "baseline");
        assert_eq!(CellConfig::Dynamic { theta: 0.05 }.label(), "dynamic-5%");
        assert_eq!(CellConfig::GlobalMatched.label(), "global");
    }
}
