//! Cell-level experiment API: one (benchmark × machine configuration) run.
//!
//! The paper's five configurations are not independent — `dynamic-θ` needs
//! the traced baseline-MCD run, and `global` needs the dynamic-5 % execution
//! time to match its slowdown against. [`BenchmarkSession`] owns those
//! shared intermediates and memoizes them, so any subset of cells can be
//! computed in any order while every expensive product (the traced run, the
//! shaker's slack profile, each refined schedule) is built exactly once.
//! Both the serial driver ([`crate::run_benchmark`]) and the parallel
//! campaign harness go through this one code path.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mcd_offline::{
    cluster_schedule, prepare_slack_threads, slack_cache_key_material, AnalysisOutput, SlackProfile,
};
use mcd_pipeline::{
    simulate, simulate_governed, DomainId, MachineConfig, PipelineConfig, PolicySpec, RunResult,
    ScheduleEntry,
};
use mcd_time::{Femtos, Frequency, FrequencyGrid, VfTable};
use mcd_workload::BenchmarkProfile;
use serde::{DeError, Deserialize, Map, Serialize, Value};

use crate::experiment::ExperimentConfig;
use crate::metrics::Metrics;

/// Cross-process persistence hook for shaker slack profiles.
///
/// The session asks the store for a serialized [`SlackProfile`] before
/// running the expensive shaker pass, and offers the freshly computed
/// profile back afterwards. Keys are the canonical JSON key material from
/// [`mcd_offline::slack_cache_key_material`]; implementations are expected
/// to hash it themselves. A store must look infallible from the session's
/// side: load errors degrade to a miss (`None`), store errors are absorbed
/// (the in-memory profile is still good). `Send + Sync` because the
/// campaign harness shares one store across worker threads (and hands it to
/// watchdog-monitored attempt threads).
pub trait SlackStore: Send + Sync {
    /// Returns the serialized profile stored under `key_material`, if any.
    fn load(&self, key_material: &str) -> Option<String>;
    /// Persists `payload` under `key_material`.
    fn store(&self, key_material: &str, payload: &str);
}

/// Session execution options: analysis fan-out and slack-profile reuse.
///
/// Every option is results-neutral — the produced [`CellResult`]s and
/// [`RunResult`]s are byte-identical for any combination (that is the
/// contract [`mcd_offline::prepare_slack_threads`] and [`SlackStore`] are
/// held to).
#[derive(Clone)]
pub struct RunOptions {
    /// Shaker analysis threads: `1` (the default) is the serial path with
    /// no threads spawned, `0` means one thread per available core,
    /// matching the harness's worker convention.
    pub analysis_threads: usize,
    /// Optional cross-process slack-profile store.
    pub slack_store: Option<Arc<dyn SlackStore>>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            analysis_threads: 1,
            slack_store: None,
        }
    }
}

impl std::fmt::Debug for RunOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("analysis_threads", &self.analysis_threads)
            .field("slack_store", &self.slack_store.is_some())
            .finish()
    }
}

/// Wall-time breakdown of a session's work by pipeline phase.
///
/// Spans accumulate as cells force their shared intermediates, so after the
/// paper's five cells the four fields partition essentially all of the
/// session's compute time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// The traced baseline-MCD run (§3.2 trace collection).
    pub trace_run: Duration,
    /// The off-line slack analysis (DAG build + shaker) — or the cache
    /// round-trip that replaced it.
    pub slack: Duration,
    /// Clustering and schedule emission, over all refinement iterations.
    pub cluster: Duration,
    /// Every other simulator run: baseline, dynamic, probes, global search.
    pub simulate: Duration,
}

/// The machine topology a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// Single 1 GHz clock.
    Baseline,
    /// Four independently clocked domains.
    Mcd,
    /// Single clock scaled so its slowdown matches dynamic-5 %.
    GlobalMatched,
}

impl Topology {
    fn tag(self) -> &'static str {
        match self {
            Topology::Baseline => "baseline",
            Topology::Mcd => "mcd",
            Topology::GlobalMatched => "global-matched",
        }
    }

    fn from_tag(tag: &str) -> Result<Self, String> {
        match tag {
            "baseline" => Ok(Topology::Baseline),
            "mcd" => Ok(Topology::Mcd),
            "global-matched" => Ok(Topology::GlobalMatched),
            other => Err(format!("unknown topology {other:?}")),
        }
    }
}

/// The control layer driving a scenario's clocks.
#[derive(Debug, Clone, PartialEq)]
pub enum Control {
    /// No scaling: every domain stays at its static frequency.
    None,
    /// The off-line tool's schedule at dilation target θ.
    OfflineSchedule {
        /// Dilation target (fraction, e.g. `0.05` for θ = 5 %).
        theta: f64,
    },
    /// An on-line governor from the policy registry.
    Online {
        /// The policy instantiation (id plus parameter overrides).
        policy: PolicySpec,
    },
}

/// One declarative run configuration: machine topology × control layer.
///
/// The paper's five configurations are the four valid (topology, control)
/// legacy combinations (θ appears twice); the `Online` control axis is
/// what makes governed runs first-class campaign cells. Construct through
/// the named constructors — [`ScenarioSpec::validate`] rejects the
/// combinations the simulator cannot express (schedules and governors both
/// need per-domain clocks, and the global search dictates its own control).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Machine topology.
    pub topology: Topology,
    /// Control layer.
    pub control: Control,
}

/// The former name of this axis, kept as an alias through the refactor so
/// diffs stay reviewable; new code should say [`ScenarioSpec`].
pub type CellConfig = ScenarioSpec;

impl ScenarioSpec {
    /// The paper's five configurations in figure order.
    pub const PAPER: [ScenarioSpec; 5] = [
        ScenarioSpec {
            topology: Topology::Baseline,
            control: Control::None,
        },
        ScenarioSpec {
            topology: Topology::Mcd,
            control: Control::None,
        },
        ScenarioSpec {
            topology: Topology::Mcd,
            control: Control::OfflineSchedule { theta: 0.01 },
        },
        ScenarioSpec {
            topology: Topology::Mcd,
            control: Control::OfflineSchedule { theta: 0.05 },
        },
        ScenarioSpec {
            topology: Topology::GlobalMatched,
            control: Control::None,
        },
    ];

    /// Single 1 GHz clock, no scaling.
    pub fn baseline() -> ScenarioSpec {
        ScenarioSpec::PAPER[0].clone()
    }

    /// Four domains statically at 1 GHz (pure synchronization cost).
    pub fn baseline_mcd() -> ScenarioSpec {
        ScenarioSpec::PAPER[1].clone()
    }

    /// MCD with the off-line schedule at dilation target θ.
    pub fn dynamic(theta: f64) -> ScenarioSpec {
        ScenarioSpec {
            topology: Topology::Mcd,
            control: Control::OfflineSchedule { theta },
        }
    }

    /// Single clock scaled so its slowdown matches dynamic-5 %.
    pub fn global_matched() -> ScenarioSpec {
        ScenarioSpec::PAPER[4].clone()
    }

    /// MCD under an on-line governor from the policy registry.
    pub fn online(policy: PolicySpec) -> ScenarioSpec {
        ScenarioSpec {
            topology: Topology::Mcd,
            control: Control::Online { policy },
        }
    }

    /// Checks that the combination is one the simulator can express.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid pairing: schedules and
    /// governors both require the MCD topology (per-domain clocks), and the
    /// global-matched topology performs its own frequency search.
    pub fn validate(&self) -> Result<(), String> {
        match (&self.topology, &self.control) {
            (Topology::Baseline | Topology::GlobalMatched, Control::OfflineSchedule { .. }) => {
                Err(format!(
                    "{} topology cannot run a per-domain schedule",
                    self.topology.tag()
                ))
            }
            (Topology::Baseline | Topology::GlobalMatched, Control::Online { .. }) => Err(format!(
                "{} topology cannot run an on-line governor",
                self.topology.tag()
            )),
            _ => {
                if let Control::OfflineSchedule { theta } = self.control {
                    if !(theta.is_finite() && theta > 0.0 && theta < 1.0) {
                        return Err(format!("dilation target {theta} must lie in (0, 1)"));
                    }
                }
                Ok(())
            }
        }
    }

    /// Human-readable, collision-free scenario name.
    ///
    /// The four legacy configurations keep their historical labels
    /// (`baseline`, `baseline-mcd`, `dynamic-5%`, `global`). On-line
    /// scenarios render as `online-` plus the policy's canonical
    /// `id[:key=value,…]` spec, which fingerprints the full parameter set,
    /// so two distinct scenarios can never share a label.
    pub fn label(&self) -> String {
        match (&self.topology, &self.control) {
            (Topology::Baseline, _) => "baseline".into(),
            (Topology::GlobalMatched, _) => "global".into(),
            (Topology::Mcd, Control::None) => "baseline-mcd".into(),
            (Topology::Mcd, Control::OfflineSchedule { theta }) => {
                let pct = theta * 100.0;
                if (pct - pct.round()).abs() < 1e-9 {
                    format!("dynamic-{pct:.0}%")
                } else {
                    // Off-grid θ: keep every digit so nearby targets cannot
                    // collide on a rounded label.
                    format!("dynamic-{pct:?}%")
                }
            }
            (Topology::Mcd, Control::Online { policy }) => format!("online-{}", policy.canonical()),
        }
    }
}

impl Serialize for ScenarioSpec {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        m.insert(
            "topology".to_string(),
            Value::String(self.topology.tag().to_string()),
        );
        let control = match &self.control {
            Control::None => Value::String("none".to_string()),
            Control::OfflineSchedule { theta } => {
                let mut c = Map::new();
                c.insert("offline-theta".to_string(), theta.to_value());
                Value::Object(c)
            }
            Control::Online { policy } => {
                let mut c = Map::new();
                c.insert("online".to_string(), Value::String(policy.canonical()));
                Value::Object(c)
            }
        };
        m.insert("control".to_string(), control);
        Value::Object(m)
    }
}

impl Deserialize for ScenarioSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v
            .as_object()
            .ok_or_else(|| DeError::expected("object", v))?;
        let tag: String = serde::__private::field(m, "topology")?;
        let topology = Topology::from_tag(&tag).map_err(DeError::new)?;
        let control = match m.get("control") {
            Some(Value::String(s)) if s == "none" => Control::None,
            Some(Value::Object(c)) => {
                if let Some(theta) = c.get("offline-theta") {
                    Control::OfflineSchedule {
                        theta: f64::from_value(theta)?,
                    }
                } else if let Some(policy) = c.get("online") {
                    let spec = String::from_value(policy)?;
                    Control::Online {
                        policy: PolicySpec::parse(&spec).map_err(DeError::new)?,
                    }
                } else {
                    return Err(DeError::new("control object names no known control"));
                }
            }
            Some(other) => return Err(DeError::expected("control", other)),
            None => return Err(DeError::new("missing field `control`")),
        };
        let spec = ScenarioSpec { topology, control };
        spec.validate().map_err(DeError::new)?;
        Ok(spec)
    }
}

/// What one cell produced.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// Configuration name (see [`ScenarioSpec::label`]).
    pub label: String,
    /// Time/energy metrics of the run.
    pub metrics: Metrics,
    /// Committed instructions.
    pub committed: u64,
    /// Instructions per cycle (per base-frequency cycle).
    pub ipc: f64,
    /// The frequency the global search settled on (global cells only).
    pub frequency: Option<Frequency>,
    /// Scheduled reconfigurations (dynamic cells only).
    pub reconfigurations: Option<usize>,
}

pub(crate) fn metrics_of(cfg: &ExperimentConfig, run: &RunResult) -> Metrics {
    Metrics::new(run.total_time, cfg.power.energy_of(run).total())
}

/// Memoizing executor for one benchmark under one experiment configuration.
pub struct BenchmarkSession<'a> {
    profile: &'a BenchmarkProfile,
    cfg: &'a ExperimentConfig,
    options: RunOptions,
    phases: PhaseTimes,
    baseline: Option<RunResult>,
    mcd: Option<(PipelineConfig, RunResult)>,
    slack: Option<SlackProfile>,
    /// Refined dynamic runs, keyed by θ's bit pattern.
    dynamic: Vec<(u64, AnalysisOutput, RunResult)>,
    /// Governed runs, keyed by the policy's canonical spec.
    online: Vec<(String, RunResult)>,
    global: Option<(Frequency, RunResult)>,
    /// Full-schedule runs already simulated, shared across θ targets and
    /// refinement iterations (a run is a pure function of its schedule
    /// here: seed, model, workload and length are fixed per session).
    run_memo: HashMap<Vec<ScheduleEntry>, RunResult>,
    /// Single-domain probe times, same sharing.
    probe_memo: HashMap<Vec<ScheduleEntry>, Femtos>,
}

impl<'a> BenchmarkSession<'a> {
    /// Creates a lazy session; nothing is simulated until a cell is asked
    /// for.
    pub fn new(profile: &'a BenchmarkProfile, cfg: &'a ExperimentConfig) -> Self {
        Self::with_options(profile, cfg, RunOptions::default())
    }

    /// [`BenchmarkSession::new`] with explicit execution options.
    pub fn with_options(
        profile: &'a BenchmarkProfile,
        cfg: &'a ExperimentConfig,
        options: RunOptions,
    ) -> Self {
        BenchmarkSession {
            profile,
            cfg,
            options,
            phases: PhaseTimes::default(),
            baseline: None,
            mcd: None,
            slack: None,
            dynamic: Vec::new(),
            online: Vec::new(),
            global: None,
            run_memo: HashMap::new(),
            probe_memo: HashMap::new(),
        }
    }

    /// The benchmark this session runs.
    pub fn profile(&self) -> &BenchmarkProfile {
        self.profile
    }

    /// Accumulated wall time per pipeline phase so far.
    pub fn phases(&self) -> PhaseTimes {
        self.phases
    }

    /// Computes (or returns the memoized) result for one scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario fails [`ScenarioSpec::validate`] — harness
    /// and CLI entry points validate specs before any session exists.
    pub fn cell(&mut self, scenario: &ScenarioSpec) -> CellResult {
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("invalid scenario: {e}"));
        let label = scenario.label();
        let cfg = self.cfg;
        match (&scenario.topology, &scenario.control) {
            (Topology::Baseline, _) => {
                let run = self.baseline_run();
                CellResult {
                    label,
                    metrics: metrics_of(cfg, run),
                    committed: run.committed,
                    ipc: run.ipc(),
                    frequency: None,
                    reconfigurations: None,
                }
            }
            (Topology::Mcd, Control::None) => {
                let run = self.mcd_run();
                CellResult {
                    label,
                    metrics: metrics_of(cfg, run),
                    committed: run.committed,
                    ipc: run.ipc(),
                    frequency: None,
                    reconfigurations: None,
                }
            }
            (Topology::Mcd, Control::OfflineSchedule { theta }) => {
                let i = self.ensure_dynamic(*theta);
                let (_, analysis, run) = &self.dynamic[i];
                CellResult {
                    label,
                    metrics: metrics_of(cfg, run),
                    committed: run.committed,
                    ipc: run.ipc(),
                    frequency: None,
                    reconfigurations: Some(analysis.schedule.len()),
                }
            }
            (Topology::Mcd, Control::Online { policy }) => {
                let policy = policy.clone();
                let run = self.online_run(&policy);
                CellResult {
                    label,
                    metrics: metrics_of(cfg, run),
                    committed: run.committed,
                    ipc: run.ipc(),
                    frequency: None,
                    // The applied per-domain frequency transitions — the
                    // on-line analogue of a schedule's planned entries.
                    reconfigurations: Some(run.domain_transitions.iter().sum::<u64>() as usize),
                }
            }
            (Topology::GlobalMatched, _) => {
                let (frequency, run) = self.global_run();
                let (frequency, metrics, committed, ipc) =
                    (*frequency, metrics_of(cfg, run), run.committed, run.ipc());
                CellResult {
                    label,
                    metrics,
                    committed,
                    ipc,
                    frequency: Some(frequency),
                    reconfigurations: None,
                }
            }
        }
    }

    /// The single-clock 1 GHz baseline run.
    pub fn baseline_run(&mut self) -> &RunResult {
        if self.baseline.is_none() {
            let started = Instant::now();
            let machine = MachineConfig::baseline(self.cfg.seed);
            self.baseline = Some(simulate(&machine, self.profile, self.cfg.instructions));
            self.phases.simulate += started.elapsed();
        }
        self.baseline.as_ref().expect("just computed")
    }

    /// The traced baseline-MCD run.
    pub fn mcd_run(&mut self) -> &RunResult {
        self.ensure_mcd();
        &self.mcd.as_ref().expect("just computed").1
    }

    /// The governed run for one on-line policy: the MCD machine starts
    /// statically at 1 GHz and the governor's grid-snapped requests drive
    /// the domain clocks from there. Memoized per canonical policy spec.
    pub fn online_run(&mut self, policy: &PolicySpec) -> &RunResult {
        let key = policy.canonical();
        if let Some(i) = self.online.iter().position(|(k, _)| *k == key) {
            return &self.online[i].1;
        }
        let governor = policy
            .build()
            .unwrap_or_else(|e| panic!("invalid policy {key:?}: {e}"));
        let started = Instant::now();
        let machine = MachineConfig::baseline_mcd(self.cfg.seed);
        let run = simulate_governed(&machine, self.profile, self.cfg.instructions, governor);
        self.phases.simulate += started.elapsed();
        self.online.push((key, run));
        &self.online.last().expect("just pushed").1
    }

    /// The analysis behind the dynamic-θ schedule (Figure-9 statistics).
    pub fn analysis(&mut self, theta: f64) -> &AnalysisOutput {
        let i = self.ensure_dynamic(theta);
        &self.dynamic[i].1
    }

    /// The frequency the global search settled on, with its run.
    pub fn global_run(&mut self) -> &(Frequency, RunResult) {
        if self.global.is_none() {
            let i = self.ensure_dynamic(0.05);
            let target_time = self.dynamic[i].2.total_time;
            let baseline = self.baseline_run().clone();
            self.global = Some(search_global(
                self.profile,
                self.cfg,
                target_time,
                &baseline,
                &mut self.phases,
            ));
        }
        self.global.as_ref().expect("just computed")
    }

    fn ensure_mcd(&mut self) {
        if self.mcd.is_none() {
            let started = Instant::now();
            let mut machine = MachineConfig::baseline_mcd(self.cfg.seed);
            machine.collect_trace = true;
            let run = simulate(&machine, self.profile, self.cfg.instructions);
            self.mcd = Some((machine.pipeline, run));
            self.phases.trace_run += started.elapsed();
        }
    }

    fn ensure_slack(&mut self) {
        self.ensure_mcd();
        if self.slack.is_some() {
            return;
        }
        let started = Instant::now();
        let (pipeline, run) = self.mcd.as_ref().expect("just ensured");
        let trace = run.trace.as_ref().expect("trace requested");
        let key = self.options.slack_store.as_ref().map(|_| {
            slack_cache_key_material(
                self.profile,
                self.cfg.seed,
                self.cfg.instructions,
                pipeline,
                &self.cfg.offline,
            )
        });
        let loaded = match (&self.options.slack_store, &key) {
            (Some(store), Some(key)) => store
                .load(key)
                .and_then(|payload| serde_json::from_str::<SlackProfile>(&payload).ok())
                // The key pins every input, so a mismatch here means a
                // corrupt or foreign payload: degrade to a recompute.
                .filter(|p| p.scale_front_end == self.cfg.offline.scale_front_end),
            _ => None,
        };
        let slack = match loaded {
            Some(profile) => profile,
            None => {
                let profile = prepare_slack_threads(
                    trace,
                    pipeline,
                    &self.cfg.offline,
                    self.options.analysis_threads,
                );
                if let (Some(store), Some(key)) = (&self.options.slack_store, &key) {
                    if let Ok(payload) = serde_json::to_string(&profile) {
                        store.store(key, &payload);
                    }
                }
                profile
            }
        };
        self.slack = Some(slack);
        self.phases.slack += started.elapsed();
    }

    fn ensure_dynamic(&mut self, theta: f64) -> usize {
        let key = theta.to_bits();
        if let Some(i) = self.dynamic.iter().position(|(k, ..)| *k == key) {
            return i;
        }
        self.ensure_slack();
        let mcd_time = self.mcd.as_ref().expect("ensured").1.total_time;
        let (analysis, run) = refine_dynamic(
            self.profile,
            self.cfg,
            self.slack.as_ref().expect("ensured"),
            theta,
            mcd_time,
            &mut self.run_memo,
            &mut self.probe_memo,
            &mut self.phases,
        );
        self.dynamic.push((key, analysis, run));
        self.dynamic.len() - 1
    }
}

/// Runs a single cell standalone (a fresh session computes exactly the
/// dependencies this cell needs and nothing else).
///
/// # Example
///
/// ```no_run
/// use mcd_core::{run_cell, ExperimentConfig, ScenarioSpec};
/// use mcd_time::DvfsModel;
/// use mcd_workload::suites;
///
/// let cfg = ExperimentConfig::paper(1, 100_000, DvfsModel::XScale);
/// let art = suites::by_name("art").expect("known benchmark");
/// let cell = run_cell(&art, &cfg, &ScenarioSpec::dynamic(0.05));
/// println!("{}: {} reconfigurations", cell.label, cell.reconfigurations.unwrap());
/// ```
pub fn run_cell(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    scenario: &ScenarioSpec,
) -> CellResult {
    BenchmarkSession::new(profile, cfg).cell(scenario)
}

/// Derives a schedule for dilation target θ and refines the per-domain
/// budgets until the dynamic run's measured degradation (over the baseline
/// MCD run) is close to θ.
///
/// Only the cheap clustering pass re-runs per refinement iteration; the
/// shaker's slack profile is shared across iterations *and* across θ
/// targets.
///
/// The two memo tables live in the session so identical schedules are
/// simulated once per session, not once per θ target (budget clamps
/// saturate, so the θ = 1 % and θ = 5 % refinements regularly regenerate
/// the same full or per-domain probe schedule — a run is a pure function of
/// its schedule here, with seed, model, workload and length fixed).
#[allow(clippy::too_many_arguments)]
fn refine_dynamic(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    slack: &SlackProfile,
    theta: f64,
    mcd_time: Femtos,
    run_memo: &mut HashMap<Vec<ScheduleEntry>, RunResult>,
    probe_memo: &mut HashMap<Vec<ScheduleEntry>, Femtos>,
    phases: &mut PhaseTimes,
) -> (AnalysisOutput, RunResult) {
    let mut off = cfg.offline.clone();
    off.dilation_target = theta;
    off.model = cfg.model;
    let base_safety = off.budget_safety;
    // Share of the degradation budget granted to each domain. Scaling each
    // domain's budget against its *measured* cost redistributes slack toward
    // domains that are cheap to slow on this particular benchmark.
    let weights = [0.0, 0.40, 0.25, 0.35];
    let mut scale = [1.0f64; DomainId::COUNT];
    let mut best: Option<(AnalysisOutput, RunResult)> = None;
    for iter in 0..3 {
        for (i, s) in off.budget_safety.iter_mut().enumerate() {
            *s = (base_safety[i] * scale[i]).clamp(0.02, 5.0);
        }
        let started = Instant::now();
        let analysis = cluster_schedule(slack, &off);
        phases.cluster += started.elapsed();
        let key = analysis.schedule.entries().to_vec();
        let run = match run_memo.get(&key) {
            Some(run) => run.clone(),
            None => {
                let started = Instant::now();
                let machine =
                    MachineConfig::dynamic(cfg.seed, cfg.model, analysis.schedule.clone());
                let run = simulate(&machine, profile, cfg.instructions);
                phases.simulate += started.elapsed();
                run_memo.insert(key, run.clone());
                run
            }
        };
        best = Some((analysis, run));
        if iter == 2 {
            break;
        }
        // Measure each domain's isolated degradation and rescale its budget
        // toward its share of θ.
        let analysis_ref = &best.as_ref().expect("just set").0;
        let mut adjusted = false;
        for d in &DomainId::ALL[1..] {
            let entries: Vec<_> = analysis_ref
                .schedule
                .entries()
                .iter()
                .filter(|e| e.domain == *d)
                .copied()
                .collect();
            if entries.is_empty() {
                continue;
            }
            let probe_time = match probe_memo.get(&entries) {
                Some(t) => *t,
                None => {
                    let started = Instant::now();
                    let machine = MachineConfig::dynamic(
                        cfg.seed,
                        cfg.model,
                        mcd_pipeline::FrequencySchedule::from_entries(entries.clone()),
                    );
                    let run_d = simulate(&machine, profile, cfg.instructions);
                    phases.simulate += started.elapsed();
                    probe_memo.insert(entries, run_d.total_time);
                    run_d.total_time
                }
            };
            let deg_d = probe_time.as_femtos() as f64 / mcd_time.as_femtos() as f64 - 1.0;
            let target_d = theta * weights[d.index()];
            if deg_d > target_d * 1.35 + 0.003 || deg_d < target_d * 0.5 {
                let ratio = (target_d / deg_d.max(1e-4)).clamp(0.3, 2.5);
                scale[d.index()] = (scale[d.index()] * ratio).clamp(0.02, 8.0);
                adjusted = true;
            }
        }
        if !adjusted {
            break;
        }
    }
    best.expect("at least one iteration ran")
}

/// Finds the 32-point-grid frequency whose single-clock run time is closest
/// to `target_time` (the dynamic-5 % execution time), by bisection.
fn search_global(
    profile: &BenchmarkProfile,
    cfg: &ExperimentConfig,
    target_time: Femtos,
    baseline: &RunResult,
    phases: &mut PhaseTimes,
) -> (Frequency, RunResult) {
    let grid = FrequencyGrid::new(VfTable::paper(), 32);
    // `MachineConfig::global(seed, 1 GHz)` is the baseline machine under
    // another name — one domain, full speed, no schedule — so the session's
    // baseline run *is* that simulation, byte for byte (asserted by
    // `global_at_base_frequency_is_the_baseline_run`). Reusing it saves a
    // full simulation whenever the search touches the top of the grid.
    let run_at = |f: Frequency, phases: &mut PhaseTimes| -> RunResult {
        if f == Frequency::GHZ {
            return baseline.clone();
        }
        let started = Instant::now();
        let run = simulate(
            &MachineConfig::global(cfg.seed, f),
            profile,
            cfg.instructions,
        );
        phases.simulate += started.elapsed();
        run
    };
    if target_time <= baseline.total_time {
        // Dynamic-5 % was not slower: global cannot scale at all.
        let f = grid.points().last().expect("non-empty grid").frequency;
        let run = run_at(f, phases);
        return (f, run);
    }
    // Run time decreases monotonically with frequency: bisect the grid.
    let mut lo = 0usize;
    let mut hi = grid.len() - 1;
    let mut probed = Vec::new();
    let mut best: Option<(u64, Frequency, RunResult)> = None;
    let consider =
        |i: usize, best: &mut Option<(u64, Frequency, RunResult)>, phases: &mut PhaseTimes| {
            let f = grid.point(i).frequency;
            let run = run_at(f, phases);
            let err = run.total_time.as_femtos().abs_diff(target_time.as_femtos());
            let slower = run.total_time > target_time;
            if best.as_ref().map(|(e, _, _)| err < *e).unwrap_or(true) {
                *best = Some((err, f, run));
            }
            slower
        };
    while lo < hi {
        let mid = (lo + hi) / 2;
        probed.push(mid);
        if consider(mid, &mut best, phases) {
            // Too slow: need a higher frequency.
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    // Bisection often converges onto an index it already probed (`hi = mid`
    // on the last step); a repeat probe is an identical run whose error
    // cannot beat its own strict minimum, so skip it.
    if !probed.contains(&lo) {
        consider(lo, &mut best, phases);
    }
    let (_, f, run) = best.expect("at least one probe ran");
    (f, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_time::DvfsModel;
    use mcd_workload::suites;

    #[test]
    fn standalone_cell_matches_session_cell() {
        let cfg = ExperimentConfig::paper(7, 20_000, DvfsModel::XScale);
        let profile = suites::by_name("gcc").expect("known benchmark");
        let standalone = run_cell(&profile, &cfg, &ScenarioSpec::baseline());
        let mut session = BenchmarkSession::new(&profile, &cfg);
        let from_session = session.cell(&ScenarioSpec::baseline());
        assert_eq!(standalone.metrics, from_session.metrics);
        assert_eq!(standalone.committed, from_session.committed);
    }

    #[test]
    fn cells_are_memoized() {
        let cfg = ExperimentConfig::paper(7, 15_000, DvfsModel::XScale);
        let profile = suites::by_name("swim").expect("known benchmark");
        let mut session = BenchmarkSession::new(&profile, &cfg);
        let a = session.cell(&ScenarioSpec::baseline_mcd());
        let b = session.cell(&ScenarioSpec::baseline_mcd());
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(ScenarioSpec::baseline().label(), "baseline");
        assert_eq!(ScenarioSpec::baseline_mcd().label(), "baseline-mcd");
        assert_eq!(ScenarioSpec::dynamic(0.05).label(), "dynamic-5%");
        assert_eq!(ScenarioSpec::dynamic(0.01).label(), "dynamic-1%");
        assert_eq!(ScenarioSpec::global_matched().label(), "global");
    }

    #[test]
    fn labels_are_collision_free_across_the_axis() {
        let policy = |s: &str| PolicySpec::parse(s).expect("valid policy");
        let scenarios = [
            ScenarioSpec::baseline(),
            ScenarioSpec::baseline_mcd(),
            ScenarioSpec::dynamic(0.01),
            ScenarioSpec::dynamic(0.05),
            // Off-grid θ values that a rounded label would merge.
            ScenarioSpec::dynamic(0.012),
            ScenarioSpec::dynamic(0.0125),
            ScenarioSpec::global_matched(),
            ScenarioSpec::online(policy("attack-decay")),
            ScenarioSpec::online(policy("attack-decay:attack=0.1")),
            ScenarioSpec::online(policy("attack-decay:attack=0.1,decay=0.01")),
            ScenarioSpec::online(policy("queue-pi")),
            ScenarioSpec::online(policy("queue-pi:setpoint=0.6")),
        ];
        let labels: Vec<String> = scenarios.iter().map(ScenarioSpec::label).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b, "label collision");
            }
        }
        assert_eq!(labels[7], "online-attack-decay");
        assert_eq!(labels[9], "online-attack-decay:attack=0.1,decay=0.01");
    }

    #[test]
    fn invalid_combinations_are_rejected() {
        for spec in [
            ScenarioSpec {
                topology: Topology::Baseline,
                control: Control::OfflineSchedule { theta: 0.05 },
            },
            ScenarioSpec {
                topology: Topology::GlobalMatched,
                control: Control::Online {
                    policy: PolicySpec::parse("attack-decay").expect("valid"),
                },
            },
            ScenarioSpec::dynamic(f64::NAN),
            ScenarioSpec::dynamic(0.0),
        ] {
            assert!(spec.validate().is_err(), "{spec:?} should be invalid");
        }
        for spec in ScenarioSpec::PAPER {
            spec.validate().expect("paper scenarios are valid");
        }
    }

    #[test]
    fn scenario_spec_serde_round_trips() {
        let scenarios = [
            ScenarioSpec::baseline(),
            ScenarioSpec::baseline_mcd(),
            ScenarioSpec::dynamic(0.05),
            ScenarioSpec::global_matched(),
            ScenarioSpec::online(PolicySpec::parse("queue-pi:ki=0.1").expect("valid")),
        ];
        for s in &scenarios {
            let json = serde_json::to_string(s).expect("serializable");
            let back: ScenarioSpec = serde_json::from_str(&json).expect("parses");
            assert_eq!(&back, s, "round-trip through {json}");
        }
        // Invalid documents are rejected at the serde boundary.
        assert!(serde_json::from_str::<ScenarioSpec>(
            r#"{"topology":"baseline","control":{"online":"attack-decay"}}"#
        )
        .is_err());
    }

    #[test]
    fn online_cell_runs_and_memoizes() {
        let cfg = ExperimentConfig::paper(7, 12_000, DvfsModel::XScale);
        let profile = suites::by_name("gcc").expect("known benchmark");
        let mut session = BenchmarkSession::new(&profile, &cfg);
        let scenario =
            ScenarioSpec::online(PolicySpec::parse("attack-decay").expect("valid policy"));
        let a = session.cell(&scenario);
        let b = session.cell(&scenario);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.label, "online-attack-decay");
        assert!(
            a.reconfigurations
                .expect("governed cells count transitions")
                > 0
        );
        // A different parameterization is a different cell.
        let other = session.cell(&ScenarioSpec::online(
            PolicySpec::parse("attack-decay:decay=0.02").expect("valid policy"),
        ));
        assert_ne!(other.label, a.label);
    }

    /// The load-bearing assumption behind `search_global`'s baseline reuse.
    #[test]
    fn global_at_base_frequency_is_the_baseline_run() {
        let cfg = ExperimentConfig::paper(3, 8_000, DvfsModel::XScale);
        let profile = suites::by_name("adpcm").expect("known benchmark");
        let base = simulate(
            &MachineConfig::baseline(cfg.seed),
            &profile,
            cfg.instructions,
        );
        let global = simulate(
            &MachineConfig::global(cfg.seed, Frequency::GHZ),
            &profile,
            cfg.instructions,
        );
        assert_eq!(
            serde_json::to_string(&base).unwrap(),
            serde_json::to_string(&global).unwrap(),
            "global(1 GHz) must be the baseline machine byte for byte"
        );
    }

    /// Any fan-out, with or without a shared slack store, must produce the
    /// exact cells the plain serial session does.
    #[test]
    fn run_options_are_results_neutral() {
        use std::sync::Mutex;

        #[derive(Default)]
        struct Store {
            map: Mutex<HashMap<String, String>>,
            loads: Mutex<usize>,
            hits: Mutex<usize>,
        }
        impl SlackStore for Store {
            fn load(&self, key: &str) -> Option<String> {
                *self.loads.lock().unwrap() += 1;
                let hit = self.map.lock().unwrap().get(key).cloned();
                if hit.is_some() {
                    *self.hits.lock().unwrap() += 1;
                }
                hit
            }
            fn store(&self, key: &str, payload: &str) {
                self.map
                    .lock()
                    .unwrap()
                    .insert(key.to_string(), payload.to_string());
            }
        }

        let cfg = ExperimentConfig::paper(7, 12_000, DvfsModel::XScale);
        let profile = suites::by_name("gcc").expect("known benchmark");
        let render = |session: &mut BenchmarkSession| -> String {
            let cells: Vec<String> = CellConfig::PAPER
                .iter()
                .map(|c| format!("{:?}", session.cell(c)))
                .collect();
            cells.join("\n")
        };

        let mut plain = BenchmarkSession::new(&profile, &cfg);
        let reference = render(&mut plain);

        let store = Arc::new(Store::default());
        for threads in [2usize, 8] {
            let options = RunOptions {
                analysis_threads: threads,
                slack_store: Some(store.clone() as Arc<dyn SlackStore>),
            };
            let mut session = BenchmarkSession::with_options(&profile, &cfg, options);
            assert_eq!(
                render(&mut session),
                reference,
                "threads={threads} must not change any cell"
            );
        }
        assert_eq!(*store.loads.lock().unwrap(), 2, "one probe per session");
        assert_eq!(
            *store.hits.lock().unwrap(),
            1,
            "the second session loads what the first stored"
        );
    }
}
