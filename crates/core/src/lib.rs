//! MCD-DVFS experiment driver: the paper's five machine configurations,
//! end-to-end experiment runs, and the metrics its figures report.
//!
//! This crate ties the substrates together: synthetic workloads
//! (`mcd-workload`) run on the four-domain pipeline (`mcd-pipeline`) under
//! the clocking models of `mcd-time`; the off-line tool (`mcd-offline`)
//! derives per-domain reconfiguration schedules from full-speed traces; and
//! the power model (`mcd-power`) converts activity into energy. The driver
//! reproduces the comparison of §4: baseline vs. baseline-MCD vs.
//! dynamic-1 % vs. dynamic-5 % vs. global voltage scaling.

pub mod cell;
pub mod experiment;
pub mod metrics;
pub mod report;

pub use cell::{
    run_cell, BenchmarkSession, CellConfig, CellResult, Control, PhaseTimes, RunOptions,
    ScenarioSpec, SlackStore, Topology,
};
pub use experiment::{
    run_benchmark, run_benchmark_observed, run_benchmark_scenarios, run_benchmark_with,
    BenchmarkResults, DomainSummary, ExperimentConfig, OnlineRow,
};
pub use metrics::{DegenerateBaseline, Metrics};
pub use report::{
    average, format_percent_table, to_csv, try_format_percent_table, try_to_csv, NonFinitePercent,
    PercentRow,
};
