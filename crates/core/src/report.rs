//! Table/series formatting for the figure-regeneration harness.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Column headers of the four-configuration tables, in figure order.
pub const COLUMN_LABELS: [&str; 4] = [
    "baseline MCD",
    "dynamic-1%",
    "dynamic-5%",
    "global voltage scaling",
];

/// Structured error raised when a non-finite percentage (NaN/inf — e.g.
/// an unguarded ratio against a degenerate baseline) reaches the report
/// layer. Formatting such a value would silently print `NaN` into a
/// figure table; validation names the exact cell instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonFinitePercent {
    /// Row (benchmark) label of the offending cell.
    pub label: String,
    /// Column index in figure order (see [`COLUMN_LABELS`]).
    pub column: usize,
    /// The offending value.
    pub value: f64,
}

impl fmt::Display for NonFinitePercent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-finite percentage {} in row {:?}, column {:?}",
            self.value,
            self.label,
            COLUMN_LABELS.get(self.column).copied().unwrap_or("?")
        )
    }
}

impl std::error::Error for NonFinitePercent {}

/// Validates that every cell of every row is finite, returning the first
/// offending cell as a structured error.
pub fn validate(rows: &[PercentRow]) -> Result<(), NonFinitePercent> {
    for row in rows {
        for (column, value) in row.values.iter().enumerate() {
            if !value.is_finite() {
                return Err(NonFinitePercent {
                    label: row.label.clone(),
                    column,
                    value: *value,
                });
            }
        }
    }
    Ok(())
}

/// One benchmark's row in a Figure-5/6/7-style table: four configuration
/// percentages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PercentRow {
    /// Benchmark (or "average") label.
    pub label: String,
    /// `[baseline MCD, dynamic-1 %, dynamic-5 %, global]`, in percent.
    pub values: [f64; 4],
}

/// Column-wise mean of a set of rows (the paper's "average" bar).
pub fn average(rows: &[PercentRow]) -> PercentRow {
    let mut sums = [0.0; 4];
    for row in rows {
        for (s, v) in sums.iter_mut().zip(row.values.iter()) {
            *s += v;
        }
    }
    let n = rows.len().max(1) as f64;
    PercentRow {
        label: "average".into(),
        values: sums.map(|s| s / n),
    }
}

/// Renders rows as CSV (benchmark, baseline MCD, dynamic-1%, dynamic-5%,
/// global), for plotting the figures with external tools.
pub fn to_csv(rows: &[PercentRow]) -> String {
    let mut out =
        String::from("benchmark,baseline_mcd_pct,dynamic_1_pct,dynamic_5_pct,global_pct\n");
    for row in rows {
        out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4}\n",
            row.label, row.values[0], row.values[1], row.values[2], row.values[3]
        ));
    }
    out
}

/// [`to_csv`] behind the finiteness guard: refuses to render a table
/// containing NaN/inf, naming the offending cell.
pub fn try_to_csv(rows: &[PercentRow]) -> Result<String, NonFinitePercent> {
    validate(rows)?;
    Ok(to_csv(rows))
}

/// [`format_percent_table`] behind the finiteness guard: refuses to
/// render a table containing NaN/inf, naming the offending cell.
pub fn try_format_percent_table(
    title: &str,
    rows: &[PercentRow],
) -> Result<String, NonFinitePercent> {
    validate(rows)?;
    Ok(format_percent_table(title, rows))
}

/// Renders rows as an aligned text table with the paper's column headers.
pub fn format_percent_table(title: &str, rows: &[PercentRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{title}\n{:<10} {:>14} {:>12} {:>12} {:>22}\n",
        "benchmark", "baseline MCD", "dynamic-1%", "dynamic-5%", "global voltage scaling"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<10} {:>13.2}% {:>11.2}% {:>11.2}% {:>21.2}%\n",
            row.label, row.values[0], row.values[1], row.values[2], row.values[3]
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_is_columnwise_mean() {
        let rows = vec![
            PercentRow {
                label: "a".into(),
                values: [1.0, 2.0, 3.0, 4.0],
            },
            PercentRow {
                label: "b".into(),
                values: [3.0, 2.0, 1.0, 0.0],
            },
        ];
        let avg = average(&rows);
        assert_eq!(avg.values, [2.0, 2.0, 2.0, 2.0]);
        assert_eq!(avg.label, "average");
    }

    #[test]
    fn table_contains_all_rows_and_headers() {
        let rows = vec![PercentRow {
            label: "gcc".into(),
            values: [1.5, 2.5, 3.5, 4.5],
        }];
        let t = format_percent_table("Figure 5", &rows);
        assert!(t.contains("Figure 5"));
        assert!(t.contains("gcc"));
        assert!(t.contains("dynamic-5%"));
        assert!(t.contains("3.50%"));
    }

    #[test]
    fn average_of_empty_is_zero() {
        assert_eq!(average(&[]).values, [0.0; 4]);
    }

    #[test]
    fn non_finite_cells_are_surfaced_as_structured_errors() {
        let rows = vec![
            PercentRow {
                label: "gcc".into(),
                values: [1.0, 2.0, 3.0, 4.0],
            },
            PercentRow {
                label: "art".into(),
                values: [1.0, f64::NAN, 3.0, 4.0],
            },
        ];
        let err = try_format_percent_table("Figure 7", &rows).unwrap_err();
        assert_eq!(err.label, "art");
        assert_eq!(err.column, 1);
        assert!(err.value.is_nan());
        assert!(err.to_string().contains("dynamic-1%"));
        assert!(try_to_csv(&rows).is_err());
        assert!(try_to_csv(&rows[..1]).is_ok(), "finite rows render fine");
    }

    #[test]
    fn csv_has_header_and_one_line_per_row() {
        let rows = vec![
            PercentRow {
                label: "mcf".into(),
                values: [2.6, 3.6, 5.4, 4.9],
            },
            PercentRow {
                label: "art".into(),
                values: [2.9, 4.5, 9.3, 9.0],
            },
        ];
        let csv = to_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("benchmark,"));
        assert!(lines[1].starts_with("mcf,2.6000,"));
        assert!(lines[2].contains("9.3000"));
    }
}
