//! Performance/energy metrics and the paper's comparison quantities.

use std::fmt;

use serde::{Deserialize, Serialize};

use mcd_time::Femtos;

/// Structured error for a comparison against a baseline whose energy-delay
/// product is zero (a zero-energy run — e.g. fully gated or zero
/// instructions). Relative improvement against such a baseline is
/// undefined; before this guard the division silently produced NaN/inf
/// that propagated into experiment reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegenerateBaseline {
    /// The baseline's chip energy (zero when degenerate).
    pub energy: f64,
    /// The baseline's execution time.
    pub time: Femtos,
}

impl fmt::Display for DegenerateBaseline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "degenerate baseline: energy-delay product is zero \
             (energy {} over {} fs), relative improvement undefined",
            self.energy,
            self.time.as_femtos()
        )
    }
}

impl std::error::Error for DegenerateBaseline {}

/// Execution time and energy of one configuration on one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Execution time of the simulated window.
    pub time: Femtos,
    /// Chip energy (model energy units).
    pub energy: f64,
}

impl Metrics {
    /// Creates a metrics record.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is non-finite or negative, or `time` is zero.
    pub fn new(time: Femtos, energy: f64) -> Self {
        assert!(time > Femtos::ZERO, "execution time must be positive");
        assert!(
            energy.is_finite() && energy >= 0.0,
            "invalid energy: {energy}"
        );
        Metrics { time, energy }
    }

    /// Energy-delay product.
    pub fn energy_delay(&self) -> f64 {
        self.energy * self.time.as_secs_f64()
    }

    /// Fractional performance degradation versus `base` (positive = slower),
    /// e.g. `0.10` = 10 % more execution time.
    pub fn perf_degradation_vs(&self, base: &Metrics) -> f64 {
        self.time.as_femtos() as f64 / base.time.as_femtos() as f64 - 1.0
    }

    /// Fractional energy savings versus `base` (positive = less energy).
    pub fn energy_savings_vs(&self, base: &Metrics) -> f64 {
        1.0 - self.energy / base.energy
    }

    /// Fractional energy-delay improvement versus `base` (positive =
    /// better), or a structured error when the baseline's energy-delay
    /// product is zero and the ratio is undefined.
    pub fn try_energy_delay_improvement_vs(
        &self,
        base: &Metrics,
    ) -> Result<f64, DegenerateBaseline> {
        let base_edp = base.energy_delay();
        if base_edp == 0.0 {
            return Err(DegenerateBaseline {
                energy: base.energy,
                time: base.time,
            });
        }
        Ok(1.0 - self.energy_delay() / base_edp)
    }

    /// Fractional energy-delay improvement versus `base` (positive =
    /// better). A degenerate (zero-EDP) baseline reports a neutral 0.0
    /// rather than NaN; use [`Metrics::try_energy_delay_improvement_vs`]
    /// to detect that case explicitly.
    pub fn energy_delay_improvement_vs(&self, base: &Metrics) -> f64 {
        self.try_energy_delay_improvement_vs(base).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(us: u64, energy: f64) -> Metrics {
        Metrics::new(Femtos::from_micros(us), energy)
    }

    #[test]
    fn degradation_and_savings() {
        let base = m(100, 1000.0);
        let cfg = m(110, 730.0);
        assert!((cfg.perf_degradation_vs(&base) - 0.10).abs() < 1e-12);
        assert!((cfg.energy_savings_vs(&base) - 0.27).abs() < 1e-12);
    }

    #[test]
    fn energy_delay_improvement() {
        let base = m(100, 1000.0);
        let cfg = m(110, 730.0);
        // ED = 0.73 × 1.1 = 0.803 of baseline → 19.7 % improvement.
        let edi = cfg.energy_delay_improvement_vs(&base);
        assert!((edi - (1.0 - 0.73 * 1.1)).abs() < 1e-12);
    }

    #[test]
    fn identical_metrics_are_neutral() {
        let base = m(50, 400.0);
        assert_eq!(base.perf_degradation_vs(&base), 0.0);
        assert_eq!(base.energy_savings_vs(&base), 0.0);
        assert_eq!(base.energy_delay_improvement_vs(&base), 0.0);
    }

    #[test]
    #[should_panic(expected = "execution time must be positive")]
    fn zero_time_rejected() {
        let _ = Metrics::new(Femtos::ZERO, 1.0);
    }

    #[test]
    fn zero_energy_baseline_is_a_structured_error_not_nan() {
        // Regression: a zero-energy baseline (legal per Metrics::new) used
        // to make the improvement NaN (0/0) or -inf, which propagated
        // silently into reports.
        let base = m(100, 0.0);
        let cfg = m(100, 10.0);
        let err = cfg.try_energy_delay_improvement_vs(&base).unwrap_err();
        assert_eq!(err.energy, 0.0);
        assert_eq!(err.time, Femtos::from_micros(100));
        assert!(err.to_string().contains("degenerate baseline"));
        // The infallible path is guarded to a finite, neutral value.
        let edi = cfg.energy_delay_improvement_vs(&base);
        assert_eq!(edi, 0.0);
        assert!(base.energy_delay_improvement_vs(&base).is_finite());
    }
}
