//! Performance/energy metrics and the paper's comparison quantities.

use serde::{Deserialize, Serialize};

use mcd_time::Femtos;

/// Execution time and energy of one configuration on one benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Execution time of the simulated window.
    pub time: Femtos,
    /// Chip energy (model energy units).
    pub energy: f64,
}

impl Metrics {
    /// Creates a metrics record.
    ///
    /// # Panics
    ///
    /// Panics if `energy` is non-finite or negative, or `time` is zero.
    pub fn new(time: Femtos, energy: f64) -> Self {
        assert!(time > Femtos::ZERO, "execution time must be positive");
        assert!(
            energy.is_finite() && energy >= 0.0,
            "invalid energy: {energy}"
        );
        Metrics { time, energy }
    }

    /// Energy-delay product.
    pub fn energy_delay(&self) -> f64 {
        self.energy * self.time.as_secs_f64()
    }

    /// Fractional performance degradation versus `base` (positive = slower),
    /// e.g. `0.10` = 10 % more execution time.
    pub fn perf_degradation_vs(&self, base: &Metrics) -> f64 {
        self.time.as_femtos() as f64 / base.time.as_femtos() as f64 - 1.0
    }

    /// Fractional energy savings versus `base` (positive = less energy).
    pub fn energy_savings_vs(&self, base: &Metrics) -> f64 {
        1.0 - self.energy / base.energy
    }

    /// Fractional energy-delay improvement versus `base` (positive =
    /// better).
    pub fn energy_delay_improvement_vs(&self, base: &Metrics) -> f64 {
        1.0 - self.energy_delay() / base.energy_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(us: u64, energy: f64) -> Metrics {
        Metrics::new(Femtos::from_micros(us), energy)
    }

    #[test]
    fn degradation_and_savings() {
        let base = m(100, 1000.0);
        let cfg = m(110, 730.0);
        assert!((cfg.perf_degradation_vs(&base) - 0.10).abs() < 1e-12);
        assert!((cfg.energy_savings_vs(&base) - 0.27).abs() < 1e-12);
    }

    #[test]
    fn energy_delay_improvement() {
        let base = m(100, 1000.0);
        let cfg = m(110, 730.0);
        // ED = 0.73 × 1.1 = 0.803 of baseline → 19.7 % improvement.
        let edi = cfg.energy_delay_improvement_vs(&base);
        assert!((edi - (1.0 - 0.73 * 1.1)).abs() < 1e-12);
    }

    #[test]
    fn identical_metrics_are_neutral() {
        let base = m(50, 400.0);
        assert_eq!(base.perf_degradation_vs(&base), 0.0);
        assert_eq!(base.energy_savings_vs(&base), 0.0);
        assert_eq!(base.energy_delay_improvement_vs(&base), 0.0);
    }

    #[test]
    #[should_panic(expected = "execution time must be positive")]
    fn zero_time_rejected() {
        let _ = Metrics::new(Femtos::ZERO, 1.0);
    }
}
