//! Simulator-level fault injection (feature `chaos`).
//!
//! The harness-level [`FaultPlan`](../../mcd_harness) breaks the machinery
//! *around* the simulator; this module perturbs the physical models *inside*
//! it, producing clocking conditions the paper's design margins are supposed
//! to absorb — and then some. Three perturbations, matching the paper's three
//! timing envelopes:
//!
//! * **Jitter outliers** ([`breaching_jitter`]): a [`JitterModel`] whose
//!   standard deviation is sized against the §2.2 synchronization window
//!   `T_s`, so individual cycle samples routinely exceed the window instead
//!   of staying safely inside it.
//! * **PLL re-lock overruns** ([`overrun_pll`]): a [`PllModel`] stretched
//!   beyond the paper's 10–20 µs clamp, so re-lock idle windows overrun what
//!   the Transmeta transition engine budgets for.
//! * **Voltage-step skips** ([`skipping_grid`]): a [`FrequencyGrid`] with
//!   only every k-th operating point available, modeling a regulator that
//!   skips voltage steps — quantization then over-shoots the off-line tool's
//!   targets.
//!
//! Every perturbation is a pure function of its inputs, and sampling draws
//! from the caller's [`SimRng`], so a chaos experiment is exactly as
//! reproducible as a clean one: same seed, same breach, every run. The
//! module is feature-gated (`--features chaos`) so release simulations can
//! never reach a perturbed model by accident.

use crate::femtos::Femtos;
use crate::jitter::JitterModel;
use crate::pll::PllModel;
use crate::rng::SimRng;
use crate::sync::SyncParams;
use crate::vf::FrequencyGrid;

/// A jitter model whose combined σ *equals* the synchronization window for
/// an interface between clocks with the given periods.
///
/// With σ = `T_s`, roughly a third of cycle samples land outside the window
/// (|N(0, σ)| > σ with probability ≈ 0.317), versus essentially none for the
/// paper's 110 ps model against a 300 ps window. The external/internal split
/// keeps the paper's 10:1 ratio.
///
/// # Panics
///
/// Panics if the window is zero (e.g. [`SyncParams::free`]) — a zero-σ model
/// cannot breach anything and the experiment would silently test nothing.
pub fn breaching_jitter(
    params: &SyncParams,
    src_period: Femtos,
    dst_period: Femtos,
) -> JitterModel {
    let window = params.window(src_period, dst_period).as_femtos() as f64;
    assert!(
        window > 0.0,
        "breaching_jitter needs a non-zero sync window (free sync cannot be breached)"
    );
    JitterModel::new(window * 10.0 / 11.0, window * 1.0 / 11.0)
}

/// Counts how many of `n` jitter samples exceed the window `T_s` for the
/// given interface, drawing from `rng`.
///
/// A chaos test asserts this is large for a [`breaching_jitter`] model and
/// zero (or nearly so) for the paper model — quantifying the breach rather
/// than just asserting a distribution parameter.
pub fn count_window_breaches(
    jitter: &JitterModel,
    params: &SyncParams,
    src_period: Femtos,
    dst_period: Femtos,
    n: usize,
    rng: &mut SimRng,
) -> usize {
    let window = params.window(src_period, dst_period).as_femtos() as f64;
    (0..n).filter(|_| jitter.sample(rng).abs() > window).count()
}

/// A PLL model whose re-lock times overrun the paper's clamp.
///
/// The mean and max are stretched by `factor` (> 1) while the min is kept,
/// so every property the clean model guarantees — samples within 10–20 µs,
/// mean near 15 µs — fails measurably, and the Transmeta engine's idle
/// windows grow past what the paper's §3.1 model budgets.
///
/// # Panics
///
/// Panics if `factor` is not finite and > 1 (a factor of 1 is the clean
/// model, and shrinking is not an overrun).
pub fn overrun_pll(base: &PllModel, factor: f64) -> PllModel {
    assert!(
        factor.is_finite() && factor > 1.0,
        "overrun factor must exceed 1: {factor}"
    );
    let stretch = |t: Femtos| Femtos::from_femtos((t.as_femtos() as f64 * factor).round() as u64);
    PllModel::new(stretch(base.mean()), base.min(), stretch(base.max()))
}

/// A frequency grid offering only every `stride`-th operating point of
/// `base` (always keeping the top point, so full speed stays reachable),
/// modeling a voltage regulator that skips steps.
///
/// Quantizing a target frequency up on the skipping grid over-shoots by up
/// to `stride` clean steps, so the dilation bound still holds but energy
/// savings degrade — the voltage-step-skip failure mode.
///
/// # Panics
///
/// Panics if `stride < 2` (stride 1 is the clean grid) or the skipped grid
/// would have fewer than two points.
pub fn skipping_grid(base: &FrequencyGrid, stride: usize) -> FrequencyGrid {
    assert!(
        stride >= 2,
        "a skip stride below 2 changes nothing: {stride}"
    );
    let kept = base.len().div_ceil(stride);
    assert!(
        kept >= 2,
        "stride {stride} leaves fewer than two of {} points",
        base.len()
    );
    FrequencyGrid::new(*base.table(), kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freq::Frequency;
    use crate::vf::VfTable;

    fn one_ghz() -> Femtos {
        Femtos::from_nanos(1)
    }

    #[test]
    fn breaching_jitter_sigma_equals_the_window() {
        let params = SyncParams::paper();
        let j = breaching_jitter(&params, one_ghz(), one_ghz());
        let window = params.window(one_ghz(), one_ghz()).as_femtos() as f64;
        assert!((j.std_dev_femtos() - window).abs() < 1e-6);
    }

    #[test]
    fn breaching_jitter_breaches_where_the_paper_model_does_not() {
        let params = SyncParams::paper();
        let n = 10_000;

        let mut rng = SimRng::seed_from_u64(11);
        let paper = count_window_breaches(
            &JitterModel::paper(),
            &params,
            one_ghz(),
            one_ghz(),
            n,
            &mut rng,
        );
        // 300 ps window vs 110 ps sigma: a breach needs a > 2.7 sigma draw.
        assert!(paper < n / 100, "paper model breached {paper}/{n} windows");

        let mut rng = SimRng::seed_from_u64(11);
        let chaos = count_window_breaches(
            &breaching_jitter(&params, one_ghz(), one_ghz()),
            &params,
            one_ghz(),
            one_ghz(),
            n,
            &mut rng,
        );
        // |N(0, sigma)| > sigma with probability ~0.317.
        assert!(
            chaos > n / 4,
            "chaos model breached only {chaos}/{n} windows"
        );
    }

    #[test]
    fn breaches_are_a_pure_function_of_the_seed() {
        let params = SyncParams::paper();
        let j = breaching_jitter(&params, one_ghz(), one_ghz());
        let count = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            count_window_breaches(&j, &params, one_ghz(), one_ghz(), 2_000, &mut rng)
        };
        assert_eq!(count(42), count(42), "same seed, same breaches");
        assert_ne!(count(42), count(43), "different seed, different breaches");
    }

    #[test]
    #[should_panic(expected = "non-zero sync window")]
    fn free_sync_cannot_be_breached() {
        let _ = breaching_jitter(&SyncParams::free(), one_ghz(), one_ghz());
    }

    #[test]
    fn overrun_pll_exceeds_the_paper_clamp() {
        let clean = PllModel::paper();
        let chaos = overrun_pll(&clean, 2.0);
        assert_eq!(chaos.mean(), Femtos::from_micros(30));
        assert_eq!(chaos.min(), clean.min(), "min is kept");
        assert_eq!(chaos.max(), Femtos::from_micros(40));

        let mut rng = SimRng::seed_from_u64(7);
        let mut over = 0;
        for _ in 0..2_000 {
            let t = chaos.sample_lock_time(&mut rng);
            assert!(t >= chaos.min() && t <= chaos.max());
            if t > clean.max() {
                over += 1;
            }
        }
        assert!(over > 1_500, "only {over}/2000 samples overran 20 us");
    }

    #[test]
    #[should_panic(expected = "overrun factor must exceed 1")]
    fn shrinking_is_not_an_overrun() {
        let _ = overrun_pll(&PllModel::paper(), 0.5);
    }

    #[test]
    fn skipping_grid_keeps_endpoints_and_overshoots_targets() {
        let clean = FrequencyGrid::paper320();
        let skip = skipping_grid(&clean, 10);
        assert_eq!(skip.len(), 32);
        assert_eq!(skip.point(0).frequency, clean.point(0).frequency);
        assert_eq!(
            skip.point(skip.len() - 1).frequency,
            clean.point(clean.len() - 1).frequency
        );

        // Quantizing up on the coarse grid never lands below the fine grid,
        // and overshoots somewhere strictly.
        let mut strictly_above = 0;
        for hz in [413_000_000_u64, 619_000_000, 777_000_000, 901_000_000] {
            let f = Frequency::from_hz(hz);
            let fine = clean.quantize_up(f).frequency;
            let coarse = skip.quantize_up(f).frequency;
            assert!(coarse >= fine, "coarse quantization must still round up");
            if coarse > fine {
                strictly_above += 1;
            }
        }
        assert!(strictly_above > 0, "stride 10 must overshoot some target");
    }

    #[test]
    #[should_panic(expected = "skip stride below 2")]
    fn unit_stride_is_rejected() {
        let _ = skipping_grid(&FrequencyGrid::new(VfTable::paper(), 8), 1);
    }
}
