//! Inter-domain synchronization calculus.
//!
//! The paper adopts the Sjogren & Myers arbitration scheme: a signal
//! generated at a source clock edge can be latched at a destination edge only
//! if the two edges are at least `T_s` apart, where `T_s` is 30 % of the
//! period of the *faster* of the two interface clocks. If the next
//! destination edge falls inside the window, the signal waits a full
//! destination cycle — this is the fundamental MCD synchronization penalty.
//!
//! In the simulator, a cross-domain message produced at source-edge time `t`
//! is stamped `visible_at = t + T_s`; the consuming domain then naturally
//! picks it up at its first clock edge at or after `visible_at`, which
//! reproduces the "first destination edge with `T ≥ T_s`" rule without
//! needing to enumerate future destination edges.

use serde::{Deserialize, Serialize};

use crate::femtos::Femtos;
use crate::freq::Frequency;

/// Parameters of the synchronization window.
///
/// # Example
///
/// ```
/// use mcd_time::{Femtos, SyncParams};
///
/// let p = SyncParams::paper();
/// // Both clocks at 1 GHz: the window is 30 % of 1 ns = 300 ps.
/// let one_ghz = Femtos::from_nanos(1);
/// assert_eq!(p.window(one_ghz, one_ghz), Femtos::from_picos(300));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncParams {
    /// `T_s` as a fraction of the faster clock's period.
    fraction: f64,
}

impl SyncParams {
    /// The paper's assumption: `T_s` = 30 % of the faster clock's period.
    pub fn paper() -> Self {
        SyncParams { fraction: 0.30 }
    }

    /// Zero-cost synchronization — the idealized ablation baseline.
    pub fn free() -> Self {
        SyncParams { fraction: 0.0 }
    }

    /// A custom window fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1)` — a window of a full period or
    /// more would make some interfaces unable to ever latch.
    pub fn new(fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "sync window fraction must be in [0, 1): {fraction}"
        );
        SyncParams { fraction }
    }

    /// The window fraction.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// The synchronization window `T_s` for an interface between clocks with
    /// the given periods.
    pub fn window(&self, src_period: Femtos, dst_period: Femtos) -> Femtos {
        let faster = src_period.min(dst_period);
        Femtos::from_femtos((faster.as_femtos() as f64 * self.fraction).round() as u64)
    }
}

/// Precomputed synchronization windows for every (source, destination)
/// domain pair.
///
/// [`SyncParams::window`] costs a floating-point multiply and round per
/// crossing; a pipeline simulator evaluates it on *every* cross-domain
/// message, while the periods it depends on change only on DVFS micro-steps.
/// This cache holds the full `N × N` window matrix (diagonal zero, so
/// same-domain visibility is the identity) and is refreshed only when a
/// domain's period actually changes.
///
/// # Example
///
/// ```
/// use mcd_time::{Femtos, SyncParams, SyncWindowCache};
///
/// let periods = [Femtos::from_nanos(1), Femtos::from_nanos(4)];
/// let cache = SyncWindowCache::<2>::new(SyncParams::paper(), &periods);
/// assert_eq!(cache.window(0, 1), SyncParams::paper().window(periods[0], periods[1]));
/// assert_eq!(cache.window(1, 1), Femtos::ZERO); // same domain: no window
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SyncWindowCache<const N: usize> {
    params: SyncParams,
    windows: [[Femtos; N]; N],
}

impl<const N: usize> SyncWindowCache<N> {
    /// Builds the cache from the current per-domain periods.
    pub fn new(params: SyncParams, periods: &[Femtos; N]) -> Self {
        let mut cache = SyncWindowCache {
            params,
            windows: [[Femtos::ZERO; N]; N],
        };
        for d in 0..N {
            cache.refresh_domain(d, periods);
        }
        cache
    }

    /// Recomputes the row and column of domain `d` after its period changed.
    ///
    /// Off-diagonal entries reproduce [`SyncParams::window`] bit-for-bit;
    /// the diagonal stays zero (a value never pays `T_s` to reach its own
    /// domain).
    pub fn refresh_domain(&mut self, d: usize, periods: &[Femtos; N]) {
        for other in 0..N {
            if other == d {
                continue;
            }
            let w = self.params.window(periods[d], periods[other]);
            self.windows[d][other] = w;
            self.windows[other][d] = w;
        }
    }

    /// The cached window for a `src → dst` crossing (zero when `src == dst`).
    #[inline]
    pub fn window(&self, src: usize, dst: usize) -> Femtos {
        self.windows[src][dst]
    }

    /// The full window row of a source domain — `row(src)[dst]` is the
    /// `src → dst` window. Lets a broadcast to all destinations run as one
    /// flat array walk.
    #[inline]
    pub fn row(&self, src: usize) -> &[Femtos; N] {
        &self.windows[src]
    }

    /// The earliest visibility time of a value produced at `t` in `src` for
    /// consumers in `dst` — the cached equivalent of [`sync_visible_at`].
    #[inline]
    pub fn visible_at(&self, t: Femtos, src: usize, dst: usize) -> Femtos {
        t + self.windows[src][dst]
    }
}

/// The earliest time at which a signal produced at source edge `t` may be
/// latched in the destination domain.
///
/// The destination picks the signal up at its first clock edge at or after
/// this time.
pub fn sync_visible_at(
    params: &SyncParams,
    t: Femtos,
    src_period: Femtos,
    dst_period: Femtos,
) -> Femtos {
    t + params.window(src_period, dst_period)
}

/// The worst-case latency added by one domain crossing: the window plus up to
/// one full destination period of alignment slip. Useful for sizing the extra
/// queue entries of §2.2.
pub fn sync_latency(params: &SyncParams, src_period: Femtos, dst_period: Femtos) -> Femtos {
    params.window(src_period, dst_period) + dst_period
}

/// Extra queue entries needed so the nominal capacity stays fully usable
/// under worst-case clock ratios (§2.2).
///
/// "In order to avoid underutilization of the queues, we assume extra queue
/// entries to buffer writes under worst-case conditions … the worst-case
/// situation occurs when the producer is operating at the maximum frequency
/// and the consumer at the minimum. … assuming an additional cycle for the
/// producer to recognize the FULL signal, ⌈f_max / f_min⌉ + 1 additional
/// entries are required." The paper charges neither the performance benefit
/// nor the energy of these entries, and neither do we — this helper exists
/// so designers can size real interfaces.
///
/// # Example
///
/// ```
/// use mcd_time::{sync_headroom_entries, Frequency};
///
/// // The paper's range: 1 GHz producer, 250 MHz consumer → 4 + 1 entries.
/// assert_eq!(sync_headroom_entries(Frequency::GHZ, Frequency::MIN_SCALED), 5);
/// // Matched frequencies still need one recognition-cycle entry.
/// assert_eq!(sync_headroom_entries(Frequency::GHZ, Frequency::GHZ), 2);
/// ```
pub fn sync_headroom_entries(producer_max: Frequency, consumer_min: Frequency) -> usize {
    let ratio = producer_max.as_hz() as f64 / consumer_min.as_hz() as f64;
    ratio.ceil() as usize + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_uses_faster_clock() {
        let p = SyncParams::paper();
        let fast = Femtos::from_nanos(1); // 1 GHz
        let slow = Femtos::from_nanos(4); // 250 MHz
        assert_eq!(p.window(fast, slow), Femtos::from_picos(300));
        assert_eq!(p.window(slow, fast), Femtos::from_picos(300));
        assert_eq!(p.window(slow, slow), Femtos::from_femtos(1_200_000));
    }

    #[test]
    fn free_sync_has_no_window() {
        let p = SyncParams::free();
        let t = Femtos::from_nanos(100);
        assert_eq!(
            sync_visible_at(&p, t, Femtos::from_nanos(1), Femtos::from_nanos(2)),
            t
        );
    }

    #[test]
    fn visible_at_adds_window() {
        let p = SyncParams::paper();
        let t = Femtos::from_nanos(10);
        let vis = sync_visible_at(&p, t, Femtos::from_nanos(1), Femtos::from_nanos(1));
        assert_eq!(vis, t + Femtos::from_picos(300));
    }

    #[test]
    fn worst_case_latency_bounds_visibility() {
        let p = SyncParams::paper();
        let src = Femtos::from_nanos(1);
        let dst = Femtos::from_nanos(2);
        let worst = sync_latency(&p, src, dst);
        assert_eq!(worst, Femtos::from_picos(300) + Femtos::from_nanos(2));
    }

    #[test]
    #[should_panic(expected = "sync window fraction")]
    fn full_period_window_rejected() {
        let _ = SyncParams::new(1.0);
    }

    #[test]
    fn window_cache_matches_direct_computation() {
        let p = SyncParams::paper();
        let mut periods = [
            Femtos::from_nanos(1),
            Femtos::from_femtos(1_234_567),
            Femtos::from_nanos(4),
            Femtos::from_picos(1500),
        ];
        let mut cache = SyncWindowCache::<4>::new(p, &periods);
        for src in 0..4 {
            for dst in 0..4 {
                let expect = if src == dst {
                    Femtos::ZERO
                } else {
                    p.window(periods[src], periods[dst])
                };
                assert_eq!(cache.window(src, dst), expect, "({src},{dst})");
                let t = Femtos::from_nanos(17);
                assert_eq!(cache.visible_at(t, src, dst), t + expect);
            }
        }
        // A frequency change refreshes exactly that domain's row and column.
        periods[2] = Femtos::from_femtos(2_718_281);
        cache.refresh_domain(2, &periods);
        for src in 0..4 {
            for dst in 0..4 {
                let expect = if src == dst {
                    Femtos::ZERO
                } else {
                    p.window(periods[src], periods[dst])
                };
                assert_eq!(cache.window(src, dst), expect, "({src},{dst})");
            }
        }
    }

    #[test]
    fn headroom_matches_paper_worst_case() {
        use crate::freq::Frequency;
        // f_max/f_min = 4 over the paper's range.
        assert_eq!(
            sync_headroom_entries(Frequency::GHZ, Frequency::MIN_SCALED),
            5
        );
        // Non-integral ratios round up.
        assert_eq!(
            sync_headroom_entries(Frequency::GHZ, Frequency::from_mhz(300)),
            5
        );
        assert_eq!(
            sync_headroom_entries(Frequency::from_mhz(500), Frequency::GHZ),
            2
        );
    }
}
