//! Clocking substrate for a Multiple Clock Domain (MCD) processor.
//!
//! This crate models everything the HPCA 2002 MCD paper needs below the
//! microarchitecture:
//!
//! * absolute simulation time in femtoseconds ([`Femtos`]),
//! * frequencies and voltages with the paper's linear voltage/frequency
//!   operating region ([`Frequency`], [`Voltage`], [`VfTable`]),
//! * per-domain clocks with normally-distributed cycle-to-cycle jitter
//!   ([`DomainClock`], [`JitterModel`]),
//! * the inter-domain synchronization calculus (a signal produced at a source
//!   clock edge becomes visible at the first destination edge at least
//!   `T_s` later, [`sync`]),
//! * dynamic voltage and frequency scaling transition engines for the
//!   XScale-like and Transmeta-like models ([`dvfs`]), including PLL re-lock
//!   idle windows ([`pll`]).
//!
//! # Example
//!
//! ```
//! use mcd_time::{DomainClock, Frequency, JitterModel, VfTable};
//!
//! let table = VfTable::paper();
//! let mut clock = DomainClock::new(Frequency::GHZ, JitterModel::disabled(), 0);
//! let first = clock.next_edge();
//! let second = clock.next_edge();
//! assert_eq!((second - first).as_femtos(), 1_000_000); // 1 ns at 1 GHz
//! assert!((table.voltage_for(Frequency::GHZ).as_volts() - 1.2).abs() < 1e-9);
//! ```

#[cfg(feature = "chaos")]
pub mod chaos;
pub mod clock;
pub mod dvfs;
pub mod femtos;
pub mod freq;
pub mod jitter;
pub mod pll;
pub mod rng;
pub mod sync;
pub mod vf;

pub use clock::{ClockEvent, DomainClock};
pub use dvfs::{DvfsModel, TransitionPlan, VfSegment, VoltageController};
pub use femtos::Femtos;
pub use freq::{Frequency, Voltage};
pub use jitter::JitterModel;
pub use pll::PllModel;
pub use rng::SimRng;
pub use sync::{sync_headroom_entries, sync_latency, sync_visible_at, SyncParams, SyncWindowCache};
pub use vf::{FrequencyGrid, OperatingPoint, VfTable};
