//! Dynamic voltage and frequency scaling transition engines.
//!
//! Two industrial models, both from the paper:
//!
//! * **XScale**: the supply ramps in 320 small steps across the full voltage
//!   range, 0.1718 µs per step (≈ 55 µs full traversal). Frequency tracks
//!   voltage continuously and the domain *executes through* the change —
//!   there is no idle penalty.
//! * **Transmeta (LongRun)**: the supply ramps in 32 coarse steps, 20 µs per
//!   step (640 µs full traversal). Every frequency change requires the
//!   domain PLL to re-lock (normal, mean 15 µs, 10–20 µs range) during which
//!   the domain is completely idle.
//!
//! For both models, when scaling *down* the frequency may change immediately
//! (the old voltage over-supports the new frequency), while when scaling
//! *up* the voltage must arrive first.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::femtos::Femtos;
use crate::freq::{Frequency, Voltage};
use crate::pll::PllModel;
use crate::rng::SimRng;
use crate::vf::{FrequencyGrid, OperatingPoint, VfTable};

/// Which DVFS transition model a domain uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DvfsModel {
    /// XScale-like: fine-grained ramp, executes through changes.
    XScale,
    /// Transmeta LongRun-like: coarse ramp, PLL re-lock idles the domain.
    Transmeta,
}

impl DvfsModel {
    /// Number of voltage steps across the full operating range.
    pub fn voltage_steps(&self) -> usize {
        match self {
            DvfsModel::XScale => 320,
            DvfsModel::Transmeta => 32,
        }
    }

    /// Wall-clock time per voltage step.
    pub fn step_time(&self) -> Femtos {
        match self {
            // 0.1718 µs.
            DvfsModel::XScale => Femtos::from_femtos(171_800_000),
            DvfsModel::Transmeta => Femtos::from_micros(20),
        }
    }

    /// Number of frequency points the off-line tool may choose from.
    pub fn frequency_points(&self) -> usize {
        match self {
            DvfsModel::XScale => 320,
            DvfsModel::Transmeta => 32,
        }
    }

    /// The target-selection grid for this model over `table`.
    pub fn grid(&self, table: VfTable) -> FrequencyGrid {
        FrequencyGrid::new(table, self.frequency_points())
    }

    /// Time to traverse the entire voltage range (55 µs XScale / 640 µs
    /// Transmeta in the paper).
    pub fn full_range_traversal(&self) -> Femtos {
        self.step_time() * self.voltage_steps() as u64
    }

    /// The voltage moved per step over `table`'s range.
    pub fn volts_per_step(&self, table: &VfTable) -> f64 {
        (table.v_max().as_volts() - table.v_min().as_volts()) / self.voltage_steps() as f64
    }

    /// Number of discrete steps needed to move the supply from `from` to `to`.
    pub fn steps_between(&self, table: &VfTable, from: Voltage, to: Voltage) -> usize {
        let dv = (to.as_volts() - from.as_volts()).abs();
        let per = self.volts_per_step(table);
        (dv / per).ceil() as usize
    }

    /// Estimated ramp duration between two frequencies (voltage slew only,
    /// excluding any PLL re-lock).
    pub fn ramp_time(&self, table: &VfTable, from: Frequency, to: Frequency) -> Femtos {
        let steps = self.steps_between(table, table.voltage_for(from), table.voltage_for(to));
        self.step_time() * steps as u64
    }

    /// Mean idle time a frequency change imposes (zero for XScale).
    pub fn relock_idle_mean(&self, pll: &PllModel) -> Femtos {
        match self {
            DvfsModel::XScale => Femtos::ZERO,
            DvfsModel::Transmeta => pll.mean(),
        }
    }

    /// Estimated total latency from issuing a request to running at the
    /// target frequency (mean-case), used by the off-line clustering phase to
    /// decide whether a reconfiguration fits in an interval.
    pub fn transition_latency_mean(
        &self,
        table: &VfTable,
        pll: &PllModel,
        from: Frequency,
        to: Frequency,
    ) -> Femtos {
        match self {
            DvfsModel::XScale => self.ramp_time(table, from, to),
            DvfsModel::Transmeta => {
                if to > from {
                    // Ramp up first, then re-lock.
                    self.ramp_time(table, from, to) + pll.mean()
                } else {
                    // Re-lock first (frequency drops immediately after),
                    // voltage trails behind with no performance effect.
                    pll.mean()
                }
            }
        }
    }
}

/// One scheduled micro-step of an in-flight transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfSegment {
    /// When this step takes effect.
    pub at: Femtos,
    /// Operating point from `at` onwards.
    pub point: OperatingPoint,
    /// If set, the domain is idle (no clock edges) from `at` until this time.
    pub idle_until: Option<Femtos>,
}

/// Summary of a requested transition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionPlan {
    /// When the request was issued.
    pub requested_at: Femtos,
    /// When the domain is running at the target frequency and voltage.
    pub settled_at: Femtos,
    /// Total idle time imposed (PLL re-lock; zero for XScale).
    pub idle: Femtos,
    /// Number of voltage micro-steps in the plan.
    pub steps: usize,
}

/// Per-domain voltage/frequency controller.
///
/// Owns the operating point of one clock domain and turns frequency requests
/// into timed micro-step plans according to the configured [`DvfsModel`].
/// The domain clock polls [`VoltageController::advance_to`] at each edge to
/// pick up steps that have come due.
///
/// # Example
///
/// ```
/// use mcd_time::{DvfsModel, Femtos, Frequency, PllModel, SimRng, VfTable, VoltageController};
///
/// let mut ctl = VoltageController::new(DvfsModel::XScale, VfTable::paper(), PllModel::paper(), Frequency::GHZ);
/// let mut rng = SimRng::seed_from_u64(1);
/// let plan = ctl.request(Femtos::ZERO, Frequency::from_mhz(500), &mut rng);
/// assert_eq!(plan.idle, Femtos::ZERO); // XScale executes through
/// assert!(plan.settled_at > Femtos::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct VoltageController {
    model: DvfsModel,
    table: VfTable,
    pll: PllModel,
    current: OperatingPoint,
    plan: VecDeque<VfSegment>,
    total_idle: Femtos,
    transitions: u64,
}

impl VoltageController {
    /// Creates a controller starting at `initial` frequency (voltage from the
    /// table).
    pub fn new(model: DvfsModel, table: VfTable, pll: PllModel, initial: Frequency) -> Self {
        VoltageController {
            model,
            table,
            pll,
            current: table.point_for(initial),
            plan: VecDeque::new(),
            total_idle: Femtos::ZERO,
            transitions: 0,
        }
    }

    /// The transition model in use.
    pub fn model(&self) -> DvfsModel {
        self.model
    }

    /// The operating region.
    pub fn table(&self) -> &VfTable {
        &self.table
    }

    /// Current operating point (as of the last `advance_to`).
    pub fn current(&self) -> OperatingPoint {
        self.current
    }

    /// Whether a transition is still in flight.
    pub fn in_transition(&self) -> bool {
        !self.plan.is_empty()
    }

    /// Total idle time imposed by re-locks so far.
    pub fn total_idle(&self) -> Femtos {
        self.total_idle
    }

    /// Number of `request` calls that produced a non-empty plan.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Applies all plan steps due at or before `now`. Returns the end of any
    /// idle window that extends beyond `now` (the clock must not produce
    /// edges before it).
    pub fn advance_to(&mut self, now: Femtos) -> Option<Femtos> {
        let mut idle_beyond = None;
        while let Some(step) = self.plan.front() {
            if step.at > now {
                break;
            }
            let step = self.plan.pop_front().expect("front exists");
            self.current = step.point;
            if let Some(until) = step.idle_until {
                self.total_idle += until.saturating_sub(step.at);
                if until > now {
                    idle_beyond = Some(until);
                }
            }
        }
        idle_beyond
    }

    /// Requests a transition to `target`, starting at `now`.
    ///
    /// Any in-flight plan is first advanced to `now`; its remaining steps are
    /// discarded and the new plan starts from the instantaneous operating
    /// point. Requests for the current frequency produce an empty plan.
    pub fn request(&mut self, now: Femtos, target: Frequency, rng: &mut SimRng) -> TransitionPlan {
        self.advance_to(now);
        self.plan.clear();
        let from = self.current;
        let to = self.table.point_for(target);
        if to.frequency == from.frequency {
            return TransitionPlan {
                requested_at: now,
                settled_at: now,
                idle: Femtos::ZERO,
                steps: 0,
            };
        }
        self.transitions += 1;
        match self.model {
            DvfsModel::XScale => self.plan_xscale(now, from, to),
            DvfsModel::Transmeta => self.plan_transmeta(now, from, to, rng),
        }
    }

    fn plan_xscale(
        &mut self,
        now: Femtos,
        from: OperatingPoint,
        to: OperatingPoint,
    ) -> TransitionPlan {
        let steps = self
            .model
            .steps_between(&self.table, from.voltage, to.voltage)
            .max(1);
        let step_time = self.model.step_time();
        let f0 = from.frequency.as_hz() as f64;
        let f1 = to.frequency.as_hz() as f64;
        let v0 = from.voltage.as_volts();
        let v1 = to.voltage.as_volts();
        for k in 1..=steps {
            let t = k as f64 / steps as f64;
            let point = OperatingPoint {
                frequency: Frequency::from_hz((f0 + (f1 - f0) * t).round() as u64),
                voltage: Voltage::from_volts(v0 + (v1 - v0) * t),
            };
            self.plan.push_back(VfSegment {
                at: now + step_time * k as u64,
                point,
                idle_until: None,
            });
        }
        TransitionPlan {
            requested_at: now,
            settled_at: now + step_time * steps as u64,
            idle: Femtos::ZERO,
            steps,
        }
    }

    fn plan_transmeta(
        &mut self,
        now: Femtos,
        from: OperatingPoint,
        to: OperatingPoint,
        rng: &mut SimRng,
    ) -> TransitionPlan {
        let step_time = self.model.step_time();
        let steps = self
            .model
            .steps_between(&self.table, from.voltage, to.voltage);
        let lock = self.pll.sample_lock_time(rng);
        if to.frequency < from.frequency {
            // Down: re-lock immediately (idle), run at the lower frequency,
            // then trail the voltage down with no performance effect.
            self.plan.push_back(VfSegment {
                at: now,
                point: OperatingPoint {
                    frequency: to.frequency,
                    voltage: from.voltage,
                },
                idle_until: Some(now + lock),
            });
            let ramp_start = now + lock;
            let v0 = from.voltage.as_volts();
            let v1 = to.voltage.as_volts();
            for k in 1..=steps {
                let t = k as f64 / steps.max(1) as f64;
                self.plan.push_back(VfSegment {
                    at: ramp_start + step_time * k as u64,
                    point: OperatingPoint {
                        frequency: to.frequency,
                        voltage: Voltage::from_volts(v0 + (v1 - v0) * t),
                    },
                    idle_until: None,
                });
            }
            TransitionPlan {
                requested_at: now,
                settled_at: ramp_start + step_time * steps as u64,
                idle: lock,
                steps: steps + 1,
            }
        } else {
            // Up: raise the voltage first (still executing at the old
            // frequency), then re-lock to the new frequency.
            let v0 = from.voltage.as_volts();
            let v1 = to.voltage.as_volts();
            for k in 1..=steps {
                let t = k as f64 / steps.max(1) as f64;
                self.plan.push_back(VfSegment {
                    at: now + step_time * k as u64,
                    point: OperatingPoint {
                        frequency: from.frequency,
                        voltage: Voltage::from_volts(v0 + (v1 - v0) * t),
                    },
                    idle_until: None,
                });
            }
            let ramp_end = now + step_time * steps as u64;
            self.plan.push_back(VfSegment {
                at: ramp_end,
                point: to,
                idle_until: Some(ramp_end + lock),
            });
            TransitionPlan {
                requested_at: now,
                settled_at: ramp_end + lock,
                idle: lock,
                steps: steps + 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl(model: DvfsModel) -> VoltageController {
        VoltageController::new(model, VfTable::paper(), PllModel::paper(), Frequency::GHZ)
    }

    #[test]
    fn paper_full_range_traversal_times() {
        // 320 × 0.1718 µs ≈ 55 µs; 32 × 20 µs = 640 µs.
        let xs = DvfsModel::XScale.full_range_traversal();
        assert!((xs.as_micros_f64() - 54.976).abs() < 0.01, "{xs}");
        let tm = DvfsModel::Transmeta.full_range_traversal();
        assert_eq!(tm, Femtos::from_micros(640));
    }

    #[test]
    fn xscale_executes_through_with_no_idle() {
        let mut c = ctl(DvfsModel::XScale);
        let mut rng = SimRng::seed_from_u64(1);
        let plan = c.request(Femtos::ZERO, Frequency::MIN_SCALED, &mut rng);
        assert_eq!(plan.idle, Femtos::ZERO);
        assert_eq!(plan.steps, 320); // full range
        assert!((plan.settled_at.as_micros_f64() - 54.976).abs() < 0.01);
    }

    #[test]
    fn xscale_frequency_slews_gradually() {
        let mut c = ctl(DvfsModel::XScale);
        let mut rng = SimRng::seed_from_u64(1);
        let plan = c.request(Femtos::ZERO, Frequency::from_mhz(500), &mut rng);
        // Halfway through the ramp the frequency should be ~750 MHz.
        let mid = Femtos::from_femtos(plan.settled_at.as_femtos() / 2);
        c.advance_to(mid);
        let f = c.current().frequency.as_mhz_f64();
        assert!((f - 750.0).abs() < 30.0, "mid-ramp frequency {f} MHz");
        c.advance_to(plan.settled_at);
        assert_eq!(c.current().frequency, Frequency::from_mhz(500));
        assert!(!c.in_transition());
    }

    #[test]
    fn transmeta_down_is_immediate_frequency_after_relock() {
        let mut c = ctl(DvfsModel::Transmeta);
        let mut rng = SimRng::seed_from_u64(2);
        let plan = c.request(Femtos::ZERO, Frequency::from_mhz(500), &mut rng);
        assert!(plan.idle >= Femtos::from_micros(10) && plan.idle <= Femtos::from_micros(20));
        // Immediately after the re-lock the frequency is already 500 MHz but
        // the voltage is still high.
        let idle_end = c.advance_to(Femtos::ZERO);
        assert_eq!(idle_end, Some(plan.idle));
        assert_eq!(c.current().frequency, Frequency::from_mhz(500));
        assert!((c.current().voltage.as_volts() - 1.2).abs() < 1e-9);
        // After the full plan the voltage has trailed down.
        c.advance_to(plan.settled_at);
        let expect = VfTable::paper().voltage_for(Frequency::from_mhz(500));
        assert!((c.current().voltage.as_volts() - expect.as_volts()).abs() < 1e-6);
    }

    #[test]
    fn transmeta_up_raises_voltage_before_frequency() {
        let mut c = ctl(DvfsModel::Transmeta);
        let mut rng = SimRng::seed_from_u64(3);
        c.request(Femtos::ZERO, Frequency::from_mhz(500), &mut rng);
        let settle = c.request(Femtos::from_millis(2), Frequency::GHZ, &mut rng);
        // Mid-ramp: frequency still 500 MHz, voltage rising.
        let mid = Femtos::from_millis(2) + Femtos::from_micros(100);
        c.advance_to(mid);
        assert_eq!(c.current().frequency, Frequency::from_mhz(500));
        assert!(c.current().voltage.as_volts() > 0.9);
        c.advance_to(settle.settled_at);
        assert_eq!(c.current().frequency, Frequency::GHZ);
    }

    #[test]
    fn request_same_frequency_is_noop() {
        let mut c = ctl(DvfsModel::XScale);
        let mut rng = SimRng::seed_from_u64(4);
        let plan = c.request(Femtos::ZERO, Frequency::GHZ, &mut rng);
        assert_eq!(plan.steps, 0);
        assert_eq!(plan.settled_at, Femtos::ZERO);
        assert_eq!(c.transitions(), 0);
    }

    #[test]
    fn new_request_supersedes_in_flight_plan() {
        let mut c = ctl(DvfsModel::XScale);
        let mut rng = SimRng::seed_from_u64(5);
        c.request(Femtos::ZERO, Frequency::MIN_SCALED, &mut rng);
        // Re-target halfway through; the plan restarts from the mid point.
        let mid = Femtos::from_micros(27);
        let plan = c.request(mid, Frequency::GHZ, &mut rng);
        assert!(plan.settled_at > mid);
        c.advance_to(plan.settled_at);
        assert_eq!(c.current().frequency, Frequency::GHZ);
        assert!((c.current().voltage.as_volts() - 1.2).abs() < 1e-9);
    }

    #[test]
    fn transition_latency_mean_estimates() {
        let table = VfTable::paper();
        let pll = PllModel::paper();
        // Transmeta down: only the re-lock matters.
        let down = DvfsModel::Transmeta.transition_latency_mean(
            &table,
            &pll,
            Frequency::GHZ,
            Frequency::MIN_SCALED,
        );
        assert_eq!(down, Femtos::from_micros(15));
        // Transmeta up: full ramp + re-lock.
        let up = DvfsModel::Transmeta.transition_latency_mean(
            &table,
            &pll,
            Frequency::MIN_SCALED,
            Frequency::GHZ,
        );
        assert_eq!(up, Femtos::from_micros(640 + 15));
    }
}
