//! Per-domain clock edge generation.
//!
//! Each clock domain owns a [`DomainClock`] that produces a strictly
//! increasing stream of rising-edge times. Edges advance by the current
//! period plus a per-cycle jitter sample, exactly as §3.1 of the paper
//! describes ("the domain cycle time is added to the starting time, and the
//! jitter for that cycle … is added to this sum"). Clock phases are
//! randomized at start-up.
//!
//! A clock may optionally be driven by a [`VoltageController`]; pending DVFS
//! micro-steps are applied as their times come due, and PLL re-lock windows
//! suppress edges entirely (the domain is idle).

use crate::dvfs::VoltageController;
use crate::femtos::Femtos;
use crate::freq::{Frequency, Voltage};
use crate::jitter::JitterModel;
use crate::rng::SimRng;
use crate::vf::VfTable;

/// A single rising clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockEvent {
    /// Absolute time of the edge.
    pub time: Femtos,
    /// Zero-based index of this edge since the clock started.
    pub cycle: u64,
}

/// A jittery, optionally DVFS-scaled clock for one domain.
///
/// # Example
///
/// ```
/// use mcd_time::{DomainClock, Frequency, JitterModel};
///
/// let mut clk = DomainClock::new(Frequency::GHZ, JitterModel::disabled(), 42);
/// let e1 = clk.next_edge();
/// let e2 = clk.next_edge();
/// assert_eq!((e2 - e1).as_femtos(), 1_000_000);
/// assert_eq!(clk.cycles(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DomainClock {
    jitter: JitterModel,
    rng: SimRng,
    controller: Option<VoltageController>,
    frequency: Frequency,
    voltage: Voltage,
    last_edge: Femtos,
    cycles: u64,
    v2_cycle_sum: f64,
    idle_total: Femtos,
    /// The most recent PLL re-lock window, kept until an observer takes it
    /// (see [`DomainClock::take_relock`]). Purely observational: never read
    /// by the edge generator itself.
    last_relock: Option<(Femtos, Femtos)>,
    // Derived from `frequency`, cached so the per-edge path avoids a divide;
    // refreshed on every frequency assignment (same operands, so the cached
    // values are bit-identical to recomputing them each edge).
    period_f: f64,
    max_jitter: f64,
}

impl DomainClock {
    /// Creates a fixed-frequency clock at nominal voltage (1.2 V).
    ///
    /// The first edge lands at a random phase within the first period, per
    /// the paper's randomized clock start times.
    pub fn new(frequency: Frequency, jitter: JitterModel, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let phase = rng.below(frequency.period().as_femtos().max(1));
        let period_f = frequency.period_femtos_f64();
        DomainClock {
            jitter,
            rng,
            controller: None,
            frequency,
            voltage: Voltage::NOMINAL,
            last_edge: Femtos::from_femtos(phase),
            cycles: 0,
            v2_cycle_sum: 0.0,
            idle_total: Femtos::ZERO,
            last_relock: None,
            period_f,
            max_jitter: period_f * 0.45,
        }
    }

    /// Creates a DVFS-capable clock driven by `controller`.
    pub fn with_controller(controller: VoltageController, jitter: JitterModel, seed: u64) -> Self {
        let point = controller.current();
        let mut clk = DomainClock::new(point.frequency, jitter, seed);
        clk.voltage = point.voltage;
        clk.controller = Some(controller);
        clk
    }

    /// Creates a clock whose voltage is looked up from `table` (fixed
    /// frequency, no controller).
    pub fn fixed_point(
        frequency: Frequency,
        table: &VfTable,
        jitter: JitterModel,
        seed: u64,
    ) -> Self {
        let mut clk = DomainClock::new(frequency, jitter, seed);
        clk.voltage = table.voltage_for(frequency);
        clk
    }

    /// Current clock frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Current supply voltage.
    pub fn voltage(&self) -> Voltage {
        self.voltage
    }

    /// Current period.
    pub fn period(&self) -> Femtos {
        self.frequency.period()
    }

    /// Time of the most recently produced edge.
    pub fn last_edge(&self) -> Femtos {
        self.last_edge
    }

    /// Number of edges produced so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Σ over produced edges of the instantaneous `V²` (volts²·cycles);
    /// multiplied by an effective clock-tree capacitance this is the
    /// clock-distribution energy of the domain.
    pub fn v2_cycle_sum(&self) -> f64 {
        self.v2_cycle_sum
    }

    /// Total time this clock spent idle in PLL re-lock windows.
    pub fn idle_total(&self) -> Femtos {
        self.idle_total
    }

    /// Takes the `(start, end)` of the most recent PLL re-lock window, if
    /// one occurred since the last call. Trace observers poll this after
    /// each edge; when nobody polls, the slot is simply overwritten by the
    /// next re-lock.
    pub fn take_relock(&mut self) -> Option<(Femtos, Femtos)> {
        self.last_relock.take()
    }

    /// The DVFS controller, if this clock is scalable.
    pub fn controller(&self) -> Option<&VoltageController> {
        self.controller.as_ref()
    }

    /// Requests a frequency change effective from time `now`.
    ///
    /// Returns `false` (and does nothing) for fixed-frequency clocks.
    pub fn request_frequency(&mut self, now: Femtos, target: Frequency) -> bool {
        // Split borrows: pull the controller out while planning.
        let Some(mut ctl) = self.controller.take() else {
            return false;
        };
        ctl.request(now, target, &mut self.rng);
        self.controller = Some(ctl);
        true
    }

    /// Produces the next rising edge, applying any due DVFS steps and
    /// skipping PLL re-lock idle windows.
    pub fn next_edge(&mut self) -> Femtos {
        // Apply controller steps that came due at or before the last edge.
        // (Borrowed in place: this runs once per simulated clock edge, so it
        // must not shuffle the controller through an `Option` round-trip.)
        if let Some(ctl) = self.controller.as_mut() {
            if let Some(idle_until) = ctl.advance_to(self.last_edge) {
                self.idle_total += idle_until - self.last_edge;
                self.last_relock = Some((self.last_edge, idle_until));
                self.last_edge = idle_until;
                ctl.advance_to(self.last_edge);
            }
            let point = ctl.current();
            if point.frequency != self.frequency {
                self.frequency = point.frequency;
                self.period_f = point.frequency.period_femtos_f64();
                self.max_jitter = self.period_f * 0.45;
            }
            self.voltage = point.voltage;
        }
        let j = self
            .jitter
            .sample(&mut self.rng)
            .clamp(-self.max_jitter, self.max_jitter);
        let advance = (self.period_f + j).max(1.0).round() as u64;
        self.last_edge += Femtos::from_femtos(advance);
        self.cycles += 1;
        let v = self.voltage.as_volts();
        self.v2_cycle_sum += v * v;
        self.last_edge
    }

    /// Produces the next edge together with its cycle index.
    pub fn next_event(&mut self) -> ClockEvent {
        let time = self.next_edge();
        ClockEvent {
            time,
            cycle: self.cycles - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::DvfsModel;
    use crate::pll::PllModel;

    #[test]
    fn edges_are_strictly_increasing() {
        let mut clk = DomainClock::new(Frequency::GHZ, JitterModel::paper(), 7);
        let mut prev = Femtos::ZERO;
        for _ in 0..10_000 {
            let e = clk.next_edge();
            assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn jitterless_clock_is_periodic() {
        let mut clk = DomainClock::new(Frequency::from_mhz(500), JitterModel::disabled(), 1);
        let e1 = clk.next_edge();
        for i in 2..100u64 {
            let e = clk.next_edge();
            assert_eq!((e - e1).as_femtos(), (i - 1) * 2_000_000);
        }
    }

    #[test]
    fn mean_period_matches_frequency_under_jitter() {
        let mut clk = DomainClock::new(Frequency::GHZ, JitterModel::paper(), 99);
        let first = clk.next_edge();
        let n = 100_000u64;
        let mut last = first;
        for _ in 0..n {
            last = clk.next_edge();
        }
        let mean_period = (last - first).as_femtos() as f64 / n as f64;
        assert!(
            (mean_period - 1_000_000.0).abs() < 2_000.0,
            "mean {mean_period}"
        );
    }

    #[test]
    fn phase_randomization_differs_by_seed() {
        let mut a = DomainClock::new(Frequency::GHZ, JitterModel::disabled(), 1);
        let mut b = DomainClock::new(Frequency::GHZ, JitterModel::disabled(), 2);
        assert_ne!(a.next_edge(), b.next_edge());
    }

    #[test]
    fn v2_sum_tracks_voltage() {
        let mut clk = DomainClock::new(Frequency::GHZ, JitterModel::disabled(), 3);
        for _ in 0..10 {
            clk.next_edge();
        }
        assert!((clk.v2_cycle_sum() - 10.0 * 1.2 * 1.2).abs() < 1e-9);
    }

    #[test]
    fn dvfs_clock_slows_down_after_request() {
        let ctl = VoltageController::new(
            DvfsModel::XScale,
            VfTable::paper(),
            PllModel::paper(),
            Frequency::GHZ,
        );
        let mut clk = DomainClock::with_controller(ctl, JitterModel::disabled(), 5);
        let start = clk.next_edge();
        clk.request_frequency(start, Frequency::MIN_SCALED);
        // Run well past the ~55 µs ramp.
        let mut e = start;
        while e < start + Femtos::from_micros(100) {
            e = clk.next_edge();
        }
        assert_eq!(clk.frequency(), Frequency::MIN_SCALED);
        assert!((clk.voltage().as_volts() - 0.65).abs() < 1e-6);
        let e2 = clk.next_edge();
        assert_eq!((e2 - e).as_femtos(), 4_000_000); // 250 MHz period
    }

    #[test]
    fn transmeta_relock_stalls_edges() {
        let ctl = VoltageController::new(
            DvfsModel::Transmeta,
            VfTable::paper(),
            PllModel::paper(),
            Frequency::GHZ,
        );
        let mut clk = DomainClock::with_controller(ctl, JitterModel::disabled(), 6);
        let start = clk.next_edge();
        clk.request_frequency(start, Frequency::from_mhz(500));
        let next = clk.next_edge();
        // The very next edge is delayed by the 10–20 µs re-lock.
        assert!(next - start >= Femtos::from_micros(10));
        assert!(next - start <= Femtos::from_micros(21));
        assert!(clk.idle_total() >= Femtos::from_micros(10));
        assert_eq!(clk.frequency(), Frequency::from_mhz(500));
    }

    #[test]
    fn fixed_clock_ignores_requests() {
        let mut clk = DomainClock::new(Frequency::GHZ, JitterModel::disabled(), 9);
        assert!(!clk.request_frequency(Femtos::ZERO, Frequency::from_mhz(500)));
        clk.next_edge();
        assert_eq!(clk.frequency(), Frequency::GHZ);
    }
}
