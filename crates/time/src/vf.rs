//! The voltage/frequency operating region of the paper.
//!
//! The paper assumes 32 frequency points spanning a *linear* range from
//! 1 GHz down to 250 MHz, with a corresponding linear voltage range from
//! 1.2 V down to 0.65 V. The XScale scaling model quantizes the same region
//! into 320 steps (used by the off-line tool's histograms), while the
//! Transmeta model uses the 32-point grid.

use serde::{Deserialize, Serialize};

use crate::freq::{Frequency, Voltage};

/// A (frequency, voltage) pair on the operating curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Clock frequency of the point.
    pub frequency: Frequency,
    /// Minimum supply voltage that sustains `frequency`.
    pub voltage: Voltage,
}

/// The linear voltage/frequency relation of the paper.
///
/// `V(f) = V_min + (f − f_min) / (f_max − f_min) · (V_max − V_min)`, clamped
/// to the operating region. Note the deliberate range compression the paper
/// highlights: a 4× frequency range maps onto a < 2× voltage range, which is
/// exactly why conventional whole-chip scaling saves so little energy.
///
/// # Example
///
/// ```
/// use mcd_time::{Frequency, VfTable};
///
/// let table = VfTable::paper();
/// let v = table.voltage_for(Frequency::from_mhz(625));
/// assert!((v.as_volts() - 0.925).abs() < 1e-9); // midpoint of 0.65..1.2
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfTable {
    f_min: Frequency,
    f_max: Frequency,
    v_min: Voltage,
    v_max: Voltage,
}

impl VfTable {
    /// The paper's operating region: 250 MHz–1 GHz, 0.65 V–1.2 V.
    pub fn paper() -> Self {
        VfTable::new(
            Frequency::MIN_SCALED,
            Frequency::GHZ,
            Voltage::MIN_SCALED,
            Voltage::NOMINAL,
        )
    }

    /// Creates a custom linear operating region.
    ///
    /// # Panics
    ///
    /// Panics unless `f_min < f_max` and `v_min < v_max`.
    pub fn new(f_min: Frequency, f_max: Frequency, v_min: Voltage, v_max: Voltage) -> Self {
        assert!(f_min < f_max, "need f_min < f_max");
        assert!(v_min < v_max, "need v_min < v_max");
        VfTable {
            f_min,
            f_max,
            v_min,
            v_max,
        }
    }

    /// Lowest frequency of the region.
    pub fn f_min(&self) -> Frequency {
        self.f_min
    }

    /// Highest frequency of the region.
    pub fn f_max(&self) -> Frequency {
        self.f_max
    }

    /// Lowest voltage of the region.
    pub fn v_min(&self) -> Voltage {
        self.v_min
    }

    /// Highest voltage of the region.
    pub fn v_max(&self) -> Voltage {
        self.v_max
    }

    /// The minimum supply voltage for `f`, clamped to the region.
    pub fn voltage_for(&self, f: Frequency) -> Voltage {
        let fr = f.as_hz() as f64;
        let (lo, hi) = (self.f_min.as_hz() as f64, self.f_max.as_hz() as f64);
        let t = ((fr - lo) / (hi - lo)).clamp(0.0, 1.0);
        let v = self.v_min.as_volts() + t * (self.v_max.as_volts() - self.v_min.as_volts());
        Voltage::from_volts(v)
    }

    /// The operating point for `f`.
    pub fn point_for(&self, f: Frequency) -> OperatingPoint {
        OperatingPoint {
            frequency: f,
            voltage: self.voltage_for(f),
        }
    }

    /// The highest grid frequency whose fraction-of-max is at most `scale`
    /// (e.g. `scale = 0.5` → 500 MHz on the paper table).
    pub fn frequency_at_scale(&self, scale: f64) -> Frequency {
        let hz = (self.f_max.as_hz() as f64 * scale.clamp(0.0, 1.0)).max(self.f_min.as_hz() as f64);
        Frequency::from_hz(hz.round() as u64)
    }
}

/// A discrete grid of equally spaced frequency points over an operating
/// region, as used for DVFS target selection.
///
/// The paper uses a 32-point grid under the Transmeta model and a 320-point
/// grid under the XScale model.
///
/// # Example
///
/// ```
/// use mcd_time::{Frequency, FrequencyGrid, VfTable};
///
/// let grid = FrequencyGrid::new(VfTable::paper(), 32);
/// assert_eq!(grid.len(), 32);
/// assert_eq!(grid.point(0).frequency, Frequency::MIN_SCALED);
/// assert_eq!(grid.point(31).frequency, Frequency::GHZ);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrequencyGrid {
    table: VfTable,
    points: Vec<OperatingPoint>,
}

impl FrequencyGrid {
    /// Builds a grid of `steps` equally spaced points, lowest frequency first.
    ///
    /// # Panics
    ///
    /// Panics if `steps < 2`.
    pub fn new(table: VfTable, steps: usize) -> Self {
        assert!(steps >= 2, "a frequency grid needs at least two points");
        let lo = table.f_min().as_hz() as f64;
        let hi = table.f_max().as_hz() as f64;
        let points = (0..steps)
            .map(|i| {
                let f = lo + (hi - lo) * i as f64 / (steps - 1) as f64;
                table.point_for(Frequency::from_hz(f.round() as u64))
            })
            .collect();
        FrequencyGrid { table, points }
    }

    /// The paper's 32-point grid (Transmeta-granularity).
    pub fn paper32() -> Self {
        FrequencyGrid::new(VfTable::paper(), 32)
    }

    /// The paper's 320-point grid (XScale-granularity).
    pub fn paper320() -> Self {
        FrequencyGrid::new(VfTable::paper(), 320)
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false — grids have at least two points.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The underlying operating region.
    pub fn table(&self) -> &VfTable {
        &self.table
    }

    /// The `i`-th point (index 0 is the lowest frequency).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn point(&self, i: usize) -> OperatingPoint {
        self.points[i]
    }

    /// All points, lowest frequency first.
    pub fn points(&self) -> &[OperatingPoint] {
        &self.points
    }

    /// The lowest grid point with frequency ≥ `f` (clamped to the top point).
    ///
    /// This is how a target frequency computed by the off-line tool is
    /// quantized: rounding *up* guarantees the dilation bound still holds.
    pub fn quantize_up(&self, f: Frequency) -> OperatingPoint {
        match self.points.iter().find(|p| p.frequency >= f) {
            Some(p) => *p,
            None => *self.points.last().expect("grid is non-empty"),
        }
    }

    /// The index of the lowest grid point with frequency ≥ `f`.
    pub fn index_at_or_above(&self, f: Frequency) -> usize {
        self.points
            .iter()
            .position(|p| p.frequency >= f)
            .unwrap_or(self.points.len() - 1)
    }

    /// The grid point nearest to `f` in frequency.
    pub fn nearest(&self, f: Frequency) -> OperatingPoint {
        *self
            .points
            .iter()
            .min_by_key(|p| p.frequency.as_hz().abs_diff(f.as_hz()))
            .expect("grid is non-empty")
    }

    /// Snaps an arbitrary target in Hz — typically the continuous output of
    /// an on-line controller — to the nearest grid point.
    ///
    /// Unlike [`nearest`], the input is a raw `f64`, so it accepts values a
    /// control law can produce but [`Frequency`] cannot represent: zero,
    /// negative, above the region, or non-finite. Out-of-region targets
    /// clamp to the end points; `NaN` snaps to the lowest point (the safe
    /// choice for a DVFS request).
    ///
    /// [`nearest`]: FrequencyGrid::nearest
    pub fn snap(&self, hz: f64) -> OperatingPoint {
        let lo = self.table.f_min().as_hz() as f64;
        let hi = self.table.f_max().as_hz() as f64;
        let t = (hz - lo) / (hi - lo);
        let t = if t.is_nan() { 0.0 } else { t.clamp(0.0, 1.0) };
        // The grid is equally spaced, so the nearest point is index
        // arithmetic; t ≤ 1 keeps the rounded index in bounds.
        let i = (t * (self.points.len() - 1) as f64).round() as usize;
        self.points[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_endpoints() {
        let t = VfTable::paper();
        assert!((t.voltage_for(Frequency::GHZ).as_volts() - 1.2).abs() < 1e-12);
        assert!((t.voltage_for(Frequency::MIN_SCALED).as_volts() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn voltage_clamps_outside_region() {
        let t = VfTable::paper();
        assert!((t.voltage_for(Frequency::from_mhz(100)).as_volts() - 0.65).abs() < 1e-12);
        assert!((t.voltage_for(Frequency::from_mhz(2000)).as_volts() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn four_fold_frequency_is_under_two_fold_voltage() {
        // The paper's central observation about range compression.
        let t = VfTable::paper();
        let v_hi = t.voltage_for(Frequency::GHZ).as_volts();
        let v_lo = t.voltage_for(Frequency::MIN_SCALED).as_volts();
        assert!(v_hi / v_lo < 2.0);
        assert!(v_hi / v_lo > 1.8);
    }

    #[test]
    fn grid32_matches_paper_spacing() {
        let g = FrequencyGrid::paper32();
        assert_eq!(g.len(), 32);
        let step = g.point(1).frequency.as_hz() as f64 - g.point(0).frequency.as_hz() as f64;
        // 750 MHz span over 31 intervals ≈ 24.19 MHz.
        assert!((step - 750e6 / 31.0).abs() < 1.0);
    }

    #[test]
    fn grid_is_sorted_ascending() {
        for grid in [FrequencyGrid::paper32(), FrequencyGrid::paper320()] {
            for w in grid.points().windows(2) {
                assert!(w[0].frequency < w[1].frequency);
                assert!(w[0].voltage < w[1].voltage);
            }
        }
    }

    #[test]
    fn quantize_up_never_lowers_frequency() {
        let g = FrequencyGrid::paper32();
        let f = Frequency::from_mhz(300);
        let p = g.quantize_up(f);
        assert!(p.frequency >= f);
        // Above the top of the grid we clamp to the maximum point.
        let top = g.quantize_up(Frequency::from_mhz(1500));
        assert_eq!(top.frequency, Frequency::GHZ);
    }

    #[test]
    fn nearest_finds_closest_point() {
        let g = FrequencyGrid::paper32();
        let p = g.nearest(Frequency::from_mhz(997));
        assert_eq!(p.frequency, Frequency::GHZ);
    }

    #[test]
    fn snap_agrees_with_nearest_on_representable_targets() {
        for grid in [FrequencyGrid::paper32(), FrequencyGrid::paper320()] {
            for hz in (200_000_000u64..=1_100_000_000).step_by(7_654_321) {
                let snapped = grid.snap(hz as f64);
                let nearest = grid.nearest(Frequency::from_hz(hz));
                assert_eq!(snapped, nearest, "hz = {hz}");
            }
        }
    }

    #[test]
    fn snap_handles_unrepresentable_targets() {
        let g = FrequencyGrid::paper32();
        let floor = g.point(0);
        let top = g.point(31);
        assert_eq!(g.snap(0.0), floor);
        assert_eq!(g.snap(-3e9), floor);
        assert_eq!(g.snap(f64::NAN), floor);
        assert_eq!(g.snap(f64::NEG_INFINITY), floor);
        assert_eq!(g.snap(f64::INFINITY), top);
        assert_eq!(g.snap(1e18), top);
    }

    #[test]
    fn frequency_at_scale() {
        let t = VfTable::paper();
        assert_eq!(t.frequency_at_scale(1.0), Frequency::GHZ);
        assert_eq!(t.frequency_at_scale(0.0), Frequency::MIN_SCALED);
        assert_eq!(t.frequency_at_scale(0.5), Frequency::from_mhz(500));
    }
}
