//! Absolute simulation time, measured in femtoseconds.
//!
//! A femtosecond granularity lets us represent a 1 GHz period exactly
//! (1 000 000 fs) while still covering more than five hours of simulated time
//! in a `u64`, far beyond any run this simulator performs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An absolute point in (or span of) simulated time, in femtoseconds.
///
/// `Femtos` is used both for instants and durations; the arithmetic provided
/// keeps either interpretation consistent.
///
/// # Example
///
/// ```
/// use mcd_time::Femtos;
///
/// let edge = Femtos::from_nanos(3);
/// assert_eq!(edge + Femtos::from_picos(500), Femtos::from_femtos(3_500_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Femtos(u64);

impl Femtos {
    /// The zero instant / empty duration.
    pub const ZERO: Femtos = Femtos(0);
    /// The maximum representable instant. Used as an "infinitely far" sentinel.
    pub const MAX: Femtos = Femtos(u64::MAX);

    /// Creates a time value from raw femtoseconds.
    pub const fn from_femtos(fs: u64) -> Self {
        Femtos(fs)
    }

    /// Creates a time value from picoseconds.
    pub const fn from_picos(ps: u64) -> Self {
        Femtos(ps * 1_000)
    }

    /// Creates a time value from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Femtos(ns * 1_000_000)
    }

    /// Creates a time value from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Femtos(us * 1_000_000_000)
    }

    /// Creates a time value from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Femtos(ms * 1_000_000_000_000)
    }

    /// Creates a time value from a (non-negative, finite) count of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid seconds: {secs}");
        let fs = secs * 1e15;
        assert!(fs <= u64::MAX as f64, "seconds value too large: {secs}");
        Femtos(fs.round() as u64)
    }

    /// Raw femtosecond count.
    pub const fn as_femtos(self) -> u64 {
        self.0
    }

    /// This time expressed in picoseconds (floating point).
    pub fn as_picos_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time expressed in nanoseconds (floating point).
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in microseconds (floating point).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in milliseconds (floating point).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// This time expressed in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e15
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    pub fn saturating_sub(self, other: Femtos) -> Femtos {
        Femtos(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow.
    pub fn checked_add(self, other: Femtos) -> Option<Femtos> {
        self.0.checked_add(other.0).map(Femtos)
    }

    /// The earlier of two instants.
    pub fn min(self, other: Femtos) -> Femtos {
        Femtos(self.0.min(other.0))
    }

    /// The later of two instants.
    pub fn max(self, other: Femtos) -> Femtos {
        Femtos(self.0.max(other.0))
    }
}

impl Add for Femtos {
    type Output = Femtos;
    fn add(self, rhs: Femtos) -> Femtos {
        Femtos(self.0 + rhs.0)
    }
}

impl AddAssign for Femtos {
    fn add_assign(&mut self, rhs: Femtos) {
        self.0 += rhs.0;
    }
}

impl Sub for Femtos {
    type Output = Femtos;
    fn sub(self, rhs: Femtos) -> Femtos {
        Femtos(self.0 - rhs.0)
    }
}

impl SubAssign for Femtos {
    fn sub_assign(&mut self, rhs: Femtos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Femtos {
    type Output = Femtos;
    fn mul(self, rhs: u64) -> Femtos {
        Femtos(self.0 * rhs)
    }
}

impl Div<u64> for Femtos {
    type Output = Femtos;
    fn div(self, rhs: u64) -> Femtos {
        Femtos(self.0 / rhs)
    }
}

impl Sum for Femtos {
    fn sum<I: Iterator<Item = Femtos>>(iter: I) -> Femtos {
        iter.fold(Femtos::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Femtos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000_000 {
            write!(f, "{:.3} ms", self.as_millis_f64())
        } else if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} us", self.as_micros_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} ns", self.as_nanos_f64())
        } else {
            write!(f, "{} fs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions_round_trip() {
        assert_eq!(Femtos::from_picos(1).as_femtos(), 1_000);
        assert_eq!(Femtos::from_nanos(1).as_femtos(), 1_000_000);
        assert_eq!(Femtos::from_micros(1).as_femtos(), 1_000_000_000);
        assert_eq!(Femtos::from_millis(1).as_femtos(), 1_000_000_000_000);
        assert_eq!(Femtos::from_secs_f64(1e-15).as_femtos(), 1);
    }

    #[test]
    fn arithmetic_behaves_like_u64() {
        let a = Femtos::from_femtos(100);
        let b = Femtos::from_femtos(40);
        assert_eq!((a + b).as_femtos(), 140);
        assert_eq!((a - b).as_femtos(), 60);
        assert_eq!((a * 3).as_femtos(), 300);
        assert_eq!((a / 4).as_femtos(), 25);
        assert_eq!(b.saturating_sub(a), Femtos::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn float_conversions_agree() {
        let t = Femtos::from_micros(55);
        assert!((t.as_secs_f64() - 55e-6).abs() < 1e-18);
        assert!((t.as_millis_f64() - 0.055).abs() < 1e-12);
        assert!((t.as_micros_f64() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(Femtos::from_femtos(12).to_string(), "12 fs");
        assert_eq!(Femtos::from_nanos(2).to_string(), "2.000 ns");
        assert_eq!(Femtos::from_micros(3).to_string(), "3.000 us");
        assert_eq!(Femtos::from_millis(4).to_string(), "4.000 ms");
    }

    #[test]
    fn sum_of_durations() {
        let total: Femtos = (1..=4).map(Femtos::from_nanos).sum();
        assert_eq!(total, Femtos::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_rejects_negative() {
        let _ = Femtos::from_secs_f64(-1.0);
    }
}
