//! Cycle-to-cycle clock jitter.
//!
//! The paper models each domain clock's jitter as a normal distribution with
//! zero mean and a 110 ps standard deviation — 100 ps from the external PLL
//! (a survey of available ICs) plus 10 ps from the internal PLL, assuming a
//! 1 GHz on-chip clock generated from a common external 100 MHz source.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// Parameters of the per-cycle jitter distribution.
///
/// # Example
///
/// ```
/// use mcd_time::JitterModel;
///
/// let paper = JitterModel::paper();
/// assert_eq!(paper.std_dev_femtos(), 110_000.0);
/// assert!(JitterModel::disabled().std_dev_femtos() == 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterModel {
    /// Standard deviation of the external PLL jitter, in femtoseconds.
    external_fs: f64,
    /// Standard deviation of the internal PLL jitter, in femtoseconds.
    internal_fs: f64,
}

impl JitterModel {
    /// The paper's model: 100 ps external + 10 ps internal.
    pub fn paper() -> Self {
        JitterModel {
            external_fs: 100_000.0,
            internal_fs: 10_000.0,
        }
    }

    /// No jitter — useful for deterministic unit tests and ablations.
    pub fn disabled() -> Self {
        JitterModel {
            external_fs: 0.0,
            internal_fs: 0.0,
        }
    }

    /// A custom model from explicit standard deviations (in femtoseconds).
    ///
    /// # Panics
    ///
    /// Panics if either deviation is negative or non-finite.
    pub fn new(external_fs: f64, internal_fs: f64) -> Self {
        assert!(
            external_fs.is_finite() && external_fs >= 0.0,
            "invalid external jitter: {external_fs}"
        );
        assert!(
            internal_fs.is_finite() && internal_fs >= 0.0,
            "invalid internal jitter: {internal_fs}"
        );
        JitterModel {
            external_fs,
            internal_fs,
        }
    }

    /// Combined standard deviation in femtoseconds.
    ///
    /// The paper simply sums the two contributions (110 ps total), so we do
    /// the same rather than combining in quadrature.
    pub fn std_dev_femtos(&self) -> f64 {
        self.external_fs + self.internal_fs
    }

    /// Whether jitter is enabled at all.
    pub fn is_enabled(&self) -> bool {
        self.std_dev_femtos() > 0.0
    }

    /// Samples one cycle's jitter in femtoseconds (signed).
    ///
    /// Samples are clamped to ±3σ, and the caller additionally bounds them to
    /// less than half the current period so edges stay strictly ordered.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let sd = self.std_dev_femtos();
        if sd == 0.0 {
            return 0.0;
        }
        rng.normal(0.0, sd).clamp(-3.0 * sd, 3.0 * sd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_model_is_110ps() {
        assert_eq!(JitterModel::paper().std_dev_femtos(), 110_000.0);
        assert!(JitterModel::paper().is_enabled());
    }

    #[test]
    fn disabled_model_samples_zero() {
        let mut rng = SimRng::seed_from_u64(1);
        let j = JitterModel::disabled();
        for _ in 0..10 {
            assert_eq!(j.sample(&mut rng), 0.0);
        }
    }

    #[test]
    fn samples_are_clamped_to_three_sigma() {
        let mut rng = SimRng::seed_from_u64(2);
        let j = JitterModel::paper();
        let sd = j.std_dev_femtos();
        for _ in 0..10_000 {
            let s = j.sample(&mut rng);
            assert!(s.abs() <= 3.0 * sd + 1e-9);
        }
    }

    #[test]
    fn sample_std_dev_matches_model() {
        let mut rng = SimRng::seed_from_u64(3);
        let j = JitterModel::paper();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| j.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let sd = var.sqrt();
        assert!((sd - 110_000.0).abs() / 110_000.0 < 0.05, "sd {sd}");
    }

    #[test]
    #[should_panic(expected = "invalid external jitter")]
    fn negative_jitter_rejected() {
        let _ = JitterModel::new(-1.0, 0.0);
    }
}
