//! Frequency and supply-voltage quantities.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::femtos::Femtos;

/// A clock frequency in hertz.
///
/// The paper's operating range is 250 MHz – 1 GHz; this type represents any
/// frequency but provides the paper's landmarks as constants.
///
/// # Example
///
/// ```
/// use mcd_time::Frequency;
///
/// let f = Frequency::from_mhz(500);
/// assert_eq!(f.period().as_femtos(), 2_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Frequency(u64);

impl Frequency {
    /// 1 GHz — the paper's maximum (and front-end) frequency.
    pub const GHZ: Frequency = Frequency(1_000_000_000);
    /// 250 MHz — the paper's minimum scaled frequency (¼ of maximum).
    pub const MIN_SCALED: Frequency = Frequency(250_000_000);

    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero: a zero-frequency clock never produces an edge
    /// and would deadlock the simulation.
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be positive");
        Frequency(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: u64) -> Self {
        Frequency::from_hz(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz (floating point, e.g. `0.25`).
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not strictly positive and finite.
    pub fn from_ghz_f64(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "invalid frequency: {ghz} GHz");
        Frequency::from_hz((ghz * 1e9).round() as u64)
    }

    /// The frequency in hertz.
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// The frequency in megahertz (floating point).
    pub fn as_mhz_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The frequency in gigahertz (floating point).
    pub fn as_ghz_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The clock period, rounded to the nearest femtosecond.
    pub fn period(self) -> Femtos {
        Femtos::from_femtos(((1e15 / self.0 as f64).round()) as u64)
    }

    /// The clock period as an exact floating-point femtosecond count.
    pub fn period_femtos_f64(self) -> f64 {
        1e15 / self.0 as f64
    }

    /// The number of whole cycles of this clock that fit in `span`.
    pub fn cycles_in(self, span: Femtos) -> u64 {
        (span.as_femtos() as f64 / self.period_femtos_f64()) as u64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} GHz", self.as_ghz_f64())
        } else {
            write!(f, "{:.1} MHz", self.as_mhz_f64())
        }
    }
}

/// A supply voltage in volts.
///
/// # Example
///
/// ```
/// use mcd_time::Voltage;
///
/// let nominal = Voltage::from_volts(1.2);
/// let scaled = Voltage::from_volts(0.65);
/// assert!(scaled.squared_ratio_to(nominal) < 0.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Voltage(f64);

impl Voltage {
    /// The paper's nominal supply: 1.2 V (TSMC CL010LP projection).
    pub const NOMINAL: Voltage = Voltage(1.2);
    /// The paper's minimum scaled supply: 0.65 V.
    pub const MIN_SCALED: Voltage = Voltage(0.65);

    /// Creates a voltage from volts.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not strictly positive and finite.
    pub fn from_volts(v: f64) -> Self {
        assert!(v.is_finite() && v > 0.0, "invalid voltage: {v} V");
        Voltage(v)
    }

    /// Creates a voltage from millivolts.
    pub fn from_millivolts(mv: f64) -> Self {
        Voltage::from_volts(mv / 1e3)
    }

    /// The voltage in volts.
    pub const fn as_volts(self) -> f64 {
        self.0
    }

    /// The voltage in millivolts.
    pub fn as_millivolts(self) -> f64 {
        self.0 * 1e3
    }

    /// `(self / other)²` — the factor by which dynamic energy scales when the
    /// supply moves from `other` to `self`.
    pub fn squared_ratio_to(self, other: Voltage) -> f64 {
        let r = self.0 / other.0;
        r * r
    }
}

impl fmt::Display for Voltage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} V", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_of_landmarks() {
        assert_eq!(Frequency::GHZ.period().as_femtos(), 1_000_000);
        assert_eq!(Frequency::MIN_SCALED.period().as_femtos(), 4_000_000);
    }

    #[test]
    fn constructors_agree() {
        assert_eq!(Frequency::from_mhz(1000), Frequency::GHZ);
        assert_eq!(Frequency::from_ghz_f64(0.25), Frequency::MIN_SCALED);
    }

    #[test]
    fn cycles_in_span() {
        let f = Frequency::from_mhz(500);
        assert_eq!(f.cycles_in(Femtos::from_nanos(10)), 5);
        assert_eq!(f.cycles_in(Femtos::from_nanos(1)), 0);
    }

    #[test]
    fn voltage_energy_ratio() {
        let full = Voltage::NOMINAL;
        let half = Voltage::from_volts(0.6);
        assert!((half.squared_ratio_to(full) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn displays() {
        assert_eq!(Frequency::GHZ.to_string(), "1.000 GHz");
        assert_eq!(Frequency::from_mhz(920).to_string(), "920.0 MHz");
        assert_eq!(Voltage::NOMINAL.to_string(), "1.2000 V");
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::from_hz(0);
    }

    #[test]
    #[should_panic(expected = "invalid voltage")]
    fn negative_voltage_rejected() {
        let _ = Voltage::from_volts(-0.1);
    }
}
