//! Phase-locked-loop re-lock model.
//!
//! Under the Transmeta scaling model, every frequency change requires the
//! domain PLL to re-lock; until it does, the domain is idle. The paper models
//! the lock time as normally distributed with a 15 µs mean and a 10–20 µs
//! range.

use serde::{Deserialize, Serialize};

use crate::femtos::Femtos;
use crate::rng::SimRng;

/// A normally distributed, range-clamped PLL lock-time model.
///
/// # Example
///
/// ```
/// use mcd_time::{PllModel, SimRng};
///
/// let pll = PllModel::paper();
/// let mut rng = SimRng::seed_from_u64(1);
/// let t = pll.sample_lock_time(&mut rng);
/// assert!(t >= pll.min() && t <= pll.max());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PllModel {
    mean: Femtos,
    min: Femtos,
    max: Femtos,
}

impl PllModel {
    /// The paper's model: mean 15 µs, range 10–20 µs.
    pub fn paper() -> Self {
        PllModel {
            mean: Femtos::from_micros(15),
            min: Femtos::from_micros(10),
            max: Femtos::from_micros(20),
        }
    }

    /// A custom lock-time model.
    ///
    /// # Panics
    ///
    /// Panics unless `min ≤ mean ≤ max`.
    pub fn new(mean: Femtos, min: Femtos, max: Femtos) -> Self {
        assert!(min <= mean && mean <= max, "need min <= mean <= max");
        PllModel { mean, min, max }
    }

    /// Mean lock time.
    pub fn mean(&self) -> Femtos {
        self.mean
    }

    /// Minimum lock time.
    pub fn min(&self) -> Femtos {
        self.min
    }

    /// Maximum lock time.
    pub fn max(&self) -> Femtos {
        self.max
    }

    /// Draws one lock duration.
    ///
    /// The distribution is normal with σ chosen so that ±3σ covers the
    /// min–max range, then clamped to that range (matching the paper's
    /// "mean time of 15 µs and a range of 10–20 µs").
    pub fn sample_lock_time(&self, rng: &mut SimRng) -> Femtos {
        let half_range = (self.max.as_femtos() - self.min.as_femtos()) as f64 / 2.0;
        let sd = half_range / 3.0;
        let t = rng.normal(self.mean.as_femtos() as f64, sd);
        let clamped = t.clamp(self.min.as_femtos() as f64, self.max.as_femtos() as f64);
        Femtos::from_femtos(clamped.round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters() {
        let p = PllModel::paper();
        assert_eq!(p.mean(), Femtos::from_micros(15));
        assert_eq!(p.min(), Femtos::from_micros(10));
        assert_eq!(p.max(), Femtos::from_micros(20));
    }

    #[test]
    fn samples_stay_in_range_with_plausible_mean() {
        let p = PllModel::paper();
        let mut rng = SimRng::seed_from_u64(17);
        let n = 5_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let t = p.sample_lock_time(&mut rng);
            assert!(t >= p.min() && t <= p.max());
            sum += t.as_micros_f64();
        }
        let mean = sum / n as f64;
        assert!((mean - 15.0).abs() < 0.3, "mean {mean} us");
    }

    #[test]
    #[should_panic(expected = "need min <= mean <= max")]
    fn inverted_range_rejected() {
        let _ = PllModel::new(
            Femtos::from_micros(5),
            Femtos::from_micros(10),
            Femtos::from_micros(20),
        );
    }
}
