//! Deterministic random-number utilities for the simulator.
//!
//! Every stochastic element of the model (clock jitter, PLL lock times,
//! workload generation) draws from a [`SimRng`] seeded from the experiment
//! configuration, so that any run is exactly reproducible.
//!
//! The generator is a self-contained xoshiro256++ — clonable (clocks and
//! controllers need `Clone`), fast, and stable across toolchain upgrades,
//! which keeps recorded experiment results reproducible.

/// A seeded random source with the distributions the simulator needs.
///
/// Provides uniform, Bernoulli, and Gaussian (Marsaglia polar) sampling.
///
/// # Example
///
/// ```
/// use mcd_time::SimRng;
///
/// let mut a = SimRng::seed_from_u64(7);
/// let mut b = SimRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
    cached_gaussian: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
            cached_gaussian: None,
        }
    }

    /// Derives an independent stream for a named sub-component.
    ///
    /// Mixing the label into a fresh draw keeps component streams
    /// decorrelated even though they descend from one experiment seed.
    pub fn derive(&self, label: u64) -> SimRng {
        let mut probe = self.clone();
        let mut s = probe
            .next_u64()
            .wrapping_add(label.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SimRng::seed_from_u64(splitmix64(&mut s))
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire-style rejection-free-enough multiply-shift; bias is
        // negligible for the ranges the simulator uses (< 2^53).
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Standard normal variate (mean 0, σ 1), Marsaglia polar method.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(v) = self.cached_gaussian.take() {
            return v;
        }
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let m = (-2.0 * s.ln() / s).sqrt();
                self.cached_gaussian = Some(v * m);
                return u * m;
            }
        }
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Geometric-ish draw: number of failures before a success with
    /// probability `p`, capped at `cap`. Used for dependence distances.
    pub fn geometric_capped(&mut self, p: f64, cap: u64) -> u64 {
        let p = p.clamp(1e-9, 1.0);
        let mut n = 0;
        while n < cap && !self.chance(p) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_preserves_stream() {
        let mut a = SimRng::seed_from_u64(8);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derive_produces_distinct_streams() {
        let root = SimRng::seed_from_u64(1);
        let mut x = root.derive(1);
        let mut y = root.derive(2);
        let same = (0..32).filter(|_| x.next_u64() == y.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = SimRng::seed_from_u64(12);
        let n = 50_000;
        let mean = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = SimRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn below_respects_bound_and_covers_range() {
        let mut r = SimRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn geometric_capped_is_capped() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..200 {
            assert!(r.geometric_capped(0.01, 5) <= 5);
        }
    }
}
