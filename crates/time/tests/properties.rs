//! Property-based tests for the clocking substrate.

use proptest::prelude::*;

use mcd_time::{
    sync_visible_at, DomainClock, DvfsModel, Femtos, Frequency, FrequencyGrid, JitterModel,
    PllModel, SimRng, SyncParams, VfTable, VoltageController,
};

proptest! {
    #[test]
    fn femtos_arithmetic_is_consistent(a in 0u64..1u64 << 50, b in 0u64..1u64 << 50) {
        let (fa, fb) = (Femtos::from_femtos(a), Femtos::from_femtos(b));
        prop_assert_eq!((fa + fb).as_femtos(), a + b);
        prop_assert_eq!(fa.max(fb) + fa.min(fb), fa + fb);
        prop_assert_eq!(fa.saturating_sub(fb).as_femtos(), a.saturating_sub(b));
    }

    #[test]
    fn voltage_for_is_monotonic(f1 in 250u64..1000, f2 in 250u64..1000) {
        let table = VfTable::paper();
        let (lo, hi) = (f1.min(f2), f1.max(f2));
        let v_lo = table.voltage_for(Frequency::from_mhz(lo));
        let v_hi = table.voltage_for(Frequency::from_mhz(hi));
        prop_assert!(v_lo <= v_hi);
        prop_assert!(v_lo.as_volts() >= 0.65 - 1e-9);
        prop_assert!(v_hi.as_volts() <= 1.2 + 1e-9);
    }

    #[test]
    fn grid_quantize_up_is_tight(mhz in 1u64..1500, steps in 2usize..64) {
        let grid = FrequencyGrid::new(VfTable::paper(), steps);
        let f = Frequency::from_mhz(mhz);
        let q = grid.quantize_up(f);
        if f <= Frequency::GHZ {
            prop_assert!(q.frequency >= f.max(Frequency::MIN_SCALED));
        }
        // No grid point between f and the chosen one.
        for p in grid.points() {
            prop_assert!(!(p.frequency >= f && p.frequency < q.frequency));
        }
    }

    #[test]
    fn sync_visibility_is_monotone_in_time(
        t1 in 0u64..1u64 << 40,
        t2 in 0u64..1u64 << 40,
        frac in 0.0f64..0.9,
    ) {
        let params = SyncParams::new(frac);
        let src = Frequency::GHZ.period();
        let dst = Frequency::from_mhz(400).period();
        let (lo, hi) = (t1.min(t2), t1.max(t2));
        let v_lo = sync_visible_at(&params, Femtos::from_femtos(lo), src, dst);
        let v_hi = sync_visible_at(&params, Femtos::from_femtos(hi), src, dst);
        prop_assert!(v_lo <= v_hi);
        prop_assert!(v_lo >= Femtos::from_femtos(lo));
    }

    #[test]
    fn clock_edges_strictly_increase_for_any_seed(seed in 0u64..10_000) {
        let mut clk = DomainClock::new(Frequency::GHZ, JitterModel::paper(), seed);
        let mut prev = Femtos::ZERO;
        for _ in 0..500 {
            let e = clk.next_edge();
            prop_assert!(e > prev);
            prev = e;
        }
    }

    #[test]
    fn controller_always_stays_inside_the_operating_region(
        targets in proptest::collection::vec(250u64..1000, 1..6),
        model_is_xscale in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let model = if model_is_xscale { DvfsModel::XScale } else { DvfsModel::Transmeta };
        let mut ctl = VoltageController::new(
            model,
            VfTable::paper(),
            PllModel::paper(),
            Frequency::GHZ,
        );
        let mut rng = SimRng::seed_from_u64(seed);
        let mut now = Femtos::ZERO;
        for mhz in targets {
            let plan = ctl.request(now, Frequency::from_mhz(mhz), &mut rng);
            // Walk through the plan in small steps and check the invariant.
            let horizon = plan.settled_at + Femtos::from_micros(1);
            while now < horizon {
                now += Femtos::from_micros(3);
                ctl.advance_to(now);
                let p = ctl.current();
                prop_assert!(p.voltage.as_volts() >= 0.65 - 1e-9);
                prop_assert!(p.voltage.as_volts() <= 1.2 + 1e-9);
                prop_assert!(p.frequency >= Frequency::MIN_SCALED);
                prop_assert!(p.frequency <= Frequency::GHZ);
                // The voltage always supports the current frequency.
                let needed = VfTable::paper().voltage_for(p.frequency);
                prop_assert!(p.voltage.as_volts() >= needed.as_volts() - 2e-3);
            }
            prop_assert_eq!(ctl.current().frequency, Frequency::from_mhz(mhz));
        }
    }

    #[test]
    fn rng_streams_are_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        for _ in 0..50 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let u = a.uniform();
        prop_assert!((0.0..1.0).contains(&u));
    }
}
