//! Pipeline configuration (Table 1 of the paper).

use serde::{Deserialize, Serialize};

use mcd_time::Femtos;
use mcd_uarch::{BranchPredictorConfig, CacheConfig, FuPoolConfig};
use mcd_workload::OpClass;

/// Structural and latency parameters of the simulated machine.
///
/// Defaults ([`PipelineConfig::alpha21264`]) reproduce Table 1: decode
/// width 4, issue width 6 (4 integer + 2 FP), retire width 11, 64 KB 2-way
/// L1 caches (2-cycle), 1 MB direct-mapped L2 (12-cycle), 80-entry ROB,
/// 20/15-entry integer/FP issue queues, 64-entry load/store queue, 72 + 72
/// physical registers, 7-cycle branch mispredict penalty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Instructions fetched/decoded/renamed per front-end cycle.
    pub decode_width: usize,
    /// Integer-domain issue width.
    pub issue_width_int: usize,
    /// Floating-point-domain issue width.
    pub issue_width_fp: usize,
    /// Load/store-domain memory issue width (cache ports used per cycle).
    pub issue_width_mem: usize,
    /// Instructions retired per front-end cycle.
    pub retire_width: usize,
    /// Fetch-queue depth (fetch → dispatch decoupling inside the front end).
    pub fetch_queue: usize,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Integer issue-queue entries.
    pub iq_int: usize,
    /// Floating-point issue-queue entries.
    pub iq_fp: usize,
    /// Load/store queue entries.
    pub lsq_size: usize,
    /// Integer physical registers.
    pub phys_int: u16,
    /// Floating-point physical registers.
    pub phys_fp: u16,
    /// Branch mispredict penalty, in front-end cycles, charged after the
    /// resolving branch's outcome reaches the front end.
    pub mispredict_penalty: u64,
    /// L1 (I and D) access latency in owning-domain cycles.
    pub l1_latency: u64,
    /// L2 access latency in load/store-domain cycles.
    pub l2_latency: u64,
    /// Main-memory access latency (the external full-speed domain).
    pub mem_latency: Femtos,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Branch predictor tables.
    pub bpred: BranchPredictorConfig,
    /// Functional-unit counts.
    pub fus: FuPoolConfig,
    /// Integer ALU latency (cycles).
    pub lat_int_alu: u64,
    /// Integer multiply latency (pipelined).
    pub lat_int_mul: u64,
    /// Integer divide latency (unpipelined).
    pub lat_int_div: u64,
    /// FP add latency (pipelined).
    pub lat_fp_add: u64,
    /// FP multiply latency (pipelined).
    pub lat_fp_mul: u64,
    /// FP divide latency (unpipelined).
    pub lat_fp_div: u64,
    /// FP square-root latency (unpipelined).
    pub lat_fp_sqrt: u64,
    /// Effective-address computation latency (integer domain).
    pub lat_agu: u64,
}

impl PipelineConfig {
    /// Table 1 of the paper (Alpha 21264-like).
    pub fn alpha21264() -> Self {
        PipelineConfig {
            decode_width: 4,
            issue_width_int: 4,
            issue_width_fp: 2,
            issue_width_mem: 2,
            retire_width: 11,
            fetch_queue: 8,
            rob_size: 80,
            iq_int: 20,
            iq_fp: 15,
            lsq_size: 64,
            phys_int: 72,
            phys_fp: 72,
            mispredict_penalty: 7,
            l1_latency: 2,
            l2_latency: 12,
            mem_latency: Femtos::from_nanos(80),
            l1d: CacheConfig::l1d_paper(),
            l1i: CacheConfig::l1i_paper(),
            l2: CacheConfig::l2_paper(),
            bpred: BranchPredictorConfig::paper(),
            fus: FuPoolConfig::paper(),
            lat_int_alu: 1,
            lat_int_mul: 7,
            lat_int_div: 20,
            lat_fp_add: 4,
            lat_fp_mul: 4,
            lat_fp_div: 16,
            lat_fp_sqrt: 30,
            lat_agu: 1,
        }
    }

    /// A small configuration for fast unit tests (narrow queues so that
    /// structural hazards are easy to provoke).
    pub fn tiny() -> Self {
        PipelineConfig {
            decode_width: 2,
            issue_width_int: 2,
            issue_width_fp: 1,
            issue_width_mem: 1,
            retire_width: 4,
            fetch_queue: 4,
            rob_size: 16,
            iq_int: 4,
            iq_fp: 4,
            lsq_size: 8,
            phys_int: 48,
            phys_fp: 48,
            ..PipelineConfig::alpha21264()
        }
    }

    /// Execution latency of an op class, in executing-domain cycles.
    pub fn latency(&self, op: OpClass) -> u64 {
        match op {
            OpClass::IntAlu | OpClass::Branch => self.lat_int_alu,
            OpClass::IntMul => self.lat_int_mul,
            OpClass::IntDiv => self.lat_int_div,
            OpClass::FpAdd => self.lat_fp_add,
            OpClass::FpMul => self.lat_fp_mul,
            OpClass::FpDiv => self.lat_fp_div,
            OpClass::FpSqrt => self.lat_fp_sqrt,
            // Memory-op latency is determined by the cache hierarchy.
            OpClass::Load | OpClass::Store => self.l1_latency,
        }
    }

    /// Whether an op class occupies its functional unit for its entire
    /// latency (unpipelined units).
    pub fn unpipelined(&self, op: OpClass) -> bool {
        matches!(op, OpClass::IntDiv | OpClass::FpDiv | OpClass::FpSqrt)
    }

    /// Validates structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.decode_width == 0 || self.retire_width == 0 {
            return Err("widths must be positive".into());
        }
        if self.rob_size == 0 || self.iq_int == 0 || self.iq_fp == 0 || self.lsq_size == 0 {
            return Err("queue sizes must be positive".into());
        }
        if self.phys_int <= 32 || self.phys_fp <= 32 {
            return Err("need more physical than architectural registers".into());
        }
        if self.rob_size < self.decode_width {
            return Err("ROB must hold at least one decode group".into());
        }
        Ok(())
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig::alpha21264()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_values() {
        let c = PipelineConfig::alpha21264();
        assert_eq!(c.decode_width, 4);
        assert_eq!(c.issue_width_int + c.issue_width_fp, 6);
        assert_eq!(c.retire_width, 11);
        assert_eq!(c.rob_size, 80);
        assert_eq!(c.iq_int, 20);
        assert_eq!(c.iq_fp, 15);
        assert_eq!(c.lsq_size, 64);
        assert_eq!(c.phys_int, 72);
        assert_eq!(c.phys_fp, 72);
        assert_eq!(c.mispredict_penalty, 7);
        assert_eq!(c.l1_latency, 2);
        assert_eq!(c.l2_latency, 12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn latency_table() {
        let c = PipelineConfig::alpha21264();
        assert_eq!(c.latency(OpClass::IntAlu), 1);
        assert_eq!(c.latency(OpClass::FpAdd), 4);
        assert!(c.unpipelined(OpClass::IntDiv));
        assert!(!c.unpipelined(OpClass::IntMul));
    }

    #[test]
    fn tiny_config_is_valid() {
        assert!(PipelineConfig::tiny().validate().is_ok());
    }

    #[test]
    fn validation_rejects_too_few_phys_regs() {
        let mut c = PipelineConfig::alpha21264();
        c.phys_int = 32;
        assert!(c.validate().is_err());
    }
}
