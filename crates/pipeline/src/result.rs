//! Outputs of one simulation run.

use serde::{Deserialize, Serialize};

use mcd_time::Femtos;
use mcd_uarch::CacheStats;

use crate::domains::DomainId;
use crate::events::InstrTrace;
use crate::stats::ActivityLedger;

/// Everything the power model and the experiment driver need from a run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// Committed instruction count.
    pub committed: u64,
    /// Commit time of the last instruction (the run's execution time).
    pub total_time: Femtos,
    /// Clock cycles produced per domain.
    pub domain_cycles: [u64; DomainId::COUNT],
    /// Per-domain Σ V² over cycles (volts²·cycles), for clock-tree energy.
    pub domain_v2_cycles: [f64; DomainId::COUNT],
    /// Per-domain time spent idle in PLL re-lock windows.
    pub domain_idle: [Femtos; DomainId::COUNT],
    /// Per-domain DVFS transitions actually performed.
    pub domain_transitions: [u64; DomainId::COUNT],
    /// Mean frequency per domain over the run, in hertz.
    pub avg_frequency_hz: [f64; DomainId::COUNT],
    /// Voltage-weighted structure accesses.
    pub ledger: ActivityLedger,
    /// L1 instruction-cache statistics.
    pub l1i: CacheStats,
    /// L1 data-cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Branch direction lookups.
    pub branch_lookups: u64,
    /// Branch direction mispredictions.
    pub branch_mispredicts: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub lsq_forwards: u64,
    /// Per-instruction event trace, when requested.
    pub trace: Option<Vec<InstrTrace>>,
}

impl RunResult {
    /// Committed instructions per front-end cycle.
    pub fn ipc(&self) -> f64 {
        let fe = self.domain_cycles[DomainId::FrontEnd.index()];
        if fe == 0 {
            0.0
        } else {
            self.committed as f64 / fe as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.branch_lookups == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branch_lookups as f64
        }
    }

    /// Execution-time ratio of this run versus a reference (> 1 = slower).
    pub fn slowdown_vs(&self, reference: &RunResult) -> f64 {
        self.total_time.as_femtos() as f64 / reference.total_time.as_femtos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> RunResult {
        RunResult {
            committed: 100,
            total_time: Femtos::from_nanos(100),
            domain_cycles: [100, 90, 10, 50],
            domain_v2_cycles: [144.0, 129.6, 14.4, 72.0],
            domain_idle: [Femtos::ZERO; 4],
            domain_transitions: [0; 4],
            avg_frequency_hz: [1e9; 4],
            ledger: ActivityLedger::new(),
            l1i: CacheStats::default(),
            l1d: CacheStats::default(),
            l2: CacheStats::default(),
            branch_lookups: 20,
            branch_mispredicts: 2,
            lsq_forwards: 0,
            trace: None,
        }
    }

    #[test]
    fn derived_rates() {
        let r = blank();
        assert!((r.ipc() - 1.0).abs() < 1e-12);
        assert!((r.mispredict_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn slowdown_ratio() {
        let a = blank();
        let mut b = blank();
        b.total_time = Femtos::from_nanos(110);
        assert!((b.slowdown_vs(&a) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_do_not_divide_by_zero() {
        let mut r = blank();
        r.domain_cycles = [0; 4];
        r.branch_lookups = 0;
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.mispredict_rate(), 0.0);
    }
}
