//! Indexed earliest-edge scheduling for the run loop.
//!
//! The run loop repeatedly asks "which clock has the earliest pending
//! edge?". With at most [`DomainId::COUNT`] clocks a heap is overkill; what
//! matters is that the answer is maintained incrementally instead of being
//! recomputed with an iterator chain (enumerate + `min_by_key`) on every
//! edge, and that the fast-forward path can ask the complementary question
//! "what is the earliest edge *excluding* this clock?" without re-scanning.
//!
//! Tie-breaking is part of the simulator's determinism contract: like
//! `Iterator::min_by_key`, the *lowest-indexed* clock wins among equal edge
//! times, so results stay byte-identical with the scan it replaces.

use mcd_time::Femtos;

use crate::domains::DomainId;

/// Earliest-pending-edge index over up to [`DomainId::COUNT`] clocks.
#[derive(Debug, Clone)]
pub(crate) struct EdgeScheduler {
    times: [Femtos; DomainId::COUNT],
    n: usize,
    min_idx: usize,
}

impl EdgeScheduler {
    /// Builds a scheduler for `n` clocks with all edges pending "never".
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= DomainId::COUNT`.
    pub fn new(n: usize) -> Self {
        assert!(
            (1..=DomainId::COUNT).contains(&n),
            "clock count out of range: {n}"
        );
        EdgeScheduler {
            times: [Femtos::MAX; DomainId::COUNT],
            n,
            min_idx: 0,
        }
    }

    /// The pending edge time of clock `i`.
    #[inline]
    pub fn time(&self, i: usize) -> Femtos {
        self.times[i]
    }

    /// Records clock `i`'s next pending edge, maintaining the minimum.
    #[inline]
    pub fn set(&mut self, i: usize, t: Femtos) {
        debug_assert!(i < self.n);
        self.times[i] = t;
        if i == self.min_idx {
            // The current winner moved (later); rescan all n slots.
            self.recompute();
        } else if t < self.times[self.min_idx]
            || (t == self.times[self.min_idx] && i < self.min_idx)
        {
            self.min_idx = i;
        }
    }

    /// Index of the clock with the earliest pending edge (lowest index wins
    /// ties).
    #[inline]
    pub fn earliest(&self) -> usize {
        self.min_idx
    }

    /// Earliest pending edge among clocks other than `excl`, as
    /// `(index, time)`. With a single clock there is no "other", so the
    /// result is `(excl, Femtos::MAX)` — callers must not fast-forward then.
    pub fn earliest_excluding(&self, excl: usize) -> (usize, Femtos) {
        let mut best = (excl, Femtos::MAX);
        for i in 0..self.n {
            if i != excl && self.times[i] < best.1 {
                best = (i, self.times[i]);
            }
        }
        best
    }

    fn recompute(&mut self) {
        let mut best = 0;
        for i in 1..self.n {
            if self.times[i] < self.times[best] {
                best = i;
            }
        }
        self.min_idx = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(v: u64) -> Femtos {
        Femtos::from_femtos(v)
    }

    /// Reference semantics: the scan the scheduler replaces.
    fn naive_min(times: &[Femtos]) -> usize {
        times
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .expect("non-empty")
            .0
    }

    #[test]
    fn tracks_minimum_like_the_scan_it_replaces() {
        let mut sched = EdgeScheduler::new(4);
        let mut shadow = [fs(3), fs(1), fs(4), fs(1)];
        for (i, t) in shadow.iter().enumerate() {
            sched.set(i, *t);
        }
        // A deterministic pseudo-random update sequence, advancing the
        // current minimum each step exactly like the run loop does.
        let mut x: u64 = 0x9e37_79b9;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let i = sched.earliest();
            assert_eq!(i, naive_min(&shadow), "min mismatch");
            let t = shadow[i] + fs(1 + (x >> 56));
            sched.set(i, t);
            shadow[i] = t;
        }
    }

    #[test]
    fn ties_break_to_the_lowest_index() {
        let mut sched = EdgeScheduler::new(4);
        for i in 0..4 {
            sched.set(i, fs(100));
        }
        assert_eq!(sched.earliest(), 0);
        sched.set(0, fs(200));
        assert_eq!(sched.earliest(), 1);
        // Setting a higher index to the same value must not steal the win.
        sched.set(3, fs(100));
        assert_eq!(sched.earliest(), 1);
        // But a lower index at the same value does.
        sched.set(0, fs(100));
        assert_eq!(sched.earliest(), 0);
    }

    #[test]
    fn excluding_finds_the_runner_up() {
        let mut sched = EdgeScheduler::new(4);
        sched.set(0, fs(50));
        sched.set(1, fs(10));
        sched.set(2, fs(30));
        sched.set(3, fs(20));
        assert_eq!(sched.earliest(), 1);
        assert_eq!(sched.earliest_excluding(1), (3, fs(20)));
        assert_eq!(sched.earliest_excluding(3), (1, fs(10)));
    }

    #[test]
    fn single_clock_has_no_runner_up() {
        let mut sched = EdgeScheduler::new(1);
        sched.set(0, fs(5));
        assert_eq!(sched.earliest(), 0);
        assert_eq!(sched.earliest_excluding(0), (0, Femtos::MAX));
    }
}
