//! Cycle-level simulator of a four-clock-domain out-of-order processor.
//!
//! This crate is the timing heart of the MCD-DVFS reproduction: an Alpha
//! 21264-like dynamic superscalar (Table 1 of the paper) whose front-end,
//! integer, floating-point and load/store sections each run from an
//! independent, jittered, optionally DVFS-scaled clock. Values crossing a
//! domain boundary pay the synchronization cost of §2.2.
//!
//! The main entry point is [`simulate`]; lower-level control is available
//! through [`Pipeline`].
//!
//! ```
//! use mcd_pipeline::{simulate, MachineConfig};
//! use mcd_workload::suites;
//!
//! let profile = suites::by_name("adpcm").expect("known benchmark");
//! let baseline = simulate(&MachineConfig::baseline(1), &profile, 1_000);
//! let mcd = simulate(&MachineConfig::baseline_mcd(1), &profile, 1_000);
//! // Four domains cost some performance relative to a single clock.
//! assert!(mcd.total_time >= baseline.total_time);
//! ```

pub mod config;
pub mod core;
pub mod domains;
pub mod driver;
pub mod events;
pub mod governor;
pub mod machine;
pub mod result;
pub(crate) mod sched;
pub mod schedule;
pub mod stats;
pub(crate) mod warm;

pub use config::PipelineConfig;
#[cfg(feature = "invariants")]
pub use core::invariants::{
    ClockStats, InvariantChecker, InvariantKind, InvariantReport, InvariantViolation,
};
pub use core::Pipeline;
pub use domains::DomainId;
pub use driver::{
    simulate, simulate_governed, simulate_governed_traced, simulate_reference,
    simulate_reference_governed, simulate_traced,
};
pub use events::{EventKind, EventSpan, InstrTrace};
pub use governor::{
    AttackDecay, ControlSample, Governor, NoGovernor, PolicySpec, QueuePi, POLICY_IDS,
};
pub use machine::{ClockingMode, MachineConfig};
pub use result::RunResult;
pub use schedule::{FrequencySchedule, ScheduleEntry};
pub use stats::{ActivityLedger, Unit};

// Re-exported so traced runs can be driven without naming mcd-trace
// directly (the trait and record types are defined there).
pub use mcd_trace::{RunTrace, StallCause, TraceConfig, TraceRecorder, TraceSink};
