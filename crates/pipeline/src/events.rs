//! Per-instruction event traces for the off-line analysis tool.
//!
//! §3.2: "During this initial run we collect a trace of all primitive events
//! (temporally contiguous operations performed on behalf of a single
//! instruction by hardware in a single clock domain), and of the functional
//! and data dependences among these events. For example, a memory
//! instruction is broken down into five events: fetch, dispatch, address
//! calculation, memory access, and commit."
//!
//! The trace records, per committed instruction, the time window of each
//! primitive event plus the producer instructions of its register sources;
//! the off-line tool reconstructs functional dependences (queue capacities,
//! in-order constraints) from the machine configuration.

use serde::{Deserialize, Serialize};

use mcd_time::Femtos;
use mcd_workload::OpClass;

use crate::domains::DomainId;

/// The primitive event kinds of §3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// Instruction fetch (front end).
    Fetch,
    /// Rename/dispatch (front end).
    Dispatch,
    /// Effective-address calculation (integer domain; memory ops only).
    AddrCalc,
    /// Cache/memory access (load/store domain; memory ops only).
    MemAccess,
    /// Functional-unit execution (integer or FP domain; non-memory ops).
    Execute,
    /// In-order commit (front end).
    Commit,
}

impl EventKind {
    /// All kinds in pipeline order.
    pub const ALL: [EventKind; 6] = [
        EventKind::Fetch,
        EventKind::Dispatch,
        EventKind::AddrCalc,
        EventKind::MemAccess,
        EventKind::Execute,
        EventKind::Commit,
    ];
}

/// A time window of one primitive event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSpan {
    /// Start of the event.
    pub start: Femtos,
    /// End of the event (`end >= start`).
    pub end: Femtos,
}

impl EventSpan {
    /// Creates a span.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn new(start: Femtos, end: Femtos) -> Self {
        assert!(end >= start, "event ends before it starts");
        EventSpan { start, end }
    }

    /// Duration of the event.
    pub fn duration(&self) -> Femtos {
        self.end - self.start
    }
}

/// The complete event record of one committed instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrTrace {
    /// Commit-order sequence number (also dispatch order — the simulator is
    /// trace-driven, so the two coincide).
    pub seq: u64,
    /// Operation class.
    pub op: OpClass,
    /// Domain where the execute / memory event ran.
    pub exec_domain: DomainId,
    /// Fetch window.
    pub fetch: EventSpan,
    /// Dispatch window.
    pub dispatch: EventSpan,
    /// Address-calculation window (memory ops).
    pub addr_calc: Option<EventSpan>,
    /// Memory-access window (memory ops).
    pub mem_access: Option<EventSpan>,
    /// Execute window (non-memory ops).
    pub execute: Option<EventSpan>,
    /// Commit instant.
    pub commit: Femtos,
    /// Sequence numbers of the instructions that produced each register
    /// source operand (`None` for operands carried from before the window or
    /// absent operands).
    pub src_producers: [Option<u64>; 2],
    /// Whether the access missed in L1 (memory ops).
    pub l1_miss: bool,
    /// Whether the access also missed in L2.
    pub l2_miss: bool,
    /// Whether a branch was mispredicted.
    pub mispredicted: bool,
}

impl InstrTrace {
    /// The span of a given event kind, if the instruction has it.
    pub fn span(&self, kind: EventKind) -> Option<EventSpan> {
        match kind {
            EventKind::Fetch => Some(self.fetch),
            EventKind::Dispatch => Some(self.dispatch),
            EventKind::AddrCalc => self.addr_calc,
            EventKind::MemAccess => self.mem_access,
            EventKind::Execute => self.execute,
            EventKind::Commit => Some(EventSpan {
                start: self.commit,
                end: self.commit,
            }),
        }
    }

    /// Completion time of the instruction's last pre-commit event.
    pub fn ready_time(&self) -> Femtos {
        let mut t = self.dispatch.end;
        for span in [self.addr_calc, self.mem_access, self.execute]
            .into_iter()
            .flatten()
        {
            t = t.max(span.end);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(a: u64, b: u64) -> EventSpan {
        EventSpan::new(Femtos::from_nanos(a), Femtos::from_nanos(b))
    }

    fn mem_trace() -> InstrTrace {
        InstrTrace {
            seq: 7,
            op: OpClass::Load,
            exec_domain: DomainId::LoadStore,
            fetch: span(0, 1),
            dispatch: span(1, 2),
            addr_calc: Some(span(3, 4)),
            mem_access: Some(span(5, 7)),
            execute: None,
            commit: Femtos::from_nanos(9),
            src_producers: [Some(3), None],
            l1_miss: true,
            l2_miss: false,
            mispredicted: false,
        }
    }

    #[test]
    fn span_accessors() {
        let t = mem_trace();
        assert_eq!(t.span(EventKind::Fetch), Some(span(0, 1)));
        assert_eq!(t.span(EventKind::AddrCalc), Some(span(3, 4)));
        assert_eq!(t.span(EventKind::Execute), None);
        assert_eq!(
            t.span(EventKind::Commit).expect("commit exists").start,
            Femtos::from_nanos(9)
        );
    }

    #[test]
    fn ready_time_is_last_event_end() {
        assert_eq!(mem_trace().ready_time(), Femtos::from_nanos(7));
    }

    #[test]
    fn duration() {
        assert_eq!(span(5, 7).duration(), Femtos::from_nanos(2));
    }

    #[test]
    #[should_panic(expected = "event ends before it starts")]
    fn inverted_span_rejected() {
        let _ = EventSpan::new(Femtos::from_nanos(2), Femtos::from_nanos(1));
    }
}
