//! Runtime invariant checking for the optimized run loop (feature
//! `invariants`).
//!
//! An armed [`InvariantChecker`] audits the engine's internal contracts
//! *while it runs*, through the same observer pattern as the trace sink:
//! every hook site in the hot loop is a pure reader behind an `Option`
//! check, and with the feature disabled the field and all hooks compile
//! out entirely — the golden byte-identity test proves the default build
//! unchanged.
//!
//! Checked invariants:
//!
//! - **Clock monotonicity** — every clock's pending-edge time strictly
//!   increases edge over edge.
//! - **Queue occupancy** — fetch queue, both issue queues, LSQ and ROB
//!   never exceed their configured capacities.
//! - **Synchronization-window matrix** — the incrementally maintained §2.2
//!   window cache always equals a wholesale recomputation from the current
//!   periods (zero diagonal included).
//! - **Operating-point range** — cached per-clock frequency and voltage
//!   stay inside the machine's VF-table clamp region.
//! - **On-grid requests** — governor frequency requests land on the
//!   machine's quantized frequency grid (static-schedule entries are
//!   exempt: the golden schedules deliberately use off-grid points).
//! - **Jitter breach rate** — the fraction of steady-state edges whose
//!   interval deviates from the nominal period by more than the
//!   synchronization window `T_s`. Clean paper-parameter runs sit well
//!   under 1 %; a clock whose jitter defeats the §2.2 window (the
//!   `mcd-time` chaos models) blows past the 5 % bound. This is a *rate*
//!   bound, not a per-edge bound, because the paper's own jitter clamp
//!   (±0.45 T) legitimately exceeds the 0.30 T window on a small tail of
//!   edges.

use mcd_time::{Femtos, Frequency, FrequencyGrid, SyncParams, VfTable};
use serde::{Deserialize, Serialize};

use crate::domains::DomainId;

use super::Pipeline;

/// Which invariant a [`InvariantViolation`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InvariantKind {
    /// A clock's pending-edge time failed to strictly increase.
    ClockMonotonicity,
    /// A pipeline queue exceeded its configured capacity.
    QueueOverflow,
    /// The incremental sync-window cache diverged from recomputation.
    SyncWindowMatrix,
    /// A cached frequency or voltage left the VF clamp region.
    OperatingPointOutOfRange,
    /// A governor requested a frequency off the quantized grid.
    OffGridFrequency,
    /// A clock's jitter breached the `T_s` window too often.
    JitterBreachRate,
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvariantViolation {
    /// Which invariant failed.
    pub kind: InvariantKind,
    /// Physical clock (or domain) index the violation is attributed to.
    pub clock: usize,
    /// Simulation time of the observation.
    pub at: Femtos,
    /// Human-readable specifics.
    pub detail: String,
}

/// Per-clock edge statistics feeding the jitter breach-rate bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockStats {
    /// Edges observed.
    pub edges: u64,
    /// Steady-state edges qualifying for the jitter bound (frequency
    /// unchanged, interval under 2× the period — i.e. not a relock gap).
    pub qualifying: u64,
    /// Qualifying edges whose interval missed the period by more than
    /// `T_s`.
    pub breaches: u64,
}

impl ClockStats {
    /// Breach fraction over qualifying edges (0 when none qualified).
    pub fn breach_rate(&self) -> f64 {
        if self.qualifying == 0 {
            return 0.0;
        }
        self.breaches as f64 / self.qualifying as f64
    }
}

/// Everything an invariant-checked run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvariantReport {
    /// Total edges audited across all clocks.
    pub checked_edges: u64,
    /// Per-clock edge statistics.
    pub clocks: Vec<ClockStats>,
    /// Recorded violations (capped; see `truncated`).
    pub violations: Vec<InvariantViolation>,
    /// Violations dropped after the recording cap was hit.
    pub truncated: u64,
}

impl InvariantReport {
    /// Whether the run upheld every invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.truncated == 0
    }

    /// One-line summary for logs and failure messages.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("clean ({} edges audited)", self.checked_edges)
        } else {
            let first = &self.violations[0];
            format!(
                "{} violation(s) over {} edges; first: {:?} on clock {} at {} fs: {}",
                self.violations.len() as u64 + self.truncated,
                self.checked_edges,
                first.kind,
                first.clock,
                first.at.as_femtos(),
                first.detail
            )
        }
    }
}

/// Recorded violations are capped so a systematically broken run cannot
/// accumulate an unbounded report; the overflow is counted in
/// [`InvariantReport::truncated`].
const MAX_VIOLATIONS: usize = 32;

/// The runtime invariant checker. Arm one with
/// [`Pipeline::with_invariants`](super::Pipeline::with_invariants) (or let
/// [`run_checked`](super::Pipeline::run_checked) build a default) and read
/// the [`InvariantReport`] back after the run.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    vf: VfTable,
    sync: SyncParams,
    /// Grid governor requests must land on; `None` disables the check.
    grid: Option<FrequencyGrid>,
    /// Jitter breach-rate bound over qualifying edges.
    breach_rate_limit: f64,
    /// Minimum qualifying edges before the rate bound is evaluated.
    min_qualifying: u64,
    /// Last pending-edge time per clock.
    last_edge: Vec<Femtos>,
    /// Frequency at the previous edge per clock (None before the first).
    last_freq: Vec<Option<Frequency>>,
    stats: Vec<ClockStats>,
    checked_edges: u64,
    violations: Vec<InvariantViolation>,
    truncated: u64,
}

impl InvariantChecker {
    /// Builds a checker for a machine using `vf` and `sync`, with the
    /// default 32-step grid over `vf` and a 5 % jitter breach-rate bound.
    pub fn new(vf: VfTable, sync: SyncParams) -> Self {
        InvariantChecker {
            grid: Some(FrequencyGrid::new(vf, 32)),
            vf,
            sync,
            breach_rate_limit: 0.05,
            min_qualifying: 200,
            last_edge: Vec::new(),
            last_freq: Vec::new(),
            stats: Vec::new(),
            checked_edges: 0,
            violations: Vec::new(),
            truncated: 0,
        }
    }

    /// Replaces (or disables, with `None`) the on-grid request check.
    pub fn with_grid(mut self, grid: Option<FrequencyGrid>) -> Self {
        self.grid = grid;
        self
    }

    /// Overrides the jitter breach-rate bound.
    pub fn with_breach_rate_limit(mut self, limit: f64) -> Self {
        self.breach_rate_limit = limit;
        self
    }

    /// Sizes the per-clock state vectors; called when the checker is armed.
    pub(crate) fn sized_for(mut self, n_clocks: usize) -> Self {
        self.last_edge = vec![Femtos::ZERO; n_clocks];
        self.last_freq = vec![None; n_clocks];
        self.stats = vec![ClockStats::default(); n_clocks];
        self
    }

    fn record(&mut self, kind: InvariantKind, clock: usize, at: Femtos, detail: String) {
        if self.violations.len() >= MAX_VIOLATIONS {
            self.truncated += 1;
            return;
        }
        self.violations.push(InvariantViolation {
            kind,
            clock,
            at,
            detail,
        });
    }

    /// Audits clock `ci` right after it produced an edge (its pending-edge
    /// time, cached operating point and the sync-window cache are fresh).
    fn observe_edge(&mut self, p: &Pipeline, ci: usize) {
        self.checked_edges += 1;
        let t = p.sched.time(ci);
        let first = self.stats[ci].edges == 0;
        self.stats[ci].edges += 1;
        let prev = self.last_edge[ci];
        let prev_freq = self.last_freq[ci];
        self.last_edge[ci] = t;
        let freq = p.clock_freq[ci];
        self.last_freq[ci] = Some(freq);

        // Clock monotonicity: edges strictly advance.
        if !first && t <= prev {
            self.record(
                InvariantKind::ClockMonotonicity,
                ci,
                t,
                format!(
                    "edge at {} fs does not advance past {} fs",
                    t.as_femtos(),
                    prev.as_femtos()
                ),
            );
        }

        // Operating point inside the VF clamp region.
        let volt = p.clock_volt[ci];
        if freq < self.vf.f_min() || freq > self.vf.f_max() {
            self.record(
                InvariantKind::OperatingPointOutOfRange,
                ci,
                t,
                format!(
                    "frequency {} Hz outside [{}, {}] Hz",
                    freq.as_hz(),
                    self.vf.f_min().as_hz(),
                    self.vf.f_max().as_hz()
                ),
            );
        }
        let (v_lo, v_hi) = (self.vf.v_min().as_volts(), self.vf.v_max().as_volts());
        if volt < v_lo - 1e-9 || volt > v_hi + 1e-9 {
            self.record(
                InvariantKind::OperatingPointOutOfRange,
                ci,
                t,
                format!("voltage {volt} V outside [{v_lo}, {v_hi}] V"),
            );
        }

        // Jitter breach statistics over steady-state edges.
        if !first && prev_freq == Some(freq) {
            let period = freq.period();
            let interval = t - prev;
            if interval < period * 2 {
                self.stats[ci].qualifying += 1;
                let window = self.sync.window(period, period);
                let deviation = if interval > period {
                    interval - period
                } else {
                    period - interval
                };
                if deviation > window {
                    self.stats[ci].breaches += 1;
                }
            }
        }

        // Sync-window cache vs. wholesale recomputation.
        for src in 0..DomainId::COUNT {
            for dst in 0..DomainId::COUNT {
                let expected = if src == dst {
                    Femtos::ZERO
                } else {
                    self.sync.window(p.periods[src], p.periods[dst])
                };
                let cached = p.sync_win.window(src, dst);
                if cached != expected {
                    self.record(
                        InvariantKind::SyncWindowMatrix,
                        ci,
                        t,
                        format!(
                            "window[{src}][{dst}] cached {} fs, recomputed {} fs",
                            cached.as_femtos(),
                            expected.as_femtos()
                        ),
                    );
                }
            }
        }
    }

    /// Audits queue occupancies right after the tick machinery ran.
    fn observe_tick(&mut self, p: &Pipeline, now: Femtos) {
        let checks: [(usize, &str, usize, usize); 5] = [
            (
                DomainId::FrontEnd.index(),
                "fetch queue",
                p.fetchq.len(),
                p.fetchq.capacity(),
            ),
            (
                DomainId::Integer.index(),
                "integer IQ",
                p.iq_int.len(),
                p.iq_int.capacity(),
            ),
            (
                DomainId::FloatingPoint.index(),
                "FP IQ",
                p.iq_fp.len(),
                p.iq_fp.capacity(),
            ),
            (
                DomainId::LoadStore.index(),
                "LSQ",
                p.lsq.len(),
                p.lsq.capacity(),
            ),
            (
                DomainId::FrontEnd.index(),
                "ROB",
                p.rob.len(),
                p.pcfg.rob_size,
            ),
        ];
        for (clock, name, len, cap) in checks {
            if len > cap {
                self.record(
                    InvariantKind::QueueOverflow,
                    clock,
                    now,
                    format!("{name} holds {len} entries over capacity {cap}"),
                );
            }
        }
    }

    /// Audits one governor frequency request.
    fn observe_freq_request(&mut self, now: Femtos, d: DomainId, f: Frequency) {
        let Some(grid) = &self.grid else { return };
        if !grid.points().iter().any(|p| p.frequency == f) {
            self.record(
                InvariantKind::OffGridFrequency,
                d.index(),
                now,
                format!("governor requested {} Hz, not a grid point", f.as_hz()),
            );
        }
    }

    /// Closes the audit: evaluates the per-clock jitter breach-rate bound
    /// and yields the report.
    pub(crate) fn finish(mut self, p: &Pipeline) -> InvariantReport {
        for ci in 0..self.stats.len() {
            let s = self.stats[ci];
            if s.qualifying >= self.min_qualifying && s.breach_rate() > self.breach_rate_limit {
                self.record(
                    InvariantKind::JitterBreachRate,
                    ci,
                    p.last_commit_time,
                    format!(
                        "{} of {} steady-state edges ({:.1} %) breached T_s, bound {:.1} %",
                        s.breaches,
                        s.qualifying,
                        100.0 * s.breach_rate(),
                        100.0 * self.breach_rate_limit
                    ),
                );
            }
        }
        InvariantReport {
            checked_edges: self.checked_edges,
            clocks: self.stats,
            violations: self.violations,
            truncated: self.truncated,
        }
    }
}

impl Pipeline {
    /// Hook: a clock just produced an edge (scheduler and operating-point
    /// caches are fresh). Take/put-back keeps the borrow checker happy
    /// while the checker reads the pipeline.
    pub(crate) fn inv_after_edge(&mut self, ci: usize) {
        if let Some(mut inv) = self.inv.take() {
            inv.observe_edge(self, ci);
            self.inv = Some(inv);
        }
    }

    /// Hook: the tick machinery just ran at `now`.
    pub(crate) fn inv_after_tick(&mut self, now: Femtos) {
        if let Some(mut inv) = self.inv.take() {
            inv.observe_tick(self, now);
            self.inv = Some(inv);
        }
    }

    /// Hook: the governor just requested frequency `f` for domain `d`.
    pub(crate) fn inv_freq_request(&mut self, now: Femtos, d: DomainId, f: Frequency) {
        if let Some(mut inv) = self.inv.take() {
            inv.observe_freq_request(now, d, f);
            self.inv = Some(inv);
        }
    }
}
