//! The deliberately-naive reference interpreter.
//!
//! This is the differential oracle's "obviously correct" half: a
//! straight-line event loop over the same tick machinery as the optimized
//! engine, with every engineering shortcut removed:
//!
//! - no [`EdgeScheduler`](crate::sched::EdgeScheduler) — the earliest
//!   pending edge is found by a linear scan with the same lowest-index
//!   tie-break;
//! - no idle-domain fast-forward — every single edge runs the full
//!   selection and tick path;
//! - no process-wide warm-state cache — the warm-up stream is rebuilt from
//!   scratch for every run;
//! - no incremental operating-point bookkeeping — cached frequencies,
//!   voltages, periods and the §2.2 synchronization-window matrix are
//!   recomputed wholesale from the clocks after every edge.
//!
//! The claim under test is that all of those shortcuts are results-neutral:
//! for any configuration, [`Pipeline::run_reference`] and [`Pipeline::run`]
//! produce byte-identical [`RunResult`]s. `mcd-check` drives that
//! comparison across a configuration lattice and a seeded fuzzer.
//!
//! Tracing is unsupported here (the optimized loop already proves
//! trace-neutrality against itself); attaching a sink before a reference
//! run panics in debug builds and is ignored in release builds. Under the
//! `invariants` feature an armed checker is likewise ignored — invariants
//! are checked on the *optimized* loop, which is the one with shortcuts to
//! audit.

use mcd_time::{Femtos, SyncWindowCache};

use crate::domains::DomainId;
use crate::governor::{Governor, NoGovernor};
use crate::result::RunResult;

use super::{Pipeline, MAX_EDGES_PER_INSTRUCTION};

impl Pipeline {
    /// Runs the naive reference interpreter until `target` instructions
    /// commit; consumes the pipeline. See `core/reference.rs`'s module
    /// docs for what "reference" means.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (internal invariant violation).
    pub fn run_reference(self, target: u64) -> RunResult {
        self.run_reference_impl::<NoGovernor>(target, None)
    }

    /// [`Pipeline::run_reference`] under an on-line DVFS governor; the
    /// reference counterpart of [`Pipeline::run_with_governor`].
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (internal invariant violation).
    pub fn run_reference_with_governor<G: Governor>(
        mut self,
        target: u64,
        mut governor: G,
    ) -> RunResult {
        self.control_next = governor.interval();
        self.run_reference_impl(target, Some(&mut governor))
    }

    /// The naive event loop. Mirrors [`Pipeline::run_impl`] decision for
    /// decision, minus every shortcut.
    fn run_reference_impl<G: Governor>(
        mut self,
        target: u64,
        mut governor: Option<&mut G>,
    ) -> RunResult {
        assert!(target > 0, "target instruction count must be positive");
        debug_assert!(
            self.tracer.is_none(),
            "the reference interpreter does not support trace sinks"
        );
        self.target = target;
        if self.cfg.warmup_instructions > 0 {
            // Same stream length as the optimized path, but built fresh —
            // the process-wide cache is one of the shortcuts under test.
            let n = self
                .cfg
                .warmup_instructions
                .max(self.gen.profile().cycle_length() + 10_000);
            let state = self.build_warm_state(n);
            self.l1i = state.l1i;
            self.l1d = state.l1d;
            self.l2 = state.l2;
            self.bpred = state.bpred;
        }
        let n_clocks = self.clocks.len();
        let mut pending: Vec<Femtos> = Vec::with_capacity(n_clocks);
        for i in 0..n_clocks {
            pending.push(self.clocks[i].next_edge());
        }
        self.refresh_operating_points();
        let mut edges: u64 = 0;
        let max_edges = target
            .saturating_mul(MAX_EDGES_PER_INSTRUCTION)
            .max(1_000_000);
        while self.committed < target {
            edges += 1;
            assert!(
                edges < max_edges,
                "pipeline deadlock: {} of {} committed after {} edges",
                self.committed,
                target,
                edges
            );
            // Earliest pending clock edge wins; strict `<` keeps the first
            // (lowest-indexed) clock on ties, matching the EdgeScheduler's
            // tie-break contract.
            let mut ci = 0;
            for (i, &t) in pending.iter().enumerate().skip(1) {
                if t < pending[ci] {
                    ci = i;
                }
            }
            let now = pending[ci];
            self.apply_schedule(now);
            if let Some(g) = governor.as_mut() {
                self.sample_utilization(ci, n_clocks);
                if now >= self.control_next {
                    self.control_decision(now, &mut **g);
                }
            }
            if n_clocks == 1 {
                // Single clock: all logical domains tick on the same edge.
                self.tick_commit_dispatch_fetch(now);
                self.tick_exec(DomainId::Integer, now);
                self.tick_exec(DomainId::FloatingPoint, now);
                self.tick_loadstore(now);
            } else {
                match DomainId::ALL[ci] {
                    DomainId::FrontEnd => self.tick_commit_dispatch_fetch(now),
                    DomainId::Integer => self.tick_exec(DomainId::Integer, now),
                    DomainId::FloatingPoint => self.tick_exec(DomainId::FloatingPoint, now),
                    DomainId::LoadStore => self.tick_loadstore(now),
                }
            }
            pending[ci] = self.clocks[ci].next_edge();
            self.refresh_operating_points();
        }
        self.into_result()
    }

    /// Recomputes every cached operating-point value wholesale from the
    /// clocks: per-clock frequency/voltage, per-domain period/voltage, and
    /// a freshly built synchronization-window matrix. The optimized loop
    /// maintains the same values incrementally in
    /// [`Pipeline::note_clock_advanced`]; this is the no-bookkeeping
    /// equivalent.
    fn refresh_operating_points(&mut self) {
        for (i, c) in self.clocks.iter().enumerate() {
            self.clock_freq[i] = c.frequency();
            self.clock_volt[i] = c.voltage().as_volts();
        }
        for d in 0..DomainId::COUNT {
            let ci = if self.single_clock { 0 } else { d };
            self.periods[d] = self.clocks[ci].period();
            self.volts[d] = self.clock_volt[ci];
        }
        self.sync_win = SyncWindowCache::new(self.cfg.sync, &self.periods);
    }
}
