//! On-line per-domain DVFS control — the paper's stated future work.
//!
//! §6: "Our current analysis uses an off-line algorithm … Future work will
//! involve developing effective on-line algorithms." The authors' follow-up
//! (Semeraro et al., MICRO 2002) controlled each domain from its issue-queue
//! utilization with an *attack/decay* rule; [`AttackDecay`] implements that
//! scheme against this simulator's machinery, and the [`Governor`] trait
//! lets users plug in their own policies.
//!
//! The pipeline samples per-domain utilization continuously and hands the
//! governor a [`ControlSample`] at the end of every control interval; the
//! governor returns frequency requests which the machine applies through
//! the normal DVFS transition model (ramps, re-locks and all).

use std::fmt;

use mcd_time::{Femtos, Frequency, FrequencyGrid};

use crate::domains::DomainId;

/// Sanitizes one utilization sample before a policy consumes it.
///
/// Occupancy is a fraction of capacity, so anything outside `[0, 1]` is a
/// measurement artifact, and a NaN would poison every decayed target it
/// touches. Infinities clamp to the nearest bound; NaN falls back to the
/// previous interval's value (no swing — the policy sees a stable queue).
fn sanitize_utilization(util: f64, prev: f64) -> f64 {
    if util.is_nan() {
        prev
    } else {
        util.clamp(0.0, 1.0)
    }
}

/// Utilization observed in one control interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSample {
    /// Interval start time.
    pub start: Femtos,
    /// Interval end time.
    pub end: Femtos,
    /// Mean occupancy of each domain's issue structure over the interval,
    /// as a fraction of capacity (integer IQ, FP IQ, LSQ; the front-end
    /// entry holds fetch-queue occupancy).
    pub queue_utilization: [f64; DomainId::COUNT],
    /// Operations issued in each domain during the interval.
    pub issued: [u64; DomainId::COUNT],
    /// Instructions committed during the interval.
    pub committed: u64,
}

/// A per-domain frequency decision: `None` leaves the domain alone.
pub type ControlDecision = [Option<Frequency>; DomainId::COUNT];

/// An on-line DVFS policy.
///
/// Implementations are called once per control interval with fresh
/// utilization statistics and may request new frequencies for any domain.
pub trait Governor {
    /// Decides frequency changes for the coming interval.
    fn decide(&mut self, sample: &ControlSample) -> ControlDecision;

    /// The control interval length.
    fn interval(&self) -> Femtos;
}

/// Boxed governors forward to their contents, so callers holding a
/// `Box<dyn Governor>` (or a boxed concrete policy) can hand it to
/// [`Pipeline::run_with_governor`] unchanged.
///
/// [`Pipeline::run_with_governor`]: crate::Pipeline::run_with_governor
impl<G: Governor + ?Sized> Governor for Box<G> {
    fn decide(&mut self, sample: &ControlSample) -> ControlDecision {
        (**self).decide(sample)
    }

    fn interval(&self) -> Femtos {
        (**self).interval()
    }
}

/// The governor of a run with no on-line control.
///
/// Exists so the run loop can be monomorphized over one `G: Governor` even
/// when no governor is installed; [`Pipeline::run`] instantiates the loop
/// with this type, and the `Option` wrapping it is always `None`, so
/// `decide` is statically unreachable.
///
/// [`Pipeline::run`]: crate::Pipeline::run
#[derive(Debug, Clone, Copy, Default)]
pub struct NoGovernor;

impl Governor for NoGovernor {
    fn decide(&mut self, _sample: &ControlSample) -> ControlDecision {
        unreachable!("NoGovernor is never polled")
    }

    fn interval(&self) -> Femtos {
        Femtos::MAX
    }
}

/// The attack/decay rule of the authors' follow-up work.
///
/// Per scaled domain and interval: if the queue utilization moved by more
/// than `deviation_threshold` since the previous interval, the frequency is
/// changed *aggressively* in the same direction (attack); otherwise it
/// decays gently downward, continually probing for energy savings. The
/// front end is never scaled, matching the paper.
///
/// # Example
///
/// ```
/// use mcd_pipeline::governor::{AttackDecay, ControlSample, Governor};
/// use mcd_time::Femtos;
///
/// let mut governor = AttackDecay::paper_like();
/// let sample = ControlSample {
///     start: Femtos::ZERO,
///     end: governor.interval(),
///     queue_utilization: [0.2, 0.9, 0.0, 0.4],
///     issued: [0, 4000, 0, 1500],
///     committed: 5_000,
/// };
/// let decision = governor.decide(&sample);
/// // The completely idle FP domain is sent straight to the 250 MHz floor;
/// // the near-saturated integer domain is already at 1 GHz and stays there.
/// assert!(decision[2].is_some());
/// assert!(decision[1].is_none());
/// ```
#[derive(Debug, Clone)]
pub struct AttackDecay {
    interval: Femtos,
    /// Utilization swing that triggers an attack.
    deviation_threshold: f64,
    /// Multiplicative attack step (e.g. 0.07 = 7 %).
    attack: f64,
    /// Multiplicative decay step applied when utilization is stable.
    decay: f64,
    /// Previous interval's utilization.
    prev_util: [f64; DomainId::COUNT],
    /// Current *continuous* frequency targets (tracked, since requests are
    /// asynchronous). The attack/decay law runs on these so that sub-step
    /// decays accumulate; only the emitted decisions are quantized.
    target_hz: [f64; DomainId::COUNT],
    /// The grid decisions are snapped to: every emitted frequency is one
    /// the hardware model can actually express.
    grid: FrequencyGrid,
    /// Last grid point requested per domain, so a target drifting within
    /// one grid step does not re-emit the same frequency.
    requested: [Frequency; DomainId::COUNT],
    f_min: f64,
    f_max: f64,
}

impl AttackDecay {
    /// Parameters in the spirit of the follow-up paper: 10 µs intervals,
    /// ±1.75 % utilization deviation threshold, 7 % attack, 0.5 % decay.
    pub fn paper_like() -> Self {
        AttackDecay::new(Femtos::from_micros(10), 0.0175, 0.07, 0.005)
    }

    /// Creates a governor with custom parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-finite or out of `(0, 1)` where a
    /// fraction is expected.
    pub fn new(interval: Femtos, deviation_threshold: f64, attack: f64, decay: f64) -> Self {
        assert!(interval > Femtos::ZERO, "control interval must be positive");
        for (name, v) in [
            ("deviation_threshold", deviation_threshold),
            ("attack", attack),
            ("decay", decay),
        ] {
            assert!(v.is_finite() && v > 0.0 && v < 1.0, "invalid {name}: {v}");
        }
        AttackDecay {
            interval,
            deviation_threshold,
            attack,
            decay,
            prev_util: [0.0; DomainId::COUNT],
            target_hz: [1e9; DomainId::COUNT],
            grid: FrequencyGrid::paper32(),
            requested: [Frequency::GHZ; DomainId::COUNT],
            f_min: 250e6,
            f_max: 1e9,
        }
    }
}

impl Governor for AttackDecay {
    fn decide(&mut self, sample: &ControlSample) -> ControlDecision {
        let mut decision: ControlDecision = [None; DomainId::COUNT];
        for d in &DomainId::ALL[1..] {
            let i = d.index();
            let util = sanitize_utilization(sample.queue_utilization[i], self.prev_util[i]);
            let delta = util - self.prev_util[i];
            self.prev_util[i] = util;
            let current = self.target_hz[i];
            let next = if sample.issued[i] == 0 && util < 1e-3 {
                // Completely idle domain: go straight to the floor.
                self.f_min
            } else if delta.abs() > self.deviation_threshold {
                // Attack in the direction utilization moved.
                if delta > 0.0 {
                    current * (1.0 + self.attack)
                } else {
                    current * (1.0 - self.attack)
                }
            } else if util > 0.85 {
                // Near-saturated queue: climb even without a swing.
                current * (1.0 + self.attack)
            } else {
                // Stable: decay gently, probing for savings.
                current * (1.0 - self.decay)
            };
            // Track the continuous target, but snap the emitted decision to
            // the 32-point grid: the DVFS models (step counts, voltage
            // lookups) are only defined on grid frequencies, and re-emitting
            // a request the hardware cannot distinguish from the current one
            // would charge phantom transitions.
            self.target_hz[i] = next.clamp(self.f_min, self.f_max);
            let snapped = self.grid.snap(self.target_hz[i]).frequency;
            if snapped != self.requested[i] {
                self.requested[i] = snapped;
                decision[i] = Some(snapped);
            }
        }
        decision
    }

    fn interval(&self) -> Femtos {
        self.interval
    }
}

/// A proportional–integral controller holding each queue at a setpoint.
///
/// Per scaled domain and interval: the error is the occupancy's distance
/// from `setpoint` (a fuller queue means the domain is falling behind and
/// should speed up); the frequency target moves multiplicatively by
/// `kp * error + ki * integral`, with the integral clamped so a long
/// saturation spell cannot wind up an unbounded correction. A completely
/// idle domain drops straight to the floor and its integral resets. Like
/// [`AttackDecay`], emitted decisions are snapped to the 32-point grid and
/// deduplicated, and the front end is never scaled.
#[derive(Debug, Clone)]
pub struct QueuePi {
    interval: Femtos,
    /// Target queue occupancy in `(0, 1)`.
    setpoint: f64,
    /// Proportional gain (per unit occupancy error, per interval).
    kp: f64,
    /// Integral gain.
    ki: f64,
    /// Accumulated error per domain, clamped to [`QueuePi::WINDUP_CAP`].
    integral: [f64; DomainId::COUNT],
    /// Previous interval's utilization (for NaN fallback only).
    prev_util: [f64; DomainId::COUNT],
    /// Continuous frequency targets; emitted decisions are quantized.
    target_hz: [f64; DomainId::COUNT],
    grid: FrequencyGrid,
    requested: [Frequency; DomainId::COUNT],
    f_min: f64,
    f_max: f64,
}

impl QueuePi {
    /// Anti-windup bound on the accumulated error.
    const WINDUP_CAP: f64 = 2.0;
    /// Largest per-interval multiplicative step, so one interval can never
    /// jump the target across the whole operating region.
    const MAX_STEP: f64 = 0.25;

    /// Default tuning: 10 µs intervals, 50 % occupancy setpoint, gains
    /// chosen so a saturated queue recovers to 1 GHz within a few dozen
    /// intervals without oscillating at the setpoint.
    pub fn default_tuning() -> Self {
        QueuePi::new(Femtos::from_micros(10), 0.5, 0.5, 0.05)
    }

    /// Creates a controller with custom tuning.
    ///
    /// # Panics
    ///
    /// Panics if the interval is zero, `setpoint` is outside `(0, 1)`,
    /// either gain is negative or non-finite, or both gains are zero.
    pub fn new(interval: Femtos, setpoint: f64, kp: f64, ki: f64) -> Self {
        assert!(interval > Femtos::ZERO, "control interval must be positive");
        assert!(
            setpoint.is_finite() && setpoint > 0.0 && setpoint < 1.0,
            "invalid setpoint: {setpoint}"
        );
        for (name, v) in [("kp", kp), ("ki", ki)] {
            assert!(v.is_finite() && v >= 0.0, "invalid {name}: {v}");
        }
        assert!(kp > 0.0 || ki > 0.0, "at least one gain must be positive");
        QueuePi {
            interval,
            setpoint,
            kp,
            ki,
            integral: [0.0; DomainId::COUNT],
            prev_util: [0.0; DomainId::COUNT],
            target_hz: [1e9; DomainId::COUNT],
            grid: FrequencyGrid::paper32(),
            requested: [Frequency::GHZ; DomainId::COUNT],
            f_min: 250e6,
            f_max: 1e9,
        }
    }
}

impl Governor for QueuePi {
    fn decide(&mut self, sample: &ControlSample) -> ControlDecision {
        let mut decision: ControlDecision = [None; DomainId::COUNT];
        for d in &DomainId::ALL[1..] {
            let i = d.index();
            let util = sanitize_utilization(sample.queue_utilization[i], self.prev_util[i]);
            self.prev_util[i] = util;
            if sample.issued[i] == 0 && util < 1e-3 {
                // Completely idle domain: floor it and forget the history,
                // so the next active phase starts from a neutral controller.
                self.integral[i] = 0.0;
                self.target_hz[i] = self.f_min;
            } else {
                let error = util - self.setpoint;
                self.integral[i] =
                    (self.integral[i] + error).clamp(-Self::WINDUP_CAP, Self::WINDUP_CAP);
                let control = (self.kp * error + self.ki * self.integral[i])
                    .clamp(-Self::MAX_STEP, Self::MAX_STEP);
                self.target_hz[i] =
                    (self.target_hz[i] * (1.0 + control)).clamp(self.f_min, self.f_max);
            }
            let snapped = self.grid.snap(self.target_hz[i]).frequency;
            if snapped != self.requested[i] {
                self.requested[i] = snapped;
                decision[i] = Some(snapped);
            }
        }
        decision
    }

    fn interval(&self) -> Femtos {
        self.interval
    }
}

/// Policy identifiers the registry can instantiate, in registry order.
pub const POLICY_IDS: &[&str] = &["attack-decay", "queue-pi"];

/// A declarative on-line policy: registry id plus explicit parameter
/// overrides, parsed from the `id[:key=value,…]` grammar used by cell
/// specs, the campaign CLI, and the check harness.
///
/// The spec is *canonical*: parameters are sorted by name and rejected on
/// duplicates, so two specs describing the same instantiation render (and
/// therefore hash, label, and cache) identically.
///
/// ```
/// use mcd_pipeline::governor::PolicySpec;
///
/// let p = PolicySpec::parse("attack-decay:decay=0.01,attack=0.1").unwrap();
/// assert_eq!(p.canonical(), "attack-decay:attack=0.1,decay=0.01");
/// let mut governor = p.build().unwrap();
/// assert!(governor.interval() > mcd_time::Femtos::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PolicySpec {
    /// Registry identifier (one of [`POLICY_IDS`]).
    pub id: String,
    /// Explicit parameter overrides, sorted by name. Values are kept as
    /// their canonical shortest-round-trip rendering so equality and
    /// ordering need no float comparisons.
    pub params: Vec<(String, String)>,
}

impl PolicySpec {
    /// Parses `id` or `id:key=value,key=value`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown id, malformed or
    /// duplicate parameter, or non-finite value.
    pub fn parse(spec: &str) -> Result<PolicySpec, String> {
        let (id, rest) = match spec.split_once(':') {
            Some((id, rest)) => (id, Some(rest)),
            None => (spec, None),
        };
        if !POLICY_IDS.contains(&id) {
            return Err(format!(
                "unknown policy {id:?}; known policies: {}",
                POLICY_IDS.join(", ")
            ));
        }
        let mut params: Vec<(String, String)> = Vec::new();
        if let Some(rest) = rest {
            for pair in rest.split(',') {
                let Some((key, value)) = pair.split_once('=') else {
                    return Err(format!("malformed parameter {pair:?} (want key=value)"));
                };
                let parsed: f64 = value
                    .parse()
                    .map_err(|_| format!("parameter {key}={value:?} is not a number"))?;
                if !parsed.is_finite() {
                    return Err(format!("parameter {key}={value} must be finite"));
                }
                if params.iter().any(|(k, _)| k == key) {
                    return Err(format!("duplicate parameter {key:?}"));
                }
                params.push((key.to_string(), format!("{parsed:?}")));
            }
        }
        params.sort();
        let spec = PolicySpec {
            id: id.to_string(),
            params,
        };
        spec.build()?; // Validate names and ranges eagerly.
        Ok(spec)
    }

    /// The canonical `id[:key=value,…]` rendering ([`PolicySpec::parse`] of
    /// it round-trips to `self`).
    pub fn canonical(&self) -> String {
        if self.params.is_empty() {
            return self.id.clone();
        }
        let params: Vec<String> = self
            .params
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        format!("{}:{}", self.id, params.join(","))
    }

    fn param(&self, key: &str, default: f64) -> f64 {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.parse().expect("canonical value round-trips"))
            .unwrap_or(default)
    }

    fn interval(&self) -> Result<Femtos, String> {
        let us = self.param("interval-us", 10.0);
        if !(us.is_finite() && us >= 1.0 && us.fract() == 0.0 && us <= 1e6) {
            return Err(format!(
                "interval-us={us} must be a whole number of microseconds in [1, 1e6]"
            ));
        }
        Ok(Femtos::from_micros(us as u64))
    }

    fn check_params(&self, known: &[&str]) -> Result<(), String> {
        for (key, _) in &self.params {
            if !known.contains(&key.as_str()) {
                return Err(format!(
                    "policy {:?} has no parameter {key:?}; known: {}",
                    self.id,
                    known.join(", ")
                ));
            }
        }
        Ok(())
    }

    /// Instantiates the governor this spec describes.
    ///
    /// # Errors
    ///
    /// Returns a description of the first unknown parameter name or
    /// out-of-range value.
    pub fn build(&self) -> Result<Box<dyn Governor>, String> {
        let fraction = |key: &str, default: f64| -> Result<f64, String> {
            let v = self.param(key, default);
            if v > 0.0 && v < 1.0 {
                Ok(v)
            } else {
                Err(format!("{key}={v} must lie in (0, 1)"))
            }
        };
        match self.id.as_str() {
            "attack-decay" => {
                self.check_params(&["interval-us", "threshold", "attack", "decay"])?;
                Ok(Box::new(AttackDecay::new(
                    self.interval()?,
                    fraction("threshold", 0.0175)?,
                    fraction("attack", 0.07)?,
                    fraction("decay", 0.005)?,
                )))
            }
            "queue-pi" => {
                self.check_params(&["interval-us", "setpoint", "kp", "ki"])?;
                let gain = |key: &str, default: f64| -> Result<f64, String> {
                    let v = self.param(key, default);
                    if v.is_finite() && v >= 0.0 {
                        Ok(v)
                    } else {
                        Err(format!("{key}={v} must be non-negative"))
                    }
                };
                let (kp, ki) = (gain("kp", 0.5)?, gain("ki", 0.05)?);
                if kp == 0.0 && ki == 0.0 {
                    return Err("queue-pi needs at least one positive gain".to_string());
                }
                Ok(Box::new(QueuePi::new(
                    self.interval()?,
                    fraction("setpoint", 0.5)?,
                    kp,
                    ki,
                )))
            }
            other => Err(format!(
                "unknown policy {other:?}; known policies: {}",
                POLICY_IDS.join(", ")
            )),
        }
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl std::str::FromStr for PolicySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        PolicySpec::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(util: [f64; 4], issued: [u64; 4]) -> ControlSample {
        ControlSample {
            start: Femtos::ZERO,
            end: Femtos::from_micros(10),
            queue_utilization: util,
            issued,
            committed: 1000,
        }
    }

    #[test]
    fn idle_domain_drops_to_the_floor() {
        let mut g = AttackDecay::paper_like();
        let d = g.decide(&sample([0.0, 0.5, 0.0, 0.5], [0, 100, 0, 100]));
        assert_eq!(
            d[DomainId::FloatingPoint.index()],
            Some(Frequency::MIN_SCALED)
        );
    }

    #[test]
    fn rising_utilization_attacks_upward() {
        let mut g = AttackDecay::paper_like();
        // Establish a baseline, decay a few steps, then spike.
        g.decide(&sample([0.0, 0.3, 0.3, 0.3], [1, 1, 1, 1]));
        for _ in 0..20 {
            g.decide(&sample([0.0, 0.3, 0.3, 0.3], [1, 1, 1, 1]));
        }
        let before = g.target_hz[DomainId::Integer.index()];
        let d = g.decide(&sample([0.0, 0.6, 0.3, 0.3], [1, 1, 1, 1]));
        let after = g.target_hz[DomainId::Integer.index()];
        assert!(after > before, "attack should raise the target");
        assert!(d[DomainId::Integer.index()].is_some());
    }

    #[test]
    fn stable_utilization_decays_slowly() {
        let mut g = AttackDecay::paper_like();
        g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
        let before = g.target_hz[DomainId::Integer.index()];
        g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
        let after = g.target_hz[DomainId::Integer.index()];
        assert!(after < before);
        assert!(after > before * 0.99, "decay is gentle");
    }

    #[test]
    fn front_end_is_never_touched() {
        let mut g = AttackDecay::paper_like();
        for util in [0.0, 0.9, 0.1] {
            let d = g.decide(&sample([util, 0.5, 0.5, 0.5], [9, 9, 9, 9]));
            assert_eq!(d[DomainId::FrontEnd.index()], None);
        }
    }

    #[test]
    fn targets_stay_inside_the_operating_region() {
        let mut g = AttackDecay::paper_like();
        // Hammer the decay for a long time: must clamp at 250 MHz.
        for _ in 0..2_000 {
            g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
        }
        for d in &DomainId::ALL[1..] {
            assert!(g.target_hz[d.index()] >= 250e6 - 1.0);
        }
        // And saturate upward: must clamp at 1 GHz.
        for step in 0..2_000 {
            let u = if step % 2 == 0 { 0.95 } else { 0.9 };
            g.decide(&sample([0.0, u, u, u], [9, 9, 9, 9]));
        }
        for d in &DomainId::ALL[1..] {
            assert!(g.target_hz[d.index()] <= 1e9 + 1.0);
        }
    }

    #[test]
    fn every_decision_lies_on_the_32_point_grid() {
        // Regression: the governor used to emit `next.round()` — arbitrary
        // Hz between grid points, which neither DVFS model can express.
        let grid = FrequencyGrid::paper32();
        let on_grid = |f: Frequency| grid.points().iter().any(|p| p.frequency == f);
        let mut g = AttackDecay::paper_like();
        // A deterministic pseudo-random utilization walk: idle spells,
        // spikes, saturation, and gentle drift all mixed together.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut emitted = 0usize;
        for _ in 0..5_000 {
            let util = [rnd(), rnd(), rnd() * rnd(), rnd()];
            let issued = [1, 1, u64::from(util[2] > 0.05), 1];
            for f in g.decide(&sample(util, issued)).into_iter().flatten() {
                emitted += 1;
                assert!(on_grid(f), "off-grid decision: {} Hz", f.as_hz());
            }
        }
        assert!(emitted > 100, "walk should exercise many decisions");
    }

    #[test]
    fn unchanged_grid_point_is_not_re_emitted() {
        let mut g = AttackDecay::paper_like();
        // The first sample attacks upward and clamps at the 1 GHz ceiling —
        // the snapped point equals the initial request, so nothing is
        // emitted. After that, each gentle decay moves the continuous
        // target by only 0.5 % (≈5 MHz at 1 GHz) — within one 24.19 MHz
        // grid step — so decisions appear only when a grid midpoint is
        // crossed.
        let d = g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
        assert!(
            d[DomainId::Integer.index()].is_none(),
            "clamped attack stays at the current grid point"
        );
        // Keep decaying: eventually the snapped point moves and is emitted
        // exactly once per crossed grid point.
        let mut seen = Vec::new();
        for _ in 0..40 {
            let d = g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
            if let Some(f) = d[DomainId::Integer.index()] {
                seen.push(f);
            }
        }
        assert!(!seen.is_empty());
        let mut dedup = seen.clone();
        dedup.dedup();
        assert_eq!(seen, dedup, "no consecutive duplicate requests");
    }

    #[test]
    #[should_panic(expected = "invalid attack")]
    fn bad_parameters_rejected() {
        let _ = AttackDecay::new(Femtos::from_micros(10), 0.02, 1.5, 0.005);
    }

    #[test]
    fn nan_utilization_does_not_poison_the_target() {
        // Regression: a NaN occupancy sample used to propagate into
        // `prev_util` and `target_hz`, after which every later decision was
        // NaN-driven. A NaN now reads as "unchanged" (the stable/decay
        // path) and the targets stay finite and in range.
        let mut g = AttackDecay::paper_like();
        g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
        let before = g.target_hz;
        g.decide(&sample([0.0, f64::NAN, 0.4, 0.4], [1, 1, 1, 1]));
        let i = DomainId::Integer.index();
        assert!(g.prev_util[i].is_finite());
        assert!(g.target_hz[i].is_finite());
        assert!(
            g.target_hz[i] < before[i],
            "NaN reads as a stable queue, so the target decays"
        );
        // And the governor keeps operating normally afterwards.
        let d = g.decide(&sample([0.0, 0.0, 0.4, 0.4], [0, 0, 1, 1]));
        assert_eq!(d[i], Some(Frequency::MIN_SCALED));
    }

    #[test]
    fn infinite_utilization_clamps_to_the_unit_interval() {
        let mut g = AttackDecay::paper_like();
        g.decide(&sample(
            [0.0, f64::INFINITY, f64::NEG_INFINITY, 0.4],
            [1; 4],
        ));
        assert_eq!(g.prev_util[DomainId::Integer.index()], 1.0);
        assert_eq!(g.prev_util[DomainId::FloatingPoint.index()], 0.0);
        for d in &DomainId::ALL[1..] {
            assert!(g.target_hz[d.index()].is_finite());
        }
    }

    #[test]
    fn queue_pi_raises_frequency_above_setpoint_and_lowers_it_below() {
        let mut g = QueuePi::default_tuning();
        // Decay well below the ceiling first, so upward motion is visible.
        for _ in 0..40 {
            g.decide(&sample([0.0, 0.2, 0.2, 0.2], [1, 1, 1, 1]));
        }
        let i = DomainId::Integer.index();
        let low = g.target_hz[i];
        assert!(low < 1e9, "below-setpoint occupancy lowers the target");
        for _ in 0..40 {
            g.decide(&sample([0.0, 0.9, 0.2, 0.2], [1, 1, 1, 1]));
        }
        assert!(
            g.target_hz[i] > low,
            "above-setpoint occupancy raises the target"
        );
    }

    #[test]
    fn queue_pi_is_grid_snapped_deduplicated_and_leaves_the_front_end() {
        let grid = FrequencyGrid::paper32();
        let on_grid = |f: Frequency| grid.points().iter().any(|p| p.frequency == f);
        let mut g = QueuePi::default_tuning();
        let mut x: u64 = 0x0123_4567_89AB_CDEF;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut last: [Option<Frequency>; DomainId::COUNT] = [None; DomainId::COUNT];
        let mut emitted = 0usize;
        for _ in 0..5_000 {
            let util = [rnd(), rnd(), rnd() * rnd(), rnd()];
            let issued = [1, 1, u64::from(util[2] > 0.05), 1];
            let d = g.decide(&sample(util, issued));
            assert_eq!(d[DomainId::FrontEnd.index()], None);
            for (i, f) in d.iter().enumerate() {
                if let Some(f) = f {
                    emitted += 1;
                    assert!(on_grid(*f), "off-grid decision: {} Hz", f.as_hz());
                    assert_ne!(last[i], Some(*f), "consecutive duplicate request");
                    last[i] = Some(*f);
                }
            }
        }
        assert!(emitted > 100, "walk should exercise many decisions");
    }

    #[test]
    fn queue_pi_integral_never_winds_up_unbounded() {
        let mut g = QueuePi::default_tuning();
        for _ in 0..10_000 {
            g.decide(&sample([0.0, 1.0, 1.0, 1.0], [9, 9, 9, 9]));
        }
        for d in &DomainId::ALL[1..] {
            let i = d.index();
            assert!(g.integral[i].abs() <= QueuePi::WINDUP_CAP + 1e-12);
            assert!(g.target_hz[i] <= 1e9 + 1.0);
        }
    }

    #[test]
    fn policy_spec_parses_and_canonicalizes() {
        let p = PolicySpec::parse("attack-decay").expect("bare id parses");
        assert_eq!(p.canonical(), "attack-decay");
        let p = PolicySpec::parse("queue-pi:ki=0.1,setpoint=0.6").expect("params parse");
        assert_eq!(p.canonical(), "queue-pi:ki=0.1,setpoint=0.6");
        // Parameter order never matters: the rendering is sorted.
        let swapped = PolicySpec::parse("queue-pi:setpoint=0.6,ki=0.1").expect("parses");
        assert_eq!(p, swapped);
        // Canonical strings round-trip.
        assert_eq!(PolicySpec::parse(&p.canonical()).expect("round-trips"), p);
    }

    #[test]
    fn policy_spec_rejects_bad_input_with_context() {
        assert!(PolicySpec::parse("banana").unwrap_err().contains("banana"));
        assert!(PolicySpec::parse("attack-decay:attack")
            .unwrap_err()
            .contains("key=value"));
        assert!(PolicySpec::parse("attack-decay:attack=high")
            .unwrap_err()
            .contains("not a number"));
        assert!(PolicySpec::parse("attack-decay:attack=0.1,attack=0.2")
            .unwrap_err()
            .contains("duplicate"));
        assert!(PolicySpec::parse("attack-decay:banana=1")
            .unwrap_err()
            .contains("no parameter"));
        assert!(PolicySpec::parse("attack-decay:attack=1.5")
            .unwrap_err()
            .contains("(0, 1)"));
        assert!(PolicySpec::parse("queue-pi:kp=0,ki=0")
            .unwrap_err()
            .contains("gain"));
        assert!(PolicySpec::parse("queue-pi:interval-us=0.5")
            .unwrap_err()
            .contains("interval-us"));
    }

    #[test]
    fn registry_builds_every_known_policy() {
        for id in POLICY_IDS {
            let p = PolicySpec::parse(id).expect("known id parses");
            let g = p.build().expect("known id builds");
            assert!(g.interval() > Femtos::ZERO);
        }
    }

    #[test]
    fn registry_parameters_reach_the_governor() {
        let p = PolicySpec::parse("attack-decay:interval-us=20").expect("parses");
        assert_eq!(
            p.build().expect("builds").interval(),
            Femtos::from_micros(20)
        );
    }
}
