//! On-line per-domain DVFS control — the paper's stated future work.
//!
//! §6: "Our current analysis uses an off-line algorithm … Future work will
//! involve developing effective on-line algorithms." The authors' follow-up
//! (Semeraro et al., MICRO 2002) controlled each domain from its issue-queue
//! utilization with an *attack/decay* rule; [`AttackDecay`] implements that
//! scheme against this simulator's machinery, and the [`Governor`] trait
//! lets users plug in their own policies.
//!
//! The pipeline samples per-domain utilization continuously and hands the
//! governor a [`ControlSample`] at the end of every control interval; the
//! governor returns frequency requests which the machine applies through
//! the normal DVFS transition model (ramps, re-locks and all).

use mcd_time::{Femtos, Frequency, FrequencyGrid};

use crate::domains::DomainId;

/// Utilization observed in one control interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSample {
    /// Interval start time.
    pub start: Femtos,
    /// Interval end time.
    pub end: Femtos,
    /// Mean occupancy of each domain's issue structure over the interval,
    /// as a fraction of capacity (integer IQ, FP IQ, LSQ; the front-end
    /// entry holds fetch-queue occupancy).
    pub queue_utilization: [f64; DomainId::COUNT],
    /// Operations issued in each domain during the interval.
    pub issued: [u64; DomainId::COUNT],
    /// Instructions committed during the interval.
    pub committed: u64,
}

/// A per-domain frequency decision: `None` leaves the domain alone.
pub type ControlDecision = [Option<Frequency>; DomainId::COUNT];

/// An on-line DVFS policy.
///
/// Implementations are called once per control interval with fresh
/// utilization statistics and may request new frequencies for any domain.
pub trait Governor {
    /// Decides frequency changes for the coming interval.
    fn decide(&mut self, sample: &ControlSample) -> ControlDecision;

    /// The control interval length.
    fn interval(&self) -> Femtos;
}

/// Boxed governors forward to their contents, so callers holding a
/// `Box<dyn Governor>` (or a boxed concrete policy) can hand it to
/// [`Pipeline::run_with_governor`] unchanged.
///
/// [`Pipeline::run_with_governor`]: crate::Pipeline::run_with_governor
impl<G: Governor + ?Sized> Governor for Box<G> {
    fn decide(&mut self, sample: &ControlSample) -> ControlDecision {
        (**self).decide(sample)
    }

    fn interval(&self) -> Femtos {
        (**self).interval()
    }
}

/// The governor of a run with no on-line control.
///
/// Exists so the run loop can be monomorphized over one `G: Governor` even
/// when no governor is installed; [`Pipeline::run`] instantiates the loop
/// with this type, and the `Option` wrapping it is always `None`, so
/// `decide` is statically unreachable.
///
/// [`Pipeline::run`]: crate::Pipeline::run
#[derive(Debug, Clone, Copy, Default)]
pub struct NoGovernor;

impl Governor for NoGovernor {
    fn decide(&mut self, _sample: &ControlSample) -> ControlDecision {
        unreachable!("NoGovernor is never polled")
    }

    fn interval(&self) -> Femtos {
        Femtos::MAX
    }
}

/// The attack/decay rule of the authors' follow-up work.
///
/// Per scaled domain and interval: if the queue utilization moved by more
/// than `deviation_threshold` since the previous interval, the frequency is
/// changed *aggressively* in the same direction (attack); otherwise it
/// decays gently downward, continually probing for energy savings. The
/// front end is never scaled, matching the paper.
///
/// # Example
///
/// ```
/// use mcd_pipeline::governor::{AttackDecay, ControlSample, Governor};
/// use mcd_time::Femtos;
///
/// let mut governor = AttackDecay::paper_like();
/// let sample = ControlSample {
///     start: Femtos::ZERO,
///     end: governor.interval(),
///     queue_utilization: [0.2, 0.9, 0.0, 0.4],
///     issued: [0, 4000, 0, 1500],
///     committed: 5_000,
/// };
/// let decision = governor.decide(&sample);
/// // The completely idle FP domain is sent straight to the 250 MHz floor;
/// // the near-saturated integer domain is already at 1 GHz and stays there.
/// assert!(decision[2].is_some());
/// assert!(decision[1].is_none());
/// ```
#[derive(Debug, Clone)]
pub struct AttackDecay {
    interval: Femtos,
    /// Utilization swing that triggers an attack.
    deviation_threshold: f64,
    /// Multiplicative attack step (e.g. 0.07 = 7 %).
    attack: f64,
    /// Multiplicative decay step applied when utilization is stable.
    decay: f64,
    /// Previous interval's utilization.
    prev_util: [f64; DomainId::COUNT],
    /// Current *continuous* frequency targets (tracked, since requests are
    /// asynchronous). The attack/decay law runs on these so that sub-step
    /// decays accumulate; only the emitted decisions are quantized.
    target_hz: [f64; DomainId::COUNT],
    /// The grid decisions are snapped to: every emitted frequency is one
    /// the hardware model can actually express.
    grid: FrequencyGrid,
    /// Last grid point requested per domain, so a target drifting within
    /// one grid step does not re-emit the same frequency.
    requested: [Frequency; DomainId::COUNT],
    f_min: f64,
    f_max: f64,
}

impl AttackDecay {
    /// Parameters in the spirit of the follow-up paper: 10 µs intervals,
    /// ±1.75 % utilization deviation threshold, 7 % attack, 0.5 % decay.
    pub fn paper_like() -> Self {
        AttackDecay::new(Femtos::from_micros(10), 0.0175, 0.07, 0.005)
    }

    /// Creates a governor with custom parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-finite or out of `(0, 1)` where a
    /// fraction is expected.
    pub fn new(interval: Femtos, deviation_threshold: f64, attack: f64, decay: f64) -> Self {
        assert!(interval > Femtos::ZERO, "control interval must be positive");
        for (name, v) in [
            ("deviation_threshold", deviation_threshold),
            ("attack", attack),
            ("decay", decay),
        ] {
            assert!(v.is_finite() && v > 0.0 && v < 1.0, "invalid {name}: {v}");
        }
        AttackDecay {
            interval,
            deviation_threshold,
            attack,
            decay,
            prev_util: [0.0; DomainId::COUNT],
            target_hz: [1e9; DomainId::COUNT],
            grid: FrequencyGrid::paper32(),
            requested: [Frequency::GHZ; DomainId::COUNT],
            f_min: 250e6,
            f_max: 1e9,
        }
    }
}

impl Governor for AttackDecay {
    fn decide(&mut self, sample: &ControlSample) -> ControlDecision {
        let mut decision: ControlDecision = [None; DomainId::COUNT];
        for d in &DomainId::ALL[1..] {
            let i = d.index();
            let util = sample.queue_utilization[i];
            let delta = util - self.prev_util[i];
            self.prev_util[i] = util;
            let current = self.target_hz[i];
            let next = if sample.issued[i] == 0 && util < 1e-3 {
                // Completely idle domain: go straight to the floor.
                self.f_min
            } else if delta.abs() > self.deviation_threshold {
                // Attack in the direction utilization moved.
                if delta > 0.0 {
                    current * (1.0 + self.attack)
                } else {
                    current * (1.0 - self.attack)
                }
            } else if util > 0.85 {
                // Near-saturated queue: climb even without a swing.
                current * (1.0 + self.attack)
            } else {
                // Stable: decay gently, probing for savings.
                current * (1.0 - self.decay)
            };
            // Track the continuous target, but snap the emitted decision to
            // the 32-point grid: the DVFS models (step counts, voltage
            // lookups) are only defined on grid frequencies, and re-emitting
            // a request the hardware cannot distinguish from the current one
            // would charge phantom transitions.
            self.target_hz[i] = next.clamp(self.f_min, self.f_max);
            let snapped = self.grid.snap(self.target_hz[i]).frequency;
            if snapped != self.requested[i] {
                self.requested[i] = snapped;
                decision[i] = Some(snapped);
            }
        }
        decision
    }

    fn interval(&self) -> Femtos {
        self.interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(util: [f64; 4], issued: [u64; 4]) -> ControlSample {
        ControlSample {
            start: Femtos::ZERO,
            end: Femtos::from_micros(10),
            queue_utilization: util,
            issued,
            committed: 1000,
        }
    }

    #[test]
    fn idle_domain_drops_to_the_floor() {
        let mut g = AttackDecay::paper_like();
        let d = g.decide(&sample([0.0, 0.5, 0.0, 0.5], [0, 100, 0, 100]));
        assert_eq!(
            d[DomainId::FloatingPoint.index()],
            Some(Frequency::MIN_SCALED)
        );
    }

    #[test]
    fn rising_utilization_attacks_upward() {
        let mut g = AttackDecay::paper_like();
        // Establish a baseline, decay a few steps, then spike.
        g.decide(&sample([0.0, 0.3, 0.3, 0.3], [1, 1, 1, 1]));
        for _ in 0..20 {
            g.decide(&sample([0.0, 0.3, 0.3, 0.3], [1, 1, 1, 1]));
        }
        let before = g.target_hz[DomainId::Integer.index()];
        let d = g.decide(&sample([0.0, 0.6, 0.3, 0.3], [1, 1, 1, 1]));
        let after = g.target_hz[DomainId::Integer.index()];
        assert!(after > before, "attack should raise the target");
        assert!(d[DomainId::Integer.index()].is_some());
    }

    #[test]
    fn stable_utilization_decays_slowly() {
        let mut g = AttackDecay::paper_like();
        g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
        let before = g.target_hz[DomainId::Integer.index()];
        g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
        let after = g.target_hz[DomainId::Integer.index()];
        assert!(after < before);
        assert!(after > before * 0.99, "decay is gentle");
    }

    #[test]
    fn front_end_is_never_touched() {
        let mut g = AttackDecay::paper_like();
        for util in [0.0, 0.9, 0.1] {
            let d = g.decide(&sample([util, 0.5, 0.5, 0.5], [9, 9, 9, 9]));
            assert_eq!(d[DomainId::FrontEnd.index()], None);
        }
    }

    #[test]
    fn targets_stay_inside_the_operating_region() {
        let mut g = AttackDecay::paper_like();
        // Hammer the decay for a long time: must clamp at 250 MHz.
        for _ in 0..2_000 {
            g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
        }
        for d in &DomainId::ALL[1..] {
            assert!(g.target_hz[d.index()] >= 250e6 - 1.0);
        }
        // And saturate upward: must clamp at 1 GHz.
        for step in 0..2_000 {
            let u = if step % 2 == 0 { 0.95 } else { 0.9 };
            g.decide(&sample([0.0, u, u, u], [9, 9, 9, 9]));
        }
        for d in &DomainId::ALL[1..] {
            assert!(g.target_hz[d.index()] <= 1e9 + 1.0);
        }
    }

    #[test]
    fn every_decision_lies_on_the_32_point_grid() {
        // Regression: the governor used to emit `next.round()` — arbitrary
        // Hz between grid points, which neither DVFS model can express.
        let grid = FrequencyGrid::paper32();
        let on_grid = |f: Frequency| grid.points().iter().any(|p| p.frequency == f);
        let mut g = AttackDecay::paper_like();
        // A deterministic pseudo-random utilization walk: idle spells,
        // spikes, saturation, and gentle drift all mixed together.
        let mut x: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut emitted = 0usize;
        for _ in 0..5_000 {
            let util = [rnd(), rnd(), rnd() * rnd(), rnd()];
            let issued = [1, 1, u64::from(util[2] > 0.05), 1];
            for f in g.decide(&sample(util, issued)).into_iter().flatten() {
                emitted += 1;
                assert!(on_grid(f), "off-grid decision: {} Hz", f.as_hz());
            }
        }
        assert!(emitted > 100, "walk should exercise many decisions");
    }

    #[test]
    fn unchanged_grid_point_is_not_re_emitted() {
        let mut g = AttackDecay::paper_like();
        // The first sample attacks upward and clamps at the 1 GHz ceiling —
        // the snapped point equals the initial request, so nothing is
        // emitted. After that, each gentle decay moves the continuous
        // target by only 0.5 % (≈5 MHz at 1 GHz) — within one 24.19 MHz
        // grid step — so decisions appear only when a grid midpoint is
        // crossed.
        let d = g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
        assert!(
            d[DomainId::Integer.index()].is_none(),
            "clamped attack stays at the current grid point"
        );
        // Keep decaying: eventually the snapped point moves and is emitted
        // exactly once per crossed grid point.
        let mut seen = Vec::new();
        for _ in 0..40 {
            let d = g.decide(&sample([0.0, 0.4, 0.4, 0.4], [1, 1, 1, 1]));
            if let Some(f) = d[DomainId::Integer.index()] {
                seen.push(f);
            }
        }
        assert!(!seen.is_empty());
        let mut dedup = seen.clone();
        dedup.dedup();
        assert_eq!(seen, dedup, "no consecutive duplicate requests");
    }

    #[test]
    #[should_panic(expected = "invalid attack")]
    fn bad_parameters_rejected() {
        let _ = AttackDecay::new(Femtos::from_micros(10), 0.02, 1.5, 0.005);
    }
}
