//! Activity accounting for the power model.
//!
//! Following Wattch, energy is attributed per structure access. Because a
//! domain's supply voltage varies over a run, each access is recorded
//! together with the square of the instantaneous voltage; the power model
//! multiplies the accumulated `Σ V²` by a per-unit effective capacitance to
//! get joules. Unweighted counts are kept as well for reporting.

use serde::{Deserialize, Serialize};

use crate::domains::DomainId;

/// Architectural structures whose accesses dissipate energy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Branch predictor tables + BTB (front end).
    Bpred,
    /// L1 instruction cache (front end).
    ICache,
    /// Rename map and free lists (front end).
    Rename,
    /// Reorder buffer (front end).
    Rob,
    /// Integer issue queue (wakeup + select).
    IqInt,
    /// Floating-point issue queue.
    IqFp,
    /// Load/store queue (including forwarding CAM).
    Lsq,
    /// Integer register file.
    RegInt,
    /// Floating-point register file.
    RegFp,
    /// Integer ALUs.
    AluInt,
    /// Integer multiplier/divider.
    MulInt,
    /// Floating-point adders.
    AluFp,
    /// Floating-point multiplier/divider/sqrt.
    MulFp,
    /// L1 data cache.
    Dcache,
    /// Unified L2 cache (load/store domain).
    L2,
    /// Integer-domain result bus.
    BusInt,
    /// FP-domain result bus.
    BusFp,
    /// Load/store-domain result bus.
    BusLs,
}

impl Unit {
    /// All units, in a stable order.
    pub const ALL: [Unit; 18] = [
        Unit::Bpred,
        Unit::ICache,
        Unit::Rename,
        Unit::Rob,
        Unit::IqInt,
        Unit::IqFp,
        Unit::Lsq,
        Unit::RegInt,
        Unit::RegFp,
        Unit::AluInt,
        Unit::MulInt,
        Unit::AluFp,
        Unit::MulFp,
        Unit::Dcache,
        Unit::L2,
        Unit::BusInt,
        Unit::BusFp,
        Unit::BusLs,
    ];

    /// Number of units.
    pub const COUNT: usize = 18;

    /// Stable index in `0..COUNT`, matching the position in [`Unit::ALL`]
    /// (asserted by a test). A direct match, not a search — the ledger
    /// indexes on every recorded access, several times per instruction.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Unit::Bpred => 0,
            Unit::ICache => 1,
            Unit::Rename => 2,
            Unit::Rob => 3,
            Unit::IqInt => 4,
            Unit::IqFp => 5,
            Unit::Lsq => 6,
            Unit::RegInt => 7,
            Unit::RegFp => 8,
            Unit::AluInt => 9,
            Unit::MulInt => 10,
            Unit::AluFp => 11,
            Unit::MulFp => 12,
            Unit::Dcache => 13,
            Unit::L2 => 14,
            Unit::BusInt => 15,
            Unit::BusFp => 16,
            Unit::BusLs => 17,
        }
    }

    /// The clock domain a unit belongs to (determines its supply voltage).
    pub fn domain(self) -> DomainId {
        match self {
            Unit::Bpred | Unit::ICache | Unit::Rename | Unit::Rob => DomainId::FrontEnd,
            Unit::IqInt | Unit::RegInt | Unit::AluInt | Unit::MulInt | Unit::BusInt => {
                DomainId::Integer
            }
            Unit::IqFp | Unit::RegFp | Unit::AluFp | Unit::MulFp | Unit::BusFp => {
                DomainId::FloatingPoint
            }
            Unit::Lsq | Unit::Dcache | Unit::L2 | Unit::BusLs => DomainId::LoadStore,
        }
    }
}

/// Accumulated access activity, voltage-weighted.
///
/// # Example
///
/// ```
/// use mcd_pipeline::{ActivityLedger, Unit};
///
/// let mut ledger = ActivityLedger::new();
/// ledger.record(Unit::Dcache, 1.2);
/// ledger.record(Unit::Dcache, 0.65);
/// assert_eq!(ledger.count(Unit::Dcache), 2);
/// let w = ledger.weighted_v2(Unit::Dcache);
/// assert!((w - (1.2f64 * 1.2 + 0.65 * 0.65)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivityLedger {
    counts: Vec<u64>,
    weighted: Vec<f64>,
}

impl ActivityLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        ActivityLedger {
            counts: vec![0; Unit::COUNT],
            weighted: vec![0.0; Unit::COUNT],
        }
    }

    /// Records one access to `unit` at supply voltage `volts`.
    pub fn record(&mut self, unit: Unit, volts: f64) {
        let i = unit.index();
        self.counts[i] += 1;
        self.weighted[i] += volts * volts;
    }

    /// Records `n` accesses at the same voltage.
    pub fn record_n(&mut self, unit: Unit, volts: f64, n: u64) {
        let i = unit.index();
        self.counts[i] += n;
        self.weighted[i] += volts * volts * n as f64;
    }

    /// Raw access count for a unit.
    pub fn count(&self, unit: Unit) -> u64 {
        self.counts[unit.index()]
    }

    /// Voltage-squared-weighted access sum for a unit (volts²·accesses).
    pub fn weighted_v2(&self, unit: Unit) -> f64 {
        self.weighted[unit.index()]
    }

    /// Total accesses attributed to a domain.
    pub fn domain_count(&self, domain: DomainId) -> u64 {
        Unit::ALL
            .iter()
            .filter(|u| u.domain() == domain)
            .map(|&u| self.count(u))
            .sum()
    }

    /// Merges another ledger into this one.
    pub fn merge(&mut self, other: &ActivityLedger) {
        for i in 0..Unit::COUNT {
            self.counts[i] += other.counts[i];
            self.weighted[i] += other.weighted[i];
        }
    }
}

impl Default for ActivityLedger {
    fn default() -> Self {
        ActivityLedger::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_indices_are_dense_and_distinct() {
        let mut seen = [false; Unit::COUNT];
        for u in Unit::ALL {
            assert!(!seen[u.index()]);
            seen[u.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_domain_mapping_matches_paper_partition() {
        assert_eq!(Unit::ICache.domain(), DomainId::FrontEnd);
        assert_eq!(Unit::Rob.domain(), DomainId::FrontEnd);
        assert_eq!(Unit::IqInt.domain(), DomainId::Integer);
        assert_eq!(Unit::MulFp.domain(), DomainId::FloatingPoint);
        assert_eq!(Unit::L2.domain(), DomainId::LoadStore);
        assert_eq!(Unit::Dcache.domain(), DomainId::LoadStore);
    }

    #[test]
    fn record_accumulates() {
        let mut l = ActivityLedger::new();
        l.record(Unit::AluInt, 1.0);
        l.record_n(Unit::AluInt, 2.0, 3);
        assert_eq!(l.count(Unit::AluInt), 4);
        assert!((l.weighted_v2(Unit::AluInt) - (1.0 + 12.0)).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = ActivityLedger::new();
        let mut b = ActivityLedger::new();
        a.record(Unit::L2, 1.2);
        b.record(Unit::L2, 1.2);
        b.record(Unit::Bpred, 0.8);
        a.merge(&b);
        assert_eq!(a.count(Unit::L2), 2);
        assert_eq!(a.count(Unit::Bpred), 1);
    }

    #[test]
    fn domain_count_aggregates_units() {
        let mut l = ActivityLedger::new();
        l.record(Unit::ICache, 1.2);
        l.record(Unit::Rename, 1.2);
        l.record(Unit::AluInt, 1.2);
        assert_eq!(l.domain_count(DomainId::FrontEnd), 2);
        assert_eq!(l.domain_count(DomainId::Integer), 1);
        assert_eq!(l.domain_count(DomainId::LoadStore), 0);
    }
}
