//! Per-domain frequency reconfiguration schedules.
//!
//! The off-line analysis tool emits "a log file that specifies times at
//! which the application could profitably have requested changes in the
//! frequencies and voltages of various domains" (§3.2); the simulator reads
//! it back during the second, dynamic run. [`FrequencySchedule`] is that log
//! file, serializable to JSON.

use serde::{Deserialize, Serialize};

use mcd_time::{Femtos, Frequency};

use crate::domains::DomainId;

/// One reconfiguration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScheduleEntry {
    /// When the request is issued.
    pub at: Femtos,
    /// Which domain changes.
    pub domain: DomainId,
    /// Target frequency (voltage follows the operating-point table).
    pub frequency: Frequency,
}

/// A time-ordered reconfiguration schedule.
///
/// # Example
///
/// ```
/// use mcd_pipeline::{DomainId, FrequencySchedule, ScheduleEntry};
/// use mcd_time::{Femtos, Frequency};
///
/// let mut s = FrequencySchedule::new();
/// s.push(ScheduleEntry {
///     at: Femtos::from_micros(100),
///     domain: DomainId::FloatingPoint,
///     frequency: Frequency::MIN_SCALED,
/// });
/// assert_eq!(s.len(), 1);
/// let json = s.to_json().expect("serializable");
/// let back = FrequencySchedule::from_json(&json).expect("round trips");
/// assert_eq!(back.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FrequencySchedule {
    entries: Vec<ScheduleEntry>,
}

impl FrequencySchedule {
    /// An empty schedule (static frequencies).
    pub fn new() -> Self {
        FrequencySchedule {
            entries: Vec::new(),
        }
    }

    /// Builds from a list of entries, sorting by time.
    pub fn from_entries(mut entries: Vec<ScheduleEntry>) -> Self {
        entries.sort_by_key(|e| e.at);
        FrequencySchedule { entries }
    }

    /// Appends an entry, keeping time order.
    pub fn push(&mut self, entry: ScheduleEntry) {
        match self.entries.last() {
            Some(last) if last.at > entry.at => {
                self.entries.push(entry);
                self.entries.sort_by_key(|e| e.at);
            }
            _ => self.entries.push(entry),
        }
    }

    /// Number of reconfiguration requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in time order.
    pub fn entries(&self) -> &[ScheduleEntry] {
        &self.entries
    }

    /// Entries affecting one domain, in time order.
    pub fn for_domain(&self, domain: DomainId) -> impl Iterator<Item = &ScheduleEntry> {
        self.entries.iter().filter(move |e| e.domain == domain)
    }

    /// Number of requests per domain, indexed by [`DomainId::index`].
    pub fn counts_per_domain(&self) -> [usize; DomainId::COUNT] {
        let mut counts = [0; DomainId::COUNT];
        for e in &self.entries {
            counts[e.domain.index()] += 1;
        }
        counts
    }

    /// Serializes to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (practically unreachable for this type).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a schedule from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error for malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        let parsed: FrequencySchedule = serde_json::from_str(json)?;
        Ok(FrequencySchedule::from_entries(parsed.entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(us: u64, domain: DomainId, mhz: u64) -> ScheduleEntry {
        ScheduleEntry {
            at: Femtos::from_micros(us),
            domain,
            frequency: Frequency::from_mhz(mhz),
        }
    }

    #[test]
    fn entries_kept_in_time_order() {
        let s = FrequencySchedule::from_entries(vec![
            entry(50, DomainId::Integer, 500),
            entry(10, DomainId::FloatingPoint, 250),
            entry(30, DomainId::LoadStore, 750),
        ]);
        let times: Vec<u64> = s
            .entries()
            .iter()
            .map(|e| e.at.as_micros_f64() as u64)
            .collect();
        assert_eq!(times, vec![10, 30, 50]);
    }

    #[test]
    fn push_out_of_order_resorts() {
        let mut s = FrequencySchedule::new();
        s.push(entry(30, DomainId::Integer, 500));
        s.push(entry(10, DomainId::Integer, 750));
        assert_eq!(s.entries()[0].at, Femtos::from_micros(10));
    }

    #[test]
    fn per_domain_filters() {
        let s = FrequencySchedule::from_entries(vec![
            entry(1, DomainId::Integer, 500),
            entry(2, DomainId::FloatingPoint, 250),
            entry(3, DomainId::Integer, 1000),
        ]);
        assert_eq!(s.for_domain(DomainId::Integer).count(), 2);
        assert_eq!(s.counts_per_domain(), [0, 2, 1, 0]);
    }

    #[test]
    fn json_round_trip() {
        let s = FrequencySchedule::from_entries(vec![entry(5, DomainId::LoadStore, 333)]);
        let json = s.to_json().expect("serialize");
        let back = FrequencySchedule::from_json(&json).expect("parse");
        assert_eq!(s, back);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(FrequencySchedule::from_json("{not json").is_err());
    }
}
