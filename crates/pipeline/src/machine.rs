//! Whole-machine configuration: pipeline structure plus clocking style.

use serde::{Deserialize, Serialize};

use mcd_time::{DvfsModel, Frequency, JitterModel, PllModel, SyncParams, VfTable};

use crate::config::PipelineConfig;
use crate::domains::DomainId;
use crate::schedule::FrequencySchedule;

/// How the chip is clocked.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClockingMode {
    /// Conventional singly-clocked chip: one clock drives everything, there
    /// are no synchronization penalties. Used for the `baseline` and
    /// `global` configurations of §4.
    SingleDomain {
        /// The global clock frequency (voltage follows the VF table).
        frequency: Frequency,
    },
    /// Four independent clock domains (the MCD design). Frequencies are the
    /// *initial* per-domain values; a [`FrequencySchedule`] may change them
    /// during the run.
    Mcd {
        /// Initial frequency per domain, indexed by [`DomainId::index`].
        frequencies: [Frequency; DomainId::COUNT],
    },
}

/// Complete machine description for one simulation run.
///
/// # Example
///
/// ```
/// use mcd_pipeline::MachineConfig;
///
/// let m = MachineConfig::baseline_mcd(42);
/// assert!(matches!(m.mode, mcd_pipeline::ClockingMode::Mcd { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Pipeline structure (Table 1).
    pub pipeline: PipelineConfig,
    /// Clocking style.
    pub mode: ClockingMode,
    /// Per-cycle clock jitter.
    pub jitter: JitterModel,
    /// Inter-domain synchronization window.
    pub sync: SyncParams,
    /// Voltage/frequency operating region.
    pub vf: VfTable,
    /// DVFS transition model for scalable domains.
    pub dvfs_model: DvfsModel,
    /// PLL re-lock model (Transmeta transitions).
    pub pll: PllModel,
    /// Experiment seed (drives jitter, PLL lock times and the workload).
    pub seed: u64,
    /// Reconfiguration schedule applied during the run (empty = static).
    pub schedule: FrequencySchedule,
    /// Whether to record a per-instruction event trace (needed by the
    /// off-line analysis tool; costs memory).
    pub collect_trace: bool,
    /// Instructions streamed through the caches and branch predictor before
    /// the timed run, emulating the paper's mid-execution simulation windows
    /// (e.g. "1000M–1100M") without simulating the first billion
    /// instructions. Statistics are reset afterwards.
    pub warmup_instructions: u64,
}

impl MachineConfig {
    /// The paper's `baseline`: single 1 GHz clock, no scaling.
    pub fn baseline(seed: u64) -> Self {
        MachineConfig {
            pipeline: PipelineConfig::alpha21264(),
            mode: ClockingMode::SingleDomain {
                frequency: Frequency::GHZ,
            },
            jitter: JitterModel::paper(),
            sync: SyncParams::paper(),
            vf: VfTable::paper(),
            dvfs_model: DvfsModel::XScale,
            pll: PllModel::paper(),
            seed,
            schedule: FrequencySchedule::new(),
            collect_trace: false,
            warmup_instructions: 30_000,
        }
    }

    /// The paper's `baseline MCD`: four domains, all statically at 1 GHz —
    /// isolates the cost of inter-domain synchronization.
    pub fn baseline_mcd(seed: u64) -> Self {
        MachineConfig {
            mode: ClockingMode::Mcd {
                frequencies: [Frequency::GHZ; DomainId::COUNT],
            },
            ..MachineConfig::baseline(seed)
        }
    }

    /// The paper's `global`: the singly-clocked chip scaled to `frequency`
    /// (voltage follows), modeling conventional whole-chip DVFS.
    pub fn global(seed: u64, frequency: Frequency) -> Self {
        MachineConfig {
            mode: ClockingMode::SingleDomain { frequency },
            ..MachineConfig::baseline(seed)
        }
    }

    /// A `dynamic` MCD machine driven by an off-line schedule under the
    /// given DVFS model.
    pub fn dynamic(seed: u64, model: DvfsModel, schedule: FrequencySchedule) -> Self {
        MachineConfig {
            mode: ClockingMode::Mcd {
                frequencies: [Frequency::GHZ; DomainId::COUNT],
            },
            dvfs_model: model,
            schedule,
            ..MachineConfig::baseline(seed)
        }
    }

    /// Whether this machine has independent clock domains.
    pub fn is_mcd(&self) -> bool {
        matches!(self.mode, ClockingMode::Mcd { .. })
    }

    /// Initial frequency of a domain.
    pub fn initial_frequency(&self, domain: DomainId) -> Frequency {
        match &self.mode {
            ClockingMode::SingleDomain { frequency } => *frequency,
            ClockingMode::Mcd { frequencies } => frequencies[domain.index()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_single_1ghz() {
        let m = MachineConfig::baseline(1);
        assert!(!m.is_mcd());
        assert_eq!(m.initial_frequency(DomainId::Integer), Frequency::GHZ);
        assert!(m.schedule.is_empty());
    }

    #[test]
    fn baseline_mcd_starts_all_domains_at_1ghz() {
        let m = MachineConfig::baseline_mcd(1);
        assert!(m.is_mcd());
        for d in DomainId::ALL {
            assert_eq!(m.initial_frequency(d), Frequency::GHZ);
        }
    }

    #[test]
    fn global_scales_single_clock() {
        let m = MachineConfig::global(1, Frequency::from_mhz(800));
        assert!(!m.is_mcd());
        assert_eq!(
            m.initial_frequency(DomainId::LoadStore),
            Frequency::from_mhz(800)
        );
    }

    #[test]
    fn dynamic_carries_schedule_and_model() {
        use crate::schedule::ScheduleEntry;
        use mcd_time::Femtos;
        let sched = FrequencySchedule::from_entries(vec![ScheduleEntry {
            at: Femtos::from_micros(1),
            domain: DomainId::FloatingPoint,
            frequency: Frequency::MIN_SCALED,
        }]);
        let m = MachineConfig::dynamic(1, DvfsModel::Transmeta, sched);
        assert!(m.is_mcd());
        assert_eq!(m.dvfs_model, DvfsModel::Transmeta);
        assert_eq!(m.schedule.len(), 1);
    }
}
