//! The four on-chip clock domains of the MCD processor (§2.1 of the paper),
//! plus helpers for mapping work onto them.
//!
//! Main memory is treated as a fifth, external domain that always runs at
//! full speed; it has no on-chip clock and is modeled as a fixed-latency
//! resource.

use serde::{Deserialize, Serialize};

use mcd_workload::OpClass;

/// An on-chip clock domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DomainId {
    /// Front end: L1 I-cache, branch prediction, rename, dispatch, ROB.
    FrontEnd,
    /// Integer issue queue, ALUs and register file (also effective-address
    /// computation for memory operations).
    Integer,
    /// Floating-point issue queue, ALUs and register file.
    FloatingPoint,
    /// Load/store queue, L1 D-cache and the unified L2.
    LoadStore,
}

impl DomainId {
    /// All four domains, in a stable order.
    pub const ALL: [DomainId; 4] = [
        DomainId::FrontEnd,
        DomainId::Integer,
        DomainId::FloatingPoint,
        DomainId::LoadStore,
    ];

    /// Number of on-chip domains.
    pub const COUNT: usize = 4;

    /// Stable index in `0..4`.
    pub fn index(self) -> usize {
        match self {
            DomainId::FrontEnd => 0,
            DomainId::Integer => 1,
            DomainId::FloatingPoint => 2,
            DomainId::LoadStore => 3,
        }
    }

    /// Short display label used in reports (matches the paper's figures).
    pub fn label(self) -> &'static str {
        match self {
            DomainId::FrontEnd => "front-end",
            DomainId::Integer => "integer",
            DomainId::FloatingPoint => "floating-point",
            DomainId::LoadStore => "load-store",
        }
    }

    /// The domain whose functional units execute an operation class.
    ///
    /// Memory operations *execute* (access the cache) in the load/store
    /// domain; their effective-address computation is a separate µop in the
    /// integer domain.
    pub fn executing(op: OpClass) -> DomainId {
        match op {
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv | OpClass::Branch => {
                DomainId::Integer
            }
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv | OpClass::FpSqrt => {
                DomainId::FloatingPoint
            }
            OpClass::Load | OpClass::Store => DomainId::LoadStore,
        }
    }
}

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable_and_distinct() {
        for (i, d) in DomainId::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn op_classes_map_to_paper_domains() {
        assert_eq!(DomainId::executing(OpClass::IntAlu), DomainId::Integer);
        assert_eq!(DomainId::executing(OpClass::Branch), DomainId::Integer);
        assert_eq!(
            DomainId::executing(OpClass::FpSqrt),
            DomainId::FloatingPoint
        );
        assert_eq!(DomainId::executing(OpClass::Load), DomainId::LoadStore);
        assert_eq!(DomainId::executing(OpClass::Store), DomainId::LoadStore);
    }

    #[test]
    fn labels_are_nonempty_and_unique() {
        let labels: std::collections::HashSet<_> =
            DomainId::ALL.iter().map(|d| d.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
