//! Process-wide sharing of warm-up state.
//!
//! Warm-up streams tens of thousands of instructions through the caches and
//! branch predictor before every timed run. A campaign evaluates the same
//! (benchmark, seed) cell under many machine configurations, and the warm-up
//! stream is a pure function of the workload profile, the seed, the stream
//! length and the warmed structures' geometry — none of which depend on the
//! clocking mode being measured. So identical warm-ups are computed once and
//! the resulting structures cloned into each run.
//!
//! Correctness requires the key to capture *every* input of the warm-up
//! computation; [`Pipeline`](crate::Pipeline) builds it by serializing the
//! profile, seed, effective stream length and structure configurations.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use mcd_uarch::{BranchPredictor, Cache};

/// The long-lived structures after warm-up, statistics already reset.
#[derive(Debug, Clone)]
pub(crate) struct WarmState {
    pub l1i: Cache,
    pub l1d: Cache,
    pub l2: Cache,
    pub bpred: BranchPredictor,
}

/// Bound on retained entries; a campaign touches one entry per
/// (benchmark, seed) pair, so this is far above any realistic working set.
/// On overflow the map is cleared — only a recompute cost, never a
/// correctness issue.
const MAX_ENTRIES: usize = 128;

static CACHE: OnceLock<Mutex<HashMap<String, Arc<WarmState>>>> = OnceLock::new();

/// Returns the warm state for `key`, building it on a miss.
///
/// The build runs outside the lock so concurrent runs of different cells
/// don't serialize behind each other's warm-up; two racers on the same key
/// build identical state and the later insert simply wins.
pub(crate) fn get_or_build(key: &str, build: impl FnOnce() -> WarmState) -> Arc<WarmState> {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache.lock().expect("warm cache poisoned").get(key) {
        return Arc::clone(hit);
    }
    let built = Arc::new(build());
    let mut map = cache.lock().expect("warm cache poisoned");
    if map.len() >= MAX_ENTRIES {
        map.clear();
    }
    map.insert(key.to_string(), Arc::clone(&built));
    built
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcd_uarch::{BranchPredictorConfig, CacheConfig};

    fn state() -> WarmState {
        WarmState {
            l1i: Cache::new(CacheConfig::l1i_paper()),
            l1d: Cache::new(CacheConfig::l1d_paper()),
            l2: Cache::new(CacheConfig::l2_paper()),
            bpred: BranchPredictor::new(BranchPredictorConfig::paper()),
        }
    }

    #[test]
    fn second_lookup_reuses_the_first_build() {
        let mut builds = 0;
        let a = get_or_build("warm-test-key-a", || {
            builds += 1;
            state()
        });
        let b = get_or_build("warm-test-key-a", || {
            builds += 1;
            state()
        });
        assert_eq!(builds, 1);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn distinct_keys_build_distinct_states() {
        let a = get_or_build("warm-test-key-b", state);
        let b = get_or_build("warm-test-key-c", state);
        assert!(!Arc::ptr_eq(&a, &b));
    }
}
