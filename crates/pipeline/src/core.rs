//! The four-domain out-of-order pipeline engine.
//!
//! The engine is trace-driven: the workload generator supplies the committed
//! (correct-path) instruction stream, the branch predictor decides whether
//! fetch may run ahead, and mis-speculation costs appear as fetch stalls
//! (redirect penalty) rather than as executed wrong-path work.
//!
//! Time is continuous (femtoseconds). Each domain clock emits jittered
//! edges; the run loop always advances the domain with the earliest pending
//! edge, so domains interleave exactly as their (possibly scaled) clocks
//! dictate. Any value crossing a domain boundary becomes visible at the
//! first destination edge at least `T_s` after it was produced (§2.2).

use mcd_time::{DomainClock, Femtos, Frequency, SimRng, SyncWindowCache, VoltageController};
use mcd_trace::{RunTrace, StallCause, TraceConfig, TraceRecorder, TraceSink};
use mcd_uarch::lsq::LoadStatus;
use mcd_uarch::{
    BranchPredictor, Cache, CircularQueue, FuKind, FuPool, LoadStoreQueue, LsqEntryId,
    MemAccessKind, PhysReg, RenameUnit,
};
use mcd_workload::{Instruction, OpClass, WorkloadGenerator};

use crate::config::PipelineConfig;
use crate::domains::DomainId;
use crate::events::{EventSpan, InstrTrace};
use crate::governor::{ControlSample, Governor, NoGovernor};
use crate::machine::{ClockingMode, MachineConfig};
use crate::result::RunResult;
use crate::sched::EdgeScheduler;
use crate::stats::{ActivityLedger, Unit};
use crate::warm::{self, WarmState};

#[cfg(feature = "invariants")]
pub mod invariants;
mod reference;

#[cfg(feature = "invariants")]
use invariants::{InvariantChecker, InvariantReport};

/// A fetched-but-not-dispatched instruction.
#[derive(Debug, Clone)]
struct Fetched {
    seq: u64,
    instr: Instruction,
    fetch_span: EventSpan,
    mispredicted: bool,
}

/// An in-flight (dispatched, uncommitted) instruction.
#[derive(Debug, Clone)]
struct InFlight {
    seq: u64,
    instr: Instruction,
    dest_phys: Option<PhysReg>,
    prev_phys: Option<PhysReg>,
    src_phys: [Option<PhysReg>; 2],
    src_producers: [Option<u64>; 2],
    lsq_id: Option<LsqEntryId>,
    /// When the backend scheduler first sees this IQ entry.
    iq_visible_at: Femtos,
    /// AGU µop issued (memory ops).
    agu_issued: bool,
    /// Address applied to the LSQ in the load/store domain.
    addr_applied: bool,
    /// Cache access performed (loads) / ready check passed (stores).
    mem_done: bool,
    /// Execute issued (non-memory ops).
    exec_issued: bool,
    /// All work done; may commit once visible to the front end.
    completed: bool,
    completion_visible_fe: Femtos,
    fetch_span: EventSpan,
    dispatch_span: EventSpan,
    addr_span: Option<EventSpan>,
    mem_span: Option<EventSpan>,
    exec_span: Option<EventSpan>,
    l1_miss: bool,
    l2_miss: bool,
    mispredicted: bool,
}

/// Safety valve: a run that produces this many edges without committing its
/// target has deadlocked (a bug), so panic with context instead of hanging.
const MAX_EDGES_PER_INSTRUCTION: u64 = 4_000;

/// Everything a run yields besides the measured [`RunResult`]: the trace
/// sink (when one was attached) and, under the `invariants` feature, the
/// invariant report (when a checker was armed).
struct RunArtifacts {
    result: RunResult,
    sink: Option<Box<dyn TraceSink>>,
    #[cfg(feature = "invariants")]
    invariants: Option<InvariantReport>,
}

/// Accumulators feeding an on-line governor between control decisions.
#[derive(Debug, Clone, Default)]
struct ControlState {
    /// Σ occupancy fraction per domain, over that domain's ticks.
    util_sum: [f64; DomainId::COUNT],
    /// Ticks sampled per domain.
    util_samples: [u64; DomainId::COUNT],
    /// Operations issued per domain since the last decision.
    issued: [u64; DomainId::COUNT],
    /// Instructions committed since the last decision.
    committed: u64,
    /// Start of the current control interval.
    start: Femtos,
}

/// The pipeline simulator.
///
/// Build one with [`Pipeline::new`], then call [`Pipeline::run`].
///
/// # Example
///
/// ```
/// use mcd_pipeline::{MachineConfig, Pipeline};
/// use mcd_workload::suites;
///
/// let machine = MachineConfig::baseline(7);
/// let generator = mcd_workload::WorkloadGenerator::new(
///     suites::by_name("adpcm").expect("known benchmark"),
///     machine.seed,
/// );
/// let result = Pipeline::new(machine, generator).run(2_000);
/// assert_eq!(result.committed, 2_000);
/// assert!(result.ipc() > 0.1);
/// ```
pub struct Pipeline {
    cfg: MachineConfig,
    pcfg: PipelineConfig,
    gen: WorkloadGenerator,
    clocks: Vec<DomainClock>,
    /// Earliest-pending-edge index over the clocks.
    sched: EdgeScheduler,
    /// Schedule cursor.
    schedule_pos: usize,
    /// One physical clock serving all four logical domains?
    single_clock: bool,
    /// Run the naive edge-by-edge loop (no fast-forward); validation only.
    reference_mode: bool,

    // Cached per-clock operating points (refreshed after each edge).
    clock_freq: [Frequency; DomainId::COUNT],
    clock_volt: [f64; DomainId::COUNT],
    // Cached per-*domain* period/voltage derived from the clocks.
    periods: [Femtos; DomainId::COUNT],
    volts: [f64; DomainId::COUNT],
    /// §2.2 synchronization windows per (src, dst) domain pair, refreshed
    /// only when a domain's period changes.
    sync_win: SyncWindowCache<{ DomainId::COUNT }>,

    // Front end.
    bpred: BranchPredictor,
    l1i: Cache,
    fetchq: CircularQueue<Fetched>,
    pending_fetch: Option<Instruction>,
    fetch_resume_at: Femtos,
    /// Branch seq fetch is blocked on (mispredict), if any.
    fetch_blocked_on: Option<u64>,
    next_seq: u64,

    // Rename / ROB.
    rename: RenameUnit,
    rob: std::collections::VecDeque<InFlight>,
    rob_head_seq: u64,

    // Backend.
    iq_int: mcd_uarch::AgeQueue,
    iq_fp: mcd_uarch::AgeQueue,
    lsq: LoadStoreQueue,
    fus: FuPool,
    l1d: Cache,
    l2: Cache,
    /// (visible_at, seq, addr): effective addresses in flight to the LSQ.
    pending_addrs: Vec<(Femtos, u64, u64)>,
    /// Stores with addresses applied but memory work outstanding,
    /// ascending seq. Dense mirror of the ROB predicate
    /// `op == Store && addr_applied && !mem_done`.
    ls_stores: Vec<u64>,
    /// Loads with addresses applied but not yet issued, ascending seq.
    ls_loads: Vec<u64>,

    /// Per-physical-register visibility time in each domain, flattened as
    /// `phys.index() * DomainId::COUNT + domain.index()`.
    ready_at: Vec<Femtos>,
    /// Which in-flight instruction wrote each physical register.
    writer_of: Vec<Option<u64>>,

    // On-line control accumulators (governor itself is a run parameter).
    control: ControlState,
    control_next: Femtos,

    /// Observability sink (None in production runs). Every hook site is a
    /// pure observer behind an `Option` check, so a run without a sink does
    /// no trace work and a run with one produces byte-identical results —
    /// the golden-fixture tests enforce both claims.
    tracer: Option<Box<dyn TraceSink>>,

    /// Runtime invariant checker (None unless armed). Like the tracer, every
    /// hook site is a pure observer behind an `Option` check; the field and
    /// all hooks compile out entirely without the `invariants` feature, so
    /// the default build is provably zero-cost.
    #[cfg(feature = "invariants")]
    inv: Option<InvariantChecker>,

    // Per-run scratch buffers, hoisted out of the per-edge hot path.
    exec_scratch: Vec<u64>,
    addr_scratch: Vec<(u64, u64)>,

    // Accounting.
    ledger: ActivityLedger,
    committed: u64,
    /// Commit target for the current run (commit stops exactly there).
    target: u64,
    last_commit_time: Femtos,
    branch_lookups: u64,
    branch_mispredicts: u64,
    trace: Vec<InstrTrace>,
}

impl Pipeline {
    /// Builds a pipeline for one run.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline configuration fails validation.
    pub fn new(cfg: MachineConfig, gen: WorkloadGenerator) -> Self {
        let pcfg = cfg.pipeline.clone();
        if let Err(e) = pcfg.validate() {
            panic!("invalid pipeline configuration: {e}");
        }
        let root = SimRng::seed_from_u64(cfg.seed);
        let clocks: Vec<DomainClock> = match &cfg.mode {
            ClockingMode::SingleDomain { frequency } => {
                vec![DomainClock::fixed_point(
                    *frequency,
                    &cfg.vf,
                    cfg.jitter,
                    root.derive(100).next_u64_seed(),
                )]
            }
            ClockingMode::Mcd { frequencies } => DomainId::ALL
                .iter()
                .map(|d| {
                    let seed = root.derive(100 + d.index() as u64).next_u64_seed();
                    let ctl = VoltageController::new(
                        cfg.dvfs_model,
                        cfg.vf,
                        cfg.pll,
                        frequencies[d.index()],
                    );
                    DomainClock::with_controller(ctl, cfg.jitter, seed)
                })
                .collect(),
        };
        let single_clock = clocks.len() == 1;
        let mut clock_freq = [Frequency::GHZ; DomainId::COUNT];
        let mut clock_volt = [0.0f64; DomainId::COUNT];
        for (i, c) in clocks.iter().enumerate() {
            clock_freq[i] = c.frequency();
            clock_volt[i] = c.voltage().as_volts();
        }
        let mut periods = [Femtos::ZERO; DomainId::COUNT];
        let mut volts = [0.0f64; DomainId::COUNT];
        for d in 0..DomainId::COUNT {
            let ci = if single_clock { 0 } else { d };
            periods[d] = clocks[ci].period();
            volts[d] = clock_volt[ci];
        }
        let sync_win = SyncWindowCache::new(cfg.sync, &periods);
        let total_phys = (pcfg.phys_int + pcfg.phys_fp) as usize;
        Pipeline {
            bpred: BranchPredictor::new(pcfg.bpred),
            l1i: Cache::new(pcfg.l1i),
            l1d: Cache::new(pcfg.l1d),
            l2: Cache::new(pcfg.l2),
            fetchq: CircularQueue::new(pcfg.fetch_queue),
            pending_fetch: None,
            fetch_resume_at: Femtos::ZERO,
            fetch_blocked_on: None,
            next_seq: 0,
            rename: RenameUnit::new(pcfg.phys_int, pcfg.phys_fp),
            rob: std::collections::VecDeque::with_capacity(pcfg.rob_size),
            rob_head_seq: 0,
            iq_int: mcd_uarch::AgeQueue::new(pcfg.iq_int),
            iq_fp: mcd_uarch::AgeQueue::new(pcfg.iq_fp),
            lsq: LoadStoreQueue::new(pcfg.lsq_size),
            fus: FuPool::new(pcfg.fus),
            pending_addrs: Vec::new(),
            ls_stores: Vec::with_capacity(pcfg.lsq_size),
            ls_loads: Vec::with_capacity(pcfg.lsq_size),
            ready_at: vec![Femtos::ZERO; total_phys * DomainId::COUNT],
            writer_of: vec![None; total_phys],
            control: ControlState::default(),
            control_next: Femtos::MAX,
            tracer: None,
            #[cfg(feature = "invariants")]
            inv: None,
            ledger: ActivityLedger::new(),
            committed: 0,
            target: u64::MAX,
            last_commit_time: Femtos::ZERO,
            branch_lookups: 0,
            branch_mispredicts: 0,
            trace: Vec::new(),
            sched: EdgeScheduler::new(clocks.len()),
            schedule_pos: 0,
            single_clock,
            reference_mode: false,
            clock_freq,
            clock_volt,
            periods,
            volts,
            sync_win,
            exec_scratch: Vec::with_capacity(pcfg.iq_int.max(pcfg.iq_fp)),
            addr_scratch: Vec::with_capacity(pcfg.lsq_size),
            clocks,
            gen,
            cfg,
            pcfg,
        }
    }

    /// Forces the naive edge-by-edge run loop (no idle-cycle fast-forward).
    ///
    /// Results are identical either way — this exists so tests can prove
    /// that claim by diffing the two paths.
    pub fn reference_mode(mut self, on: bool) -> Self {
        self.reference_mode = on;
        self
    }

    fn clock_index(&self, d: DomainId) -> usize {
        if self.single_clock {
            0
        } else {
            d.index()
        }
    }

    #[inline]
    fn voltage(&self, d: DomainId) -> f64 {
        self.volts[d.index()]
    }

    #[inline]
    fn period(&self, d: DomainId) -> Femtos {
        self.periods[d.index()]
    }

    /// When a value produced at `t` in `src` becomes usable in `dst`.
    #[inline]
    fn vis(&self, t: Femtos, src: DomainId, dst: DomainId) -> Femtos {
        if self.single_clock || src == dst {
            return t;
        }
        self.sync_win.visible_at(t, src.index(), dst.index())
    }

    /// [`Pipeline::vis`], reporting any synchronization delay to the trace
    /// sink as a stall charged to the destination domain. Used at the value
    /// hand-off sites; the bulk register-ready path ([`Pipeline::set_ready`])
    /// stays untraced because it records potential, not realized, crossings.
    #[inline]
    fn vis_traced(&mut self, t: Femtos, src: DomainId, dst: DomainId) -> Femtos {
        let w = self.vis(t, src, dst);
        if w > t {
            if let Some(s) = self.tracer.as_mut() {
                s.sync_stall(src.index(), dst.index(), t, w - t);
            }
        }
        w
    }

    /// Refreshes the cached operating point of clock `ci` after it produced
    /// an edge (the only moment a clock's frequency or voltage can move).
    #[inline]
    fn note_clock_advanced(&mut self, ci: usize) {
        if self.tracer.is_some() {
            // Re-lock windows surface here (the first edge after one), and
            // must be drained even when frequency and voltage are unchanged
            // relative to the cache (re-lock to the same operating point).
            if let Some((start, end)) = self.clocks[ci].take_relock() {
                if let Some(s) = self.tracer.as_mut() {
                    if self.single_clock {
                        for d in 0..DomainId::COUNT {
                            s.pll_relock(d, start, end);
                        }
                    } else {
                        s.pll_relock(ci, start, end);
                    }
                }
            }
        }
        let c = &self.clocks[ci];
        let f = c.frequency();
        let v = c.voltage().as_volts();
        if f == self.clock_freq[ci] && v == self.clock_volt[ci] {
            return;
        }
        self.clock_freq[ci] = f;
        self.clock_volt[ci] = v;
        let p = f.period();
        if self.single_clock {
            self.periods = [p; DomainId::COUNT];
            self.volts = [v; DomainId::COUNT];
        } else {
            self.volts[ci] = v;
            if self.periods[ci] != p {
                self.periods[ci] = p;
                self.sync_win.refresh_domain(ci, &self.periods);
            }
        }
        if let Some(s) = self.tracer.as_mut() {
            let at = self.clocks[ci].last_edge();
            if self.single_clock {
                for d in 0..DomainId::COUNT {
                    s.freq_change(d, at, f, v);
                }
            } else {
                s.freq_change(ci, at, f, v);
            }
        }
    }

    /// Whether the domain of clock `ci` can have no effect when ticked:
    /// its tick machinery would observe no schedulable work and mutate no
    /// state. Such edges only need their clock advanced.
    ///
    /// The conditions are *stable under this domain's own ticks*: work can
    /// only appear via another domain (dispatch inserts IQ/LSQ entries from
    /// the front end, address µops arrive from the integer domain), so
    /// idleness holds for as long as this clock's edges keep preceding every
    /// other clock's.
    #[inline]
    fn domain_idle(&self, ci: usize) -> bool {
        match DomainId::ALL[ci] {
            DomainId::FrontEnd => false,
            DomainId::Integer => self.iq_int.is_empty(),
            DomainId::FloatingPoint => self.iq_fp.is_empty(),
            DomainId::LoadStore => {
                self.pending_addrs.is_empty()
                    && self.ls_stores.is_empty()
                    && self.ls_loads.is_empty()
            }
        }
    }

    fn rob_get(&self, seq: u64) -> &InFlight {
        &self.rob[(seq - self.rob_head_seq) as usize]
    }

    fn rob_get_mut(&mut self, seq: u64) -> &mut InFlight {
        &mut self.rob[(seq - self.rob_head_seq) as usize]
    }

    /// Marks `phys` written at `t` by domain `src`: consumers in each domain
    /// see it after the synchronization window (the cached window row makes
    /// this a flat four-element write; the zero diagonal covers `src`).
    fn set_ready(&mut self, phys: PhysReg, t: Femtos, src: DomainId) {
        let base = phys.index() * DomainId::COUNT;
        if self.single_clock {
            self.ready_at[base..base + DomainId::COUNT].fill(t);
        } else {
            let row = *self.sync_win.row(src.index());
            for (slot, w) in self.ready_at[base..base + DomainId::COUNT]
                .iter_mut()
                .zip(row)
            {
                *slot = t + w;
            }
        }
    }

    #[inline]
    fn src_ready_at(&self, phys: Option<PhysReg>, d: DomainId) -> Femtos {
        match phys {
            Some(p) => self.ready_at[p.index() * DomainId::COUNT + d.index()],
            None => Femtos::ZERO,
        }
    }

    /// Streams `n` instructions through the caches and branch predictor
    /// without timing, then clears their statistics. This stands in for the
    /// paper's practice of simulating a window deep inside execution, where
    /// long-lived structures are already warm.
    ///
    /// The warm-up stream depends only on the workload, the seed, the stream
    /// length and the structures' geometry — not on the clocking mode under
    /// measurement — so the result is shared process-wide (see [`warm`]) and
    /// cloned into this pipeline; repeated cells in a campaign pay for it
    /// once.
    fn warm_structures(&mut self, n: u64) {
        // Cover at least one full pass over the program's phases so that no
        // phase starts cold inside the measured window.
        let n = n.max(self.gen.profile().cycle_length() + 10_000);
        let key = format!(
            "{}|{}|{}|{}|{}|{}|{}",
            serde_json::to_string(self.gen.profile()).expect("profile serializes"),
            self.cfg.seed,
            n,
            serde_json::to_string(&self.pcfg.l1i).expect("config serializes"),
            serde_json::to_string(&self.pcfg.l1d).expect("config serializes"),
            serde_json::to_string(&self.pcfg.l2).expect("config serializes"),
            serde_json::to_string(&self.pcfg.bpred).expect("config serializes"),
        );
        let state = warm::get_or_build(&key, || self.build_warm_state(n));
        self.l1i = state.l1i.clone();
        self.l1d = state.l1d.clone();
        self.l2 = state.l2.clone();
        self.bpred = state.bpred.clone();
    }

    /// Builds the warmed cache/predictor state for an `n`-instruction
    /// warm-up stream from scratch. Shared by the cached path
    /// ([`Pipeline::warm_structures`]) and the reference interpreter, which
    /// deliberately bypasses the process-wide cache.
    fn build_warm_state(&self, n: u64) -> WarmState {
        // Build on fresh structures — identical to this pipeline's own,
        // which have seen no accesses before warm-up.
        let mut l1i = Cache::new(self.pcfg.l1i);
        let mut l1d = Cache::new(self.pcfg.l1d);
        let mut l2 = Cache::new(self.pcfg.l2);
        let mut bpred = BranchPredictor::new(self.pcfg.bpred);
        let mut warm_gen = WorkloadGenerator::new(self.gen.profile().clone(), self.cfg.seed);
        // Pre-touch the long-reuse-distance warm sets into the L2 (they
        // are deliberately L1-hostile, so only the L2 is touched).
        for line in warm_gen.warm_footprint() {
            l2.access(line, false);
        }
        for _ in 0..n {
            let instr = warm_gen.next_instruction();
            if !l1i.access(instr.pc, false) {
                l2.access(instr.pc, false);
            }
            if let Some(mem) = instr.mem {
                // Skip the streaming region: the timed run re-generates
                // the same address sequence, and pre-touching it would
                // turn compulsory misses into false hits.
                if mem.addr < 0x8000_0000 {
                    let is_write = instr.op == OpClass::Store;
                    if !l1d.access(mem.addr, is_write) {
                        l2.access(mem.addr, is_write);
                    }
                }
            }
            if let Some(b) = instr.branch {
                bpred.update(instr.pc, b.taken, b.target);
            }
        }
        l1i.reset_stats();
        l1d.reset_stats();
        l2.reset_stats();
        bpred.reset_stats();
        WarmState {
            l1i,
            l1d,
            l2,
            bpred,
        }
    }

    /// Runs under an on-line DVFS governor until `target` instructions
    /// commit. The governor is polled at its control interval with fresh
    /// per-domain utilization statistics and its frequency requests go
    /// through the machine's normal DVFS transition model.
    ///
    /// The run loop is monomorphized over the governor type — pass the
    /// policy by value for static dispatch (boxed governors still work
    /// through the blanket `impl Governor for Box<_>`).
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (internal invariant violation).
    pub fn run_with_governor<G: Governor>(mut self, target: u64, mut governor: G) -> RunResult {
        self.control_next = governor.interval();
        self.run_impl(target, Some(&mut governor)).result
    }

    /// Runs until `target` instructions commit; consumes the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (internal invariant violation).
    pub fn run(self, target: u64) -> RunResult {
        self.run_impl::<NoGovernor>(target, None).result
    }

    /// Attaches a custom observability sink for the coming run. The sink
    /// receives per-domain events ([`TraceSink`]) and is dropped when the
    /// run finishes; results are byte-identical with or without it.
    pub fn with_trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.tracer = Some(sink);
        self
    }

    /// Runs with a [`TraceRecorder`] attached, returning the accumulated
    /// [`RunTrace`] alongside the (byte-identical) [`RunResult`].
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (internal invariant violation).
    pub fn run_traced(mut self, target: u64, cfg: TraceConfig) -> (RunResult, RunTrace) {
        self.tracer = Some(Box::new(TraceRecorder::new(cfg)));
        let art = self.run_impl::<NoGovernor>(target, None);
        let trace = art
            .sink
            .and_then(|s| s.into_trace(art.result.total_time))
            .expect("recorder sink yields a trace");
        (art.result, trace)
    }

    /// [`Pipeline::run_with_governor`] with a [`TraceRecorder`] attached;
    /// see [`Pipeline::run_traced`].
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (internal invariant violation).
    pub fn run_with_governor_traced<G: Governor>(
        mut self,
        target: u64,
        mut governor: G,
        cfg: TraceConfig,
    ) -> (RunResult, RunTrace) {
        self.tracer = Some(Box::new(TraceRecorder::new(cfg)));
        self.control_next = governor.interval();
        let art = self.run_impl(target, Some(&mut governor));
        let trace = art
            .sink
            .and_then(|s| s.into_trace(art.result.total_time))
            .expect("recorder sink yields a trace");
        (art.result, trace)
    }

    /// Arms a runtime [`InvariantChecker`] for the coming run. Pair with
    /// [`Pipeline::run_checked`] or
    /// [`Pipeline::run_with_governor_checked`] to collect the report.
    #[cfg(feature = "invariants")]
    pub fn with_invariants(mut self, checker: InvariantChecker) -> Self {
        self.inv = Some(checker.sized_for(self.clocks.len()));
        self
    }

    /// Runs with the armed invariant checker (or a default one), returning
    /// the [`InvariantReport`] alongside the (byte-identical) [`RunResult`].
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (internal invariant violation).
    #[cfg(feature = "invariants")]
    pub fn run_checked(mut self, target: u64) -> (RunResult, InvariantReport) {
        if self.inv.is_none() {
            let checker = InvariantChecker::new(self.cfg.vf, self.cfg.sync);
            self = self.with_invariants(checker);
        }
        let art = self.run_impl::<NoGovernor>(target, None);
        let report = art.invariants.expect("checker was armed");
        (art.result, report)
    }

    /// [`Pipeline::run_with_governor`] with the armed invariant checker (or
    /// a default one); see [`Pipeline::run_checked`].
    ///
    /// # Panics
    ///
    /// Panics if the machine deadlocks (internal invariant violation).
    #[cfg(feature = "invariants")]
    pub fn run_with_governor_checked<G: Governor>(
        mut self,
        target: u64,
        mut governor: G,
    ) -> (RunResult, InvariantReport) {
        if self.inv.is_none() {
            let checker = InvariantChecker::new(self.cfg.vf, self.cfg.sync);
            self = self.with_invariants(checker);
        }
        self.control_next = governor.interval();
        let art = self.run_impl(target, Some(&mut governor));
        let report = art.invariants.expect("checker was armed");
        (art.result, report)
    }

    /// The run loop, monomorphized over the governor type.
    ///
    /// Always advances the clock with the earliest pending edge (lowest
    /// clock index on ties). Edges of an idle domain are batch-consumed by
    /// [`Pipeline::fast_forward`]; every other edge runs the full tick
    /// machinery.
    fn run_impl<G: Governor>(mut self, target: u64, mut governor: Option<&mut G>) -> RunArtifacts {
        assert!(target > 0, "target instruction count must be positive");
        self.target = target;
        if self.cfg.warmup_instructions > 0 {
            self.warm_structures(self.cfg.warmup_instructions);
        }
        let n_clocks = self.clocks.len();
        for i in 0..n_clocks {
            let t = self.clocks[i].next_edge();
            self.sched.set(i, t);
            self.note_clock_advanced(i);
            #[cfg(feature = "invariants")]
            self.inv_after_edge(i);
        }
        if let Some(s) = self.tracer.as_mut() {
            // Opening frequency sample for every domain so each track has a
            // well-defined level from t = 0.
            for d in DomainId::ALL {
                let ci = if self.single_clock { 0 } else { d.index() };
                s.freq_change(
                    d.index(),
                    Femtos::ZERO,
                    self.clock_freq[ci],
                    self.clock_volt[ci],
                );
            }
        }
        let mut edges: u64 = 0;
        let max_edges = target
            .saturating_mul(MAX_EDGES_PER_INSTRUCTION)
            .max(1_000_000);
        let fast_forward_allowed = n_clocks > 1 && !self.reference_mode;
        while self.committed < target {
            edges += 1;
            assert!(
                edges < max_edges,
                "pipeline deadlock: {} of {} committed after {} edges",
                self.committed,
                target,
                edges
            );
            // Earliest pending clock edge wins.
            let ci = self.sched.earliest();
            if fast_forward_allowed && self.domain_idle(ci) {
                let ff_start = self.sched.time(ci);
                let k = self.fast_forward(ci, governor.is_some(), max_edges - edges);
                if k > 0 {
                    if let Some(s) = self.tracer.as_mut() {
                        // Fast-forward is MCD-only, so ci is the domain index.
                        s.fast_forward(ci, ff_start, self.sched.time(ci), k);
                    }
                    // The batch includes the edge this iteration selected.
                    edges += k - 1;
                    continue;
                }
                // Blocked by a limit before consuming anything: fall through
                // and process this edge on the slow path.
            }
            let now = self.sched.time(ci);
            self.apply_schedule(now);
            if let Some(g) = governor.as_mut() {
                self.sample_utilization(ci, n_clocks);
                if now >= self.control_next {
                    self.control_decision(now, &mut **g);
                }
            }
            if self.tracer.is_some() {
                self.trace_queue_samples(ci, n_clocks, now);
            }
            if n_clocks == 1 {
                // Single clock: all logical domains tick on the same edge.
                self.tick_commit_dispatch_fetch(now);
                self.tick_exec(DomainId::Integer, now);
                self.tick_exec(DomainId::FloatingPoint, now);
                self.tick_loadstore(now);
            } else {
                match DomainId::ALL[ci] {
                    DomainId::FrontEnd => self.tick_commit_dispatch_fetch(now),
                    DomainId::Integer => self.tick_exec(DomainId::Integer, now),
                    DomainId::FloatingPoint => self.tick_exec(DomainId::FloatingPoint, now),
                    DomainId::LoadStore => self.tick_loadstore(now),
                }
            }
            #[cfg(feature = "invariants")]
            self.inv_after_tick(now);
            let t = self.clocks[ci].next_edge();
            self.sched.set(ci, t);
            self.note_clock_advanced(ci);
            #[cfg(feature = "invariants")]
            self.inv_after_edge(ci);
        }
        let sink = self.tracer.take();
        #[cfg(feature = "invariants")]
        let invariants = self.inv.take().map(|c| c.finish(&self));
        RunArtifacts {
            result: self.into_result(),
            sink,
            #[cfg(feature = "invariants")]
            invariants,
        }
    }

    /// Feeds the sink a queue-occupancy sample for the domain(s) ticking on
    /// this edge. Mirrors [`Pipeline::sample_utilization`] but is gated on
    /// the tracer so untraced runs never compute the fractions.
    fn trace_queue_samples(&mut self, ci: usize, n_clocks: usize, now: Femtos) {
        let occupancy = |d: DomainId, p: &Self| match d {
            DomainId::FrontEnd => p.fetchq.len() as f64 / p.fetchq.capacity() as f64,
            DomainId::Integer => p.iq_int.len() as f64 / p.iq_int.capacity() as f64,
            DomainId::FloatingPoint => p.iq_fp.len() as f64 / p.iq_fp.capacity() as f64,
            DomainId::LoadStore => p.lsq.len() as f64 / p.lsq.capacity() as f64,
        };
        if n_clocks == 1 {
            let samples = DomainId::ALL.map(|d| occupancy(d, self));
            if let Some(s) = self.tracer.as_mut() {
                for d in DomainId::ALL {
                    s.queue_sample(d.index(), now, samples[d.index()]);
                }
            }
        } else {
            let d = DomainId::ALL[ci];
            let frac = occupancy(d, self);
            if let Some(s) = self.tracer.as_mut() {
                s.queue_sample(d.index(), now, frac);
            }
        }
    }

    /// Batch-consumes pending edges of the idle domain of clock `ci`,
    /// advancing only its clock (same per-cycle jitter and DVFS draws as the
    /// naive loop — the edge stream is bit-identical) while skipping the
    /// tick machinery those edges cannot need.
    ///
    /// An edge is only consumed while it would win the earliest-edge
    /// selection (strictly precede every other clock's pending edge, or tie
    /// with a higher-indexed one) *and* the slow path would do nothing but
    /// tick on it: no static-schedule entry due, no governor decision due.
    /// Governor utilization sampling is replicated per consumed edge; the
    /// sampled occupancy cannot change while only this domain's clock
    /// advances, so it is hoisted out of the loop.
    ///
    /// Returns the number of edges consumed (0 when a limit blocks the very
    /// first edge; the caller then takes the slow path).
    fn fast_forward(&mut self, ci: usize, governor_active: bool, max_batch: u64) -> u64 {
        let (other_idx, other_t) = self.sched.earliest_excluding(ci);
        // First static-schedule entry not yet applied: the slow path applies
        // it at the first edge with `now >= at`, so stop short of that.
        let schedule_due = if !self.single_clock && self.schedule_pos < self.cfg.schedule.len() {
            self.cfg.schedule.entries()[self.schedule_pos].at
        } else {
            Femtos::MAX
        };
        let control_due = if governor_active {
            self.control_next
        } else {
            Femtos::MAX
        };
        let domain = DomainId::ALL[ci];
        let occupancy = if governor_active {
            match domain {
                DomainId::FrontEnd => unreachable!("front end never fast-forwards"),
                DomainId::Integer => self.iq_int.len() as f64 / self.iq_int.capacity() as f64,
                DomainId::FloatingPoint => self.iq_fp.len() as f64 / self.iq_fp.capacity() as f64,
                DomainId::LoadStore => self.lsq.len() as f64 / self.lsq.capacity() as f64,
            }
        } else {
            0.0
        };
        let d = domain.index();
        let mut consumed: u64 = 0;
        while consumed < max_batch {
            let t = self.sched.time(ci);
            let wins = t < other_t || (t == other_t && ci < other_idx);
            if !wins || t >= schedule_due || t >= control_due {
                break;
            }
            if governor_active {
                self.control.util_sum[d] += occupancy;
                self.control.util_samples[d] += 1;
            }
            let next = self.clocks[ci].next_edge();
            self.sched.set(ci, next);
            self.note_clock_advanced(ci);
            #[cfg(feature = "invariants")]
            self.inv_after_edge(ci);
            consumed += 1;
        }
        consumed
    }

    /// Samples queue occupancy for the domain(s) ticking on this edge.
    fn sample_utilization(&mut self, ci: usize, n_clocks: usize) {
        let record = |state: &mut ControlState, d: DomainId, frac: f64| {
            state.util_sum[d.index()] += frac;
            state.util_samples[d.index()] += 1;
        };
        if n_clocks == 1 {
            let fetchq = self.fetchq.len() as f64 / self.fetchq.capacity() as f64;
            let iq_int = self.iq_int.len() as f64 / self.iq_int.capacity() as f64;
            let iq_fp = self.iq_fp.len() as f64 / self.iq_fp.capacity() as f64;
            let lsq = self.lsq.len() as f64 / self.lsq.capacity() as f64;
            record(&mut self.control, DomainId::FrontEnd, fetchq);
            record(&mut self.control, DomainId::Integer, iq_int);
            record(&mut self.control, DomainId::FloatingPoint, iq_fp);
            record(&mut self.control, DomainId::LoadStore, lsq);
        } else {
            // Only the ticking domain is sampled; computing the other three
            // occupancies would be wasted work on every edge.
            let d = DomainId::ALL[ci];
            let frac = match d {
                DomainId::FrontEnd => self.fetchq.len() as f64 / self.fetchq.capacity() as f64,
                DomainId::Integer => self.iq_int.len() as f64 / self.iq_int.capacity() as f64,
                DomainId::FloatingPoint => self.iq_fp.len() as f64 / self.iq_fp.capacity() as f64,
                DomainId::LoadStore => self.lsq.len() as f64 / self.lsq.capacity() as f64,
            };
            record(&mut self.control, d, frac);
        }
    }

    /// Hands the governor a fresh sample and applies its frequency requests.
    fn control_decision<G: Governor>(&mut self, now: Femtos, governor: &mut G) {
        let mut utilization = [0.0; DomainId::COUNT];
        for (i, util) in utilization.iter_mut().enumerate() {
            if self.control.util_samples[i] > 0 {
                *util = self.control.util_sum[i] / self.control.util_samples[i] as f64;
            }
        }
        let sample = ControlSample {
            start: self.control.start,
            end: now,
            queue_utilization: utilization,
            issued: self.control.issued,
            committed: self.committed - self.control.committed,
        };
        let decision = governor.decide(&sample);
        for d in DomainId::ALL {
            if let Some(f) = decision[d.index()] {
                let ci = self.clock_index(d);
                self.clocks[ci].request_frequency(now, f);
                if let Some(s) = self.tracer.as_mut() {
                    s.freq_request(d.index(), now, f);
                }
                #[cfg(feature = "invariants")]
                self.inv_freq_request(now, d, f);
            }
        }
        self.control = ControlState {
            start: now,
            committed: self.committed,
            ..ControlState::default()
        };
        self.control_next = now + governor.interval();
    }

    fn apply_schedule(&mut self, now: Femtos) {
        if self.single_clock {
            return; // schedules only drive MCD machines
        }
        while self.schedule_pos < self.cfg.schedule.len() {
            let entry = self.cfg.schedule.entries()[self.schedule_pos];
            if entry.at > now {
                break;
            }
            let ci = entry.domain.index();
            self.clocks[ci].request_frequency(entry.at, entry.frequency);
            if let Some(s) = self.tracer.as_mut() {
                s.freq_request(ci, entry.at, entry.frequency);
            }
            self.schedule_pos += 1;
        }
    }

    // ------------------------------------------------------------------
    // Front end: commit, dispatch, fetch (in that order within an edge).
    // ------------------------------------------------------------------

    fn tick_commit_dispatch_fetch(&mut self, now: Femtos) {
        self.tick_commit(now);
        self.tick_dispatch(now);
        self.tick_fetch(now);
    }

    fn tick_commit(&mut self, now: Femtos) {
        let v_fe = self.voltage(DomainId::FrontEnd);
        let v_ls = self.voltage(DomainId::LoadStore);
        for _ in 0..self.pcfg.retire_width {
            if self.committed >= self.target {
                break;
            }
            let Some(front) = self.rob.front() else { break };
            if !front.completed || front.completion_visible_fe > now {
                break;
            }
            let mut entry = self.rob.pop_front().expect("front exists");
            self.rob_head_seq += 1;
            // Stores write the data cache at commit.
            if entry.instr.op == OpClass::Store {
                let addr = entry.instr.mem.expect("store has address").addr;
                let l1_hit = self.l1d.access(addr, true);
                self.ledger.record(Unit::Dcache, v_ls);
                if !l1_hit {
                    let l2_hit = self.l2.access(addr, true);
                    self.ledger.record(Unit::L2, v_ls);
                    entry.l1_miss = true;
                    entry.l2_miss = !l2_hit;
                }
                entry.mem_span = Some(EventSpan::new(now, now + self.period(DomainId::LoadStore)));
            }
            if let Some(id) = entry.lsq_id {
                self.lsq.release_oldest(id);
            }
            if let Some(prev) = entry.prev_phys {
                self.rename.free(prev);
            }
            self.ledger.record(Unit::Rob, v_fe);
            self.committed += 1;
            self.last_commit_time = now;
            if self.cfg.collect_trace {
                self.trace.push(InstrTrace {
                    seq: entry.seq,
                    op: entry.instr.op,
                    exec_domain: DomainId::executing(entry.instr.op),
                    fetch: entry.fetch_span,
                    dispatch: entry.dispatch_span,
                    addr_calc: entry.addr_span,
                    mem_access: entry.mem_span,
                    execute: entry.exec_span,
                    commit: now,
                    src_producers: entry.src_producers,
                    l1_miss: entry.l1_miss,
                    l2_miss: entry.l2_miss,
                    mispredicted: entry.mispredicted,
                });
            }
        }
    }

    fn tick_dispatch(&mut self, now: Femtos) {
        let fe_period = self.period(DomainId::FrontEnd);
        let v_fe = self.voltage(DomainId::FrontEnd);
        for _ in 0..self.pcfg.decode_width {
            let Some(front) = self.fetchq.front() else {
                break;
            };
            if front.fetch_span.end > now {
                break; // fetched this very edge; dispatch next cycle
            }
            if self.rob.len() >= self.pcfg.rob_size {
                break;
            }
            let op = front.instr.op;
            let is_mem = op.is_mem();
            // Structural checks before consuming the fetch-queue entry.
            let iq_target_full = match DomainId::executing(op) {
                DomainId::FloatingPoint => self.iq_fp.is_full(),
                // Memory ops need an integer-IQ slot for address generation.
                _ => self.iq_int.is_full(),
            };
            if iq_target_full || (is_mem && (self.lsq.is_full() || self.iq_int.is_full())) {
                break;
            }
            let needs_dest = front.instr.dest.is_some();
            if needs_dest {
                let dest = front.instr.dest.expect("checked");
                let free = if dest.is_fp() {
                    self.rename.free_fp()
                } else {
                    self.rename.free_int()
                };
                if free == 0 {
                    break;
                }
            }
            let fetched = self.fetchq.pop_front().expect("front exists");
            // Rename sources.
            let mut src_phys = [None, None];
            let mut src_producers = [None, None];
            for (i, src) in fetched.instr.srcs.iter().enumerate() {
                if let Some(reg) = src {
                    let phys = self.rename.lookup(*reg);
                    src_phys[i] = Some(phys);
                    src_producers[i] = self.writer_of[phys.index()];
                }
            }
            // Rename destination.
            let (dest_phys, prev_phys) = match fetched.instr.dest {
                Some(reg) => {
                    let renamed = self.rename.allocate(reg).expect("free list checked");
                    let base = renamed.new.index() * DomainId::COUNT;
                    self.ready_at[base..base + DomainId::COUNT].fill(Femtos::MAX);
                    self.writer_of[renamed.new.index()] = Some(fetched.seq);
                    (Some(renamed.new), Some(renamed.prev))
                }
                None => (None, None),
            };
            let exec_domain = DomainId::executing(op);
            // Queue writes become visible to the consuming scheduler after
            // the synchronization window (§2.2).
            let sched_domain = if is_mem {
                DomainId::Integer
            } else {
                exec_domain
            };
            let iq_visible_at = self.vis_traced(now, DomainId::FrontEnd, sched_domain);
            match sched_domain {
                DomainId::FloatingPoint => {
                    let v_fp = self.voltage(DomainId::FloatingPoint);
                    self.ledger.record(Unit::IqFp, v_fp);
                    self.iq_fp.push(fetched.seq).expect("capacity checked");
                }
                _ => {
                    let v_int = self.voltage(DomainId::Integer);
                    self.ledger.record(Unit::IqInt, v_int);
                    self.iq_int.push(fetched.seq).expect("capacity checked");
                }
            }
            let lsq_id = if is_mem {
                let kind = if op == OpClass::Load {
                    MemAccessKind::Load
                } else {
                    MemAccessKind::Store
                };
                let v_ls = self.voltage(DomainId::LoadStore);
                self.ledger.record(Unit::Lsq, v_ls);
                Some(self.lsq.allocate(kind).expect("capacity checked"))
            } else {
                None
            };
            self.ledger.record(Unit::Rename, v_fe);
            self.ledger.record(Unit::Rob, v_fe);
            self.rob.push_back(InFlight {
                seq: fetched.seq,
                instr: fetched.instr,
                dest_phys,
                prev_phys,
                src_phys,
                src_producers,
                lsq_id,
                iq_visible_at,
                agu_issued: false,
                addr_applied: false,
                mem_done: false,
                exec_issued: false,
                completed: false,
                completion_visible_fe: Femtos::MAX,
                fetch_span: fetched.fetch_span,
                dispatch_span: EventSpan::new(now, now + fe_period),
                addr_span: None,
                mem_span: None,
                exec_span: None,
                l1_miss: false,
                l2_miss: false,
                mispredicted: fetched.mispredicted,
            });
        }
    }

    fn tick_fetch(&mut self, now: Femtos) {
        if self.fetch_blocked_on.is_some() || now < self.fetch_resume_at {
            if self.tracer.is_some() {
                let cause = if self.fetch_blocked_on.is_some() {
                    StallCause::BranchRedirect
                } else {
                    StallCause::MemoryWait
                };
                let period = self.period(DomainId::FrontEnd);
                if let Some(s) = self.tracer.as_mut() {
                    s.stall(DomainId::FrontEnd.index(), now, cause, period);
                }
            }
            return;
        }
        let fe_period = self.period(DomainId::FrontEnd);
        let v_fe = self.voltage(DomainId::FrontEnd);
        for _ in 0..self.pcfg.decode_width {
            if self.fetchq.is_full() {
                break;
            }
            let instr = match self.pending_fetch.take() {
                Some(i) => i,
                None => self.gen.next_instruction(),
            };
            // I-cache access.
            self.ledger.record(Unit::ICache, v_fe);
            let hit = self.l1i.access(instr.pc, false);
            if !hit {
                // Miss is served by the L2, which lives in the load/store
                // domain: cross there and back.
                let v_ls = self.voltage(DomainId::LoadStore);
                self.ledger.record(Unit::L2, v_ls);
                let l2_hit = self.l2.access(instr.pc, false);
                let to_ls = self.vis_traced(now, DomainId::FrontEnd, DomainId::LoadStore);
                let mut done = to_ls + self.period(DomainId::LoadStore) * self.pcfg.l2_latency;
                if !l2_hit {
                    done += self.pcfg.mem_latency;
                }
                self.fetch_resume_at =
                    self.vis_traced(done, DomainId::LoadStore, DomainId::FrontEnd);
                self.pending_fetch = Some(instr);
                break;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            let fetch_span = EventSpan::new(now, now + fe_period);
            let mut mispredicted = false;
            if let Some(branch) = instr.branch {
                self.ledger.record(Unit::Bpred, v_fe);
                self.branch_lookups += 1;
                let pred = self.bpred.predict(instr.pc);
                let direction_ok = pred.taken == branch.taken;
                let target_ok = !branch.taken || pred.target == Some(branch.target);
                if !(direction_ok && target_ok) {
                    mispredicted = true;
                    self.branch_mispredicts += 1;
                    self.fetch_blocked_on = Some(seq);
                    self.fetch_resume_at = Femtos::MAX;
                }
                // Correctly predicted taken branches fetch through (line
                // prediction); only mispredicts break the stream.
            }
            let pushed = self.fetchq.push_back(Fetched {
                seq,
                instr,
                fetch_span,
                mispredicted,
            });
            assert!(pushed.is_ok(), "fetch-queue fullness was checked");
            if mispredicted {
                break;
            }
        }
    }

    // ------------------------------------------------------------------
    // Integer / floating-point execution domains.
    // ------------------------------------------------------------------

    fn tick_exec(&mut self, domain: DomainId, now: Femtos) {
        debug_assert!(matches!(
            domain,
            DomainId::Integer | DomainId::FloatingPoint
        ));
        let (width, iq) = match domain {
            DomainId::Integer => (self.pcfg.issue_width_int, &self.iq_int),
            _ => (self.pcfg.issue_width_fp, &self.iq_fp),
        };
        if iq.is_empty() {
            return;
        }
        // Snapshot the queue (already oldest-first — the paper's scheduler
        // issues by age among ready entries) into the reusable scratch
        // buffer so issuing may remove entries mid-walk.
        let mut candidates = std::mem::take(&mut self.exec_scratch);
        candidates.clear();
        candidates.extend_from_slice(iq.as_slice());
        let mut issued = 0;
        for &seq in &candidates {
            if issued >= width {
                break;
            }
            if self.try_issue(domain, seq, now) {
                issued += 1;
            }
        }
        self.exec_scratch = candidates;
    }

    /// Attempts to issue one IQ entry; returns whether it issued.
    fn try_issue(&mut self, domain: DomainId, seq: u64, now: Femtos) -> bool {
        let period = self.period(domain);
        let entry = self.rob_get(seq);
        if entry.iq_visible_at > now {
            return false;
        }
        let op = entry.instr.op;
        if op.is_mem() {
            // Address-generation µop (always in the integer domain).
            let addr_src = match op {
                OpClass::Load => entry.src_phys[0],
                _ => entry.src_phys[1],
            };
            if self.src_ready_at(addr_src, DomainId::Integer) > now {
                return false;
            }
            let busy_until = now + period; // AGU is pipelined
            if !self
                .fus
                .try_acquire(FuKind::IntAlu, now.as_femtos(), busy_until.as_femtos())
            {
                return false;
            }
            let done = now + period * self.pcfg.lat_agu;
            let addr = self
                .rob_get(seq)
                .instr
                .mem
                .expect("mem op has address")
                .addr;
            let vis_ls = self.vis_traced(done, DomainId::Integer, DomainId::LoadStore);
            self.pending_addrs.push((vis_ls, seq, addr));
            let v_int = self.voltage(DomainId::Integer);
            self.ledger.record(Unit::AluInt, v_int);
            self.ledger.record(Unit::RegInt, v_int);
            self.ledger.record(Unit::BusInt, v_int);
            self.control.issued[DomainId::Integer.index()] += 1;
            self.iq_int.remove(seq);
            let e = self.rob_get_mut(seq);
            e.agu_issued = true;
            e.addr_span = Some(EventSpan::new(now, done));
            return true;
        }
        // Regular execution: all sources visible in this domain.
        for i in 0..2 {
            let src = entry.src_phys[i];
            if self.src_ready_at(src, domain) > now {
                return false;
            }
        }
        let (fu, unpipelined) = match op {
            OpClass::IntAlu | OpClass::Branch => (FuKind::IntAlu, false),
            OpClass::IntMul => (FuKind::IntMulDiv, false),
            OpClass::IntDiv => (FuKind::IntMulDiv, true),
            OpClass::FpAdd => (FuKind::FpAlu, false),
            OpClass::FpMul => (FuKind::FpMulDiv, false),
            OpClass::FpDiv | OpClass::FpSqrt => (FuKind::FpMulDiv, true),
            OpClass::Load | OpClass::Store => unreachable!("handled above"),
        };
        let latency = self.pcfg.latency(op);
        let done = now + period * latency;
        let busy_until = if unpipelined { done } else { now + period };
        if !self
            .fus
            .try_acquire(fu, now.as_femtos(), busy_until.as_femtos())
        {
            return false;
        }
        // Energy: issue-queue read, register-file operands + writeback,
        // functional unit, result bus.
        let v = self.voltage(domain);
        match domain {
            DomainId::Integer => {
                self.ledger.record(Unit::IqInt, v);
                self.ledger.record_n(Unit::RegInt, v, 3);
                self.ledger.record(Unit::BusInt, v);
                match fu {
                    FuKind::IntMulDiv => self.ledger.record(Unit::MulInt, v),
                    _ => self.ledger.record(Unit::AluInt, v),
                }
            }
            _ => {
                self.ledger.record(Unit::IqFp, v);
                self.ledger.record_n(Unit::RegFp, v, 3);
                self.ledger.record(Unit::BusFp, v);
                match fu {
                    FuKind::FpMulDiv => self.ledger.record(Unit::MulFp, v),
                    _ => self.ledger.record(Unit::AluFp, v),
                }
            }
        }
        self.control.issued[domain.index()] += 1;
        // Writeback visibility.
        if let Some(dest) = self.rob_get(seq).dest_phys {
            self.set_ready(dest, done, domain);
        }
        // Branch resolution.
        let is_branch = op == OpClass::Branch;
        if is_branch {
            let (pc, taken, target, mispredicted) = {
                let e = self.rob_get(seq);
                let b = e.instr.branch.expect("branch payload");
                (e.instr.pc, b.taken, b.target, e.mispredicted)
            };
            self.bpred.update(pc, taken, target);
            let v_fe = self.voltage(DomainId::FrontEnd);
            self.ledger.record(Unit::Bpred, v_fe);
            if mispredicted {
                let redirect = self.vis_traced(done, domain, DomainId::FrontEnd);
                let fe_period = self.period(DomainId::FrontEnd);
                self.fetch_resume_at = redirect + fe_period * self.pcfg.mispredict_penalty;
                debug_assert_eq!(self.fetch_blocked_on, Some(seq));
                self.fetch_blocked_on = None;
            }
        }
        let completion_visible_fe = self.vis_traced(done, domain, DomainId::FrontEnd);
        match domain {
            DomainId::Integer => {
                self.iq_int.remove(seq);
            }
            _ => {
                self.iq_fp.remove(seq);
            }
        }
        let e = self.rob_get_mut(seq);
        e.exec_issued = true;
        e.exec_span = Some(EventSpan::new(now, done));
        e.completed = true;
        e.completion_visible_fe = completion_visible_fe;
        true
    }

    // ------------------------------------------------------------------
    // Load/store domain.
    // ------------------------------------------------------------------

    fn tick_loadstore(&mut self, now: Femtos) {
        // 1. Apply effective addresses that have crossed into this domain,
        //    registering each mem op in the dense store/load work lists
        //    (kept in ascending seq order — the same order a scan of the
        //    seq-ordered ROB would yield).
        if !self.pending_addrs.is_empty() {
            let mut applied = std::mem::take(&mut self.addr_scratch);
            applied.clear();
            self.pending_addrs.retain(|(vis, seq, addr)| {
                if *vis <= now {
                    applied.push((*seq, *addr));
                    false
                } else {
                    true
                }
            });
            let any_applied = !applied.is_empty();
            for &(seq, addr) in &applied {
                let id = self.rob_get(seq).lsq_id.expect("mem op in LSQ");
                self.lsq.set_address(id, addr);
                let e = self.rob_get_mut(seq);
                e.addr_applied = true;
                if e.instr.op == OpClass::Store {
                    self.ls_stores.push(seq);
                } else {
                    self.ls_loads.push(seq);
                }
            }
            self.addr_scratch = applied;
            if any_applied {
                self.ls_stores.sort_unstable();
                self.ls_loads.sort_unstable();
            }
        }
        if self.ls_stores.is_empty() && self.ls_loads.is_empty() {
            return;
        }

        // 2. Complete stores whose address and data are both present.
        let v_ls = self.voltage(DomainId::LoadStore);
        if !self.ls_stores.is_empty() {
            let mut stores = std::mem::take(&mut self.ls_stores);
            let mut completed_any = false;
            for &seq in &stores {
                let data_src = self.rob_get(seq).src_phys[0];
                if self.src_ready_at(data_src, DomainId::LoadStore) > now {
                    continue;
                }
                self.ledger.record(Unit::Lsq, v_ls);
                let completion_visible_fe =
                    self.vis_traced(now, DomainId::LoadStore, DomainId::FrontEnd);
                let e = self.rob_get_mut(seq);
                e.mem_done = true;
                e.completed = true;
                e.completion_visible_fe = completion_visible_fe;
                completed_any = true;
            }
            if completed_any {
                stores.retain(|&seq| !self.rob_get(seq).mem_done);
            }
            self.ls_stores = stores;
        }

        // 3. Issue ready loads, oldest first, up to the port width.
        let loads = std::mem::take(&mut self.ls_loads);
        let mut completed_any = false;
        let mut issued = 0;
        for &seq in &loads {
            if issued >= self.pcfg.issue_width_mem {
                break;
            }
            let id = self.rob_get(seq).lsq_id.expect("load in LSQ");
            let status = self.lsq.load_status(id);
            let ls_period = self.period(DomainId::LoadStore);
            let (done, l1_miss, l2_miss, forwarded) = match status {
                LoadStatus::ReadyFromCache => {
                    let busy = now + ls_period;
                    if !self
                        .fus
                        .try_acquire(FuKind::MemPort, now.as_femtos(), busy.as_femtos())
                    {
                        break; // ports exhausted this cycle
                    }
                    let addr = self.rob_get(seq).instr.mem.expect("load address").addr;
                    self.ledger.record(Unit::Dcache, v_ls);
                    let l1_hit = self.l1d.access(addr, false);
                    let mut done = now + ls_period * self.pcfg.l1_latency;
                    let mut l2_miss = false;
                    if !l1_hit {
                        self.ledger.record(Unit::L2, v_ls);
                        let l2_hit = self.l2.access(addr, false);
                        done = now + ls_period * (self.pcfg.l1_latency + self.pcfg.l2_latency);
                        if !l2_hit {
                            done += self.pcfg.mem_latency;
                            l2_miss = true;
                        }
                    }
                    (done, !l1_hit, l2_miss, false)
                }
                LoadStatus::ReadyForwarded { .. } => (now + ls_period, false, false, true),
                _ => continue,
            };
            self.ledger.record(Unit::Lsq, v_ls);
            self.ledger.record(Unit::BusLs, v_ls);
            self.control.issued[DomainId::LoadStore.index()] += 1;
            self.lsq.mark_issued(id, forwarded);
            if let Some(dest) = self.rob_get(seq).dest_phys {
                self.set_ready(dest, done, DomainId::LoadStore);
            }
            let completion_visible_fe =
                self.vis_traced(done, DomainId::LoadStore, DomainId::FrontEnd);
            let e = self.rob_get_mut(seq);
            e.mem_done = true;
            e.mem_span = Some(EventSpan::new(now, done));
            e.l1_miss = l1_miss;
            e.l2_miss = l2_miss;
            e.completed = true;
            e.completion_visible_fe = completion_visible_fe;
            completed_any = true;
            issued += 1;
        }
        let mut loads = loads;
        if completed_any {
            loads.retain(|&seq| !self.rob_get(seq).mem_done);
        }
        self.ls_loads = loads;
    }

    fn into_result(self) -> RunResult {
        let mut domain_cycles = [0u64; DomainId::COUNT];
        let mut domain_v2 = [0f64; DomainId::COUNT];
        let mut domain_idle = [Femtos::ZERO; DomainId::COUNT];
        let mut domain_transitions = [0u64; DomainId::COUNT];
        let mut avg_freq = [0f64; DomainId::COUNT];
        let secs = self.last_commit_time.as_secs_f64().max(1e-18);
        for d in DomainId::ALL {
            let c = &self.clocks[if self.clocks.len() == 1 { 0 } else { d.index() }];
            domain_cycles[d.index()] = c.cycles();
            domain_v2[d.index()] = c.v2_cycle_sum();
            domain_idle[d.index()] = c.idle_total();
            domain_transitions[d.index()] =
                c.controller().map(|ctl| ctl.transitions()).unwrap_or(0);
            avg_freq[d.index()] = c.cycles() as f64 / secs;
        }
        if self.clocks.len() == 1 {
            // A single physical clock serves all four logical domains; the
            // per-domain split of clock energy is handled by the power model
            // via capacitance shares, so report the same cycle counts.
            let cycles = self.clocks[0].cycles();
            let v2 = self.clocks[0].v2_cycle_sum();
            for d in DomainId::ALL {
                domain_cycles[d.index()] = cycles;
                domain_v2[d.index()] = v2;
                avg_freq[d.index()] = cycles as f64 / secs;
            }
        }
        RunResult {
            committed: self.committed,
            total_time: self.last_commit_time,
            domain_cycles,
            domain_v2_cycles: domain_v2,
            domain_idle,
            domain_transitions,
            avg_frequency_hz: avg_freq,
            ledger: self.ledger,
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            branch_lookups: self.branch_lookups,
            branch_mispredicts: self.branch_mispredicts,
            lsq_forwards: self.lsq.forwards(),
            trace: if self.cfg.collect_trace {
                Some(self.trace)
            } else {
                None
            },
        }
    }
}

/// Extension trait kept private: deriving a u64 seed from a [`SimRng`].
trait SeedProbe {
    fn next_u64_seed(self) -> u64;
}

impl SeedProbe for SimRng {
    fn next_u64_seed(mut self) -> u64 {
        self.next_u64()
    }
}
